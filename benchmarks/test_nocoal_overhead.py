"""Section III's motivating measurement: the cost of disabling coalescing.

Paper: for 1024-line plaintexts, disabling coalescing degrades performance
by up to 178% (2.78x) and increases data movement 2.7x — which is why RCoal
randomizes coalescing instead of removing it.
"""

import numpy as np
import pytest

from repro.core.policies import make_policy
from repro.experiments.base import ExperimentContext, collect_records

from conftest import paper_scale


@pytest.mark.benchmark(group="nocoal")
def test_nocoal_overhead_1024_lines(run_once):
    samples = 4 if not paper_scale() else 10
    ctx = ExperimentContext(root_seed=2018, samples=samples, lines=1024)

    def measure():
        _, base = collect_records(ctx, make_policy("baseline"), samples)
        _, off = collect_records(ctx, make_policy("nocoal"), samples)
        return (
            float(np.mean([r.total_time for r in off]))
            / float(np.mean([r.total_time for r in base])),
            float(np.mean([r.total_accesses for r in off]))
            / float(np.mean([r.total_accesses for r in base])),
        )

    time_factor, access_factor = run_once(measure)
    print(f"\nnocoal vs baseline (1024 lines): time x{time_factor:.2f} "
          f"(paper ~2.78x), accesses x{access_factor:.2f} (paper ~2.7x)")

    assert 1.9 < time_factor < 3.2
    assert 2.0 < access_factor < 3.0
