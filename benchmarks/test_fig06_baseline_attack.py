"""Fig 6: the baseline attack succeeds with coalescing, fails without.

Paper: with coalescing enabled the correct value of k0 has the maximum
correlation and recovery succeeds; with coalescing disabled every warp
issues a constant 32 accesses and no byte is recoverable.
"""

import pytest

from repro.experiments import fig06

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig06")
def test_fig06(run_once):
    result = run_once(fig06.run, context_for("fig06"))
    record_result(result)
    enabled = result.metrics["enabled"]
    disabled = result.metrics["disabled"]

    # Coalescing on: the attack finds real signal — the correct guess
    # ranks far above chance (127.5) for the average byte, and several
    # bytes are recovered outright at the paper's 100-sample budget.
    assert enabled["avg_correct_corr"] > 0.15
    assert enabled["avg_rank"] < 40
    assert enabled["bytes_recovered"] >= 3

    # Coalescing off: no correlation, no recovery, chance-level ranks.
    assert abs(disabled["avg_correct_corr"]) < 0.1
    assert disabled["bytes_recovered"] <= 1
    assert disabled["avg_rank"] > 60

    # The separation the figure communicates.
    assert enabled["avg_correct_corr"] > disabled["avg_correct_corr"] + 0.15
