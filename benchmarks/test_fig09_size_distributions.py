"""Fig 9: RSS subwarp-size distributions (normal vs skewed), M=4.

Paper: the normal variant clusters tightly around 32/M = 8; the skewed
variant (uniform over compositions) is right-skewed with no empty subwarp
and all size combinations equally likely.
"""

import pytest

from repro.analysis.combinatorics import num_compositions
from repro.experiments import fig09

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig09")
def test_fig09(run_once):
    result = run_once(fig09.run, context_for("fig09"))
    record_result(result)
    normal = result.metrics["normal_histogram"]
    skewed = result.metrics["skewed_histogram"]

    total = 1000 * 4
    assert sum(normal.values()) == sum(skewed.values()) == total

    # Both distributions share the mean 32/M = 8 (sizes always sum to 32).
    mean = lambda h: sum(s * c for s, c in h.items()) / sum(h.values())
    assert mean(normal) == pytest.approx(8.0)
    assert mean(skewed) == pytest.approx(8.0)

    # Normal: concentrated around the mean.
    assert sum(normal.get(s, 0) for s in (7, 8, 9)) / total > 0.5
    # Skewed: monotone-decreasing marginal with a long right tail —
    # size 1 is the most likely and sizes beyond 16 still occur.
    assert skewed[1] == max(skewed.values())
    assert max(skewed) > 20
    assert min(skewed) >= 1  # no empty subwarp, ever

    # The skewed marginal matches the uniform-composition law
    # P(w1=k) = C(31-k, 2) / C(31, 3) within sampling error.
    expected_p1 = num_compositions(31, 3) / num_compositions(32, 4)
    assert skewed[1] / total == pytest.approx(expected_p1, rel=0.15)
