"""Ablation bench: samples-to-success scaling (Eq 4 / Table II column S).

Expected shape: the baseline machine's byte recovery succeeds almost
immediately (rho = 1 on the counts channel), while FSS+RTS at M=2
(rho = 0.41) needs on the order of Table II's 6x more samples. The sweep
uses a power-of-two grid whose floor the baseline already crosses, so the
measured ratio is an upper bound.
"""

import pytest

from repro.experiments import ablation_samples

from conftest import context_for, record_result


@pytest.mark.benchmark(group="ablations")
def test_ablation_samples(run_once):
    ctx = context_for("fig16")
    result = run_once(ablation_samples.run, ctx)
    record_result(result)

    base = result.metrics["base_crossing"]
    defended = result.metrics["defended_crossing"]
    assert base is not None and base <= 8
    assert defended is not None and 16 <= defended <= 128
    # The defense multiplies the sample cost (Table II: 6x; grid-floor
    # effects can only inflate the measured ratio).
    assert result.metrics["measured_ratio"] >= 4

    # Success curves are (weakly) monotone in N at the tails.
    for machine, curve in result.metrics["curves"].items():
        ns = sorted(curve)
        assert curve[ns[-1]] >= curve[ns[0]], machine
        assert curve[ns[-1]] >= 0.75, machine
