"""Ablation bench: scheduling noise vs timing channel.

Expected shape: with 32 concurrent warps, DRAM/interconnect contention
decouples the last-round time from any single warp's accesses (channel
correlation collapses), while the counts channel stays exact — the
measured justification for Fig 18's counts-based methodology.
"""

import pytest

from repro.experiments import ablation_scheduling

from conftest import context_for, record_result


@pytest.mark.benchmark(group="ablations")
def test_ablation_scheduling(run_once):
    ctx = context_for("fig16")
    result = run_once(ablation_scheduling.run, ctx)
    record_result(result)
    metrics = result.metrics

    single = metrics[32]
    multi = metrics[1024]

    # Single warp: clean channel, working timing attack.
    assert single["channel_quality"] > 0.95
    assert single["timing_attack_corr"] > 0.15
    # 32 warps: the channel collapses and the timing attack with it.
    assert multi["channel_quality"] < 0.5
    assert multi["timing_attack_corr"] < single["timing_attack_corr"]
    # The counts channel is exact regardless of scheduling noise.
    assert single["counts_attack_corr"] == pytest.approx(1.0, abs=1e-6)
    assert multi["counts_attack_corr"] == pytest.approx(1.0, abs=1e-6)
