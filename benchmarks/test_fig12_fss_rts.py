"""Fig 12: FSS+RTS against its corresponding (mimicking) attack.

Paper: recovery becomes difficult as num-subwarps grows — the attacker
implements RTS too but cannot match the victim's private permutation.
"""

import pytest

from repro.experiments import fig12

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig12")
def test_fig12(run_once):
    result = run_once(fig12.run, context_for("fig12"))
    record_result(result)
    corr = result.metrics["avg_corr"]
    recovered = result.metrics["bytes_recovered"]

    # The timing-channel correlation collapses well below the undefended
    # level (~0.25) for M >= 4, and key recovery fails.
    for m in (4, 8, 16):
        assert abs(corr[m]) < 0.15, f"FSS+RTS still leaking at M={m}"
        assert recovered[m] <= 2

    # Theory ordering: leakage at M=2 exceeds leakage at M=16.
    assert corr[2] > corr[16] - 0.05
