"""Ablation bench: selective RCoal (Section VII future work).

Expected shape: protecting only the last round keeps the corresponding
attack's correlation at the full defense's (low) level while execution time
returns most of the way to baseline.
"""

import pytest

from repro.experiments import ablation_selective

from conftest import context_for, record_result


@pytest.mark.benchmark(group="ablations")
def test_ablation_selective(run_once):
    ctx = context_for("fig16")  # perf-profile sample counts
    result = run_once(ablation_selective.run, ctx)
    record_result(result)
    full = result.metrics["full"]
    selective = result.metrics["selective"]

    for m in full:
        # Security preserved: both stay far below the FSS leak level (1.0
        # on this channel); the randomized draws keep correlations small.
        assert abs(selective[m]["corr"]) < 0.45
        assert abs(full[m]["corr"]) < 0.45
        # Performance recovered: selective cuts at least half of the
        # full-kernel overhead and lands within ~20% of baseline.
        full_overhead = full[m]["time"] - 1.0
        selective_overhead = selective[m]["time"] - 1.0
        assert selective_overhead < 0.5 * full_overhead
        assert selective[m]["time"] < 1.25
