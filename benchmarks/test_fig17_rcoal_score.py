"""Fig 17: the RCoal_Score trade-off.

Paper: under the security-oriented weighting (a=1, b=1) the randomized
mechanisms dominate FSS; under the performance-oriented weighting
(a=1, b=20) RSS+RTS overtakes FSS+RTS at the large-M design points because
of its smaller execution-time overhead.

Score comparisons are made on the theory-exact counts channel (Table II
rho) combined with measured execution times: the timing-channel estimates
of rho at 60-100 samples carry +-0.1 of noise, which a 1/rho^2 metric
amplifies unboundedly.
"""

import pytest

from repro.analysis.model import rho_fss, rho_fss_rts, rho_rss_rts
from repro.core.score import rcoal_score
from repro.experiments import fig16, fig17

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig17")
def test_fig17_measured(run_once):
    result = run_once(fig17.run, context_for("fig17"))
    record_result(result)
    scores = result.metrics["scores"]

    # The empirical scores separate FSS (bounded score: rho stays high)
    # from the randomized mechanisms (large/unbounded scores).
    for m in (8, 16):
        assert scores["security"]["fss"][m] \
            < max(scores["security"]["fss_rts"][m],
                  scores["security"]["rss_rts"][m])


@pytest.mark.benchmark(group="fig17")
def test_fig17_theory_counts_channel(run_once):
    """Fig 17's two design conclusions, with Table II rho values."""
    perf = run_once(fig16.run, context_for("fig16"), (2, 4, 8, 16))
    times = perf.metrics["normalized_time"]

    rho = {
        "fss": lambda m: float(rho_fss(32, 16, m)),
        "fss_rts": lambda m: float(rho_fss_rts(32, 16, m)),
        "rss_rts": lambda m: float(rho_rss_rts(32, 16, m)),
    }

    # (a) security-oriented: FSS+RTS wins at M in {8, 16}.
    for m in (8, 16):
        fss_rts = rcoal_score(rho["fss_rts"](m), times["fss_rts"][m],
                              a=1, b=1)
        rss_rts = rcoal_score(rho["rss_rts"](m), times["rss_rts"][m],
                              a=1, b=1)
        fss = rcoal_score(rho["fss"](m), times["fss"][m], a=1, b=1)
        assert fss_rts > rss_rts > fss

    # (b) performance-oriented: RSS+RTS overtakes FSS+RTS at M=8. The
    # paper reports the same flip at M=16; there the b=20 outcome hinges
    # on the few-percent RSS-vs-FSS time gap, which our simulator
    # reproduces slightly smaller, so only the robust M=8 point is
    # asserted (the M=16 sensitivity is recorded in EXPERIMENTS.md).
    fss_rts = rcoal_score(rho["fss_rts"](8), times["fss_rts"][8],
                          a=1, b=20)
    rss_rts = rcoal_score(rho["rss_rts"](8), times["rss_rts"][8],
                          a=1, b=20)
    assert rss_rts > fss_rts
