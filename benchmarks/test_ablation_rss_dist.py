"""Ablation bench: RSS sizing distributions (the paper's unshown result).

Expected shape: normal-RSS(+RTS) performs like FSS on execution time (its
sizes concentrate at 32/M) while the skewed distribution is cheaper; both
randomized variants leak far less than FSS.
"""

import pytest

from repro.experiments import ablation_rss_dist

from conftest import context_for, record_result


@pytest.mark.benchmark(group="ablations")
def test_ablation_rss_dist(run_once):
    ctx = context_for("fig16")
    result = run_once(ablation_rss_dist.run, ctx)
    record_result(result)
    metrics = result.metrics

    for m in (4, 8):
        # FSS leaks completely on the counts channel.
        assert metrics["fss"][m]["corr"] == pytest.approx(1.0, abs=1e-6)
        # Both randomized variants collapse the correlation.
        assert abs(metrics["normal"][m]["corr"]) < 0.4
        assert abs(metrics["skewed"][m]["corr"]) < 0.4
        # Normal sizes ~= FSS cost ("similar to that of FSS"); skewed is
        # the cheapest of the three.
        assert metrics["normal"][m]["time"] == pytest.approx(
            metrics["fss"][m]["time"], rel=0.05
        )
        assert metrics["skewed"][m]["time"] \
            < metrics["normal"][m]["time"] + 0.02
