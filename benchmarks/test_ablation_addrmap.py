"""Ablation bench: memory-hierarchy randomization alone fails.

Expected shape: the permuted partition/bank mapping leaves the coalesced
access counts bit-identical and the attack exactly as strong — the
quantitative case for randomizing the coalescing logic itself.
"""

import pytest

from repro.experiments import ablation_addrmap

from conftest import context_for, record_result


@pytest.mark.benchmark(group="ablations")
def test_ablation_addrmap(run_once):
    result = run_once(ablation_addrmap.run, context_for("fig06"))
    record_result(result)
    metrics = result.metrics

    assert metrics["accesses_identical"]
    # The attack loses nothing measurable.
    assert metrics["permuted_corr"] \
        >= metrics["plain_corr"] - 0.05
    assert metrics["plain_corr"] > 0.15
