"""Fig 7: FSS performance and the baseline attack against an FSS machine.

Paper: execution time and memory accesses rise monotonically with
num-subwarps (roughly doubling by M=32), while the baseline (M=1 model)
attack's average correlation falls toward zero.
"""

import pytest

from repro.experiments import fig07

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig07")
def test_fig07(run_once):
    result = run_once(fig07.run, context_for("fig07"))
    record_result(result)
    times = result.metrics["normalized_times"]
    corr = result.metrics["avg_corr"]

    # 7a: monotone cost in num-subwarps, ~2x at M=32 (paper ~2.2x).
    sweep = sorted(times)
    values = [times[m] for m in sweep]
    assert values == sorted(values)
    assert times[1] == pytest.approx(1.0)
    assert 1.8 < times[32] < 2.6

    # 7b: the baseline attack's correlation decreases with num-subwarps
    # and is near zero at M=32 (the machine's counts are constant).
    assert corr[1] > 0.2
    assert corr[1] > corr[4] > corr[32] - 0.02
    assert abs(corr[32]) < 0.1
