"""Ablation bench: mutual-information leakage.

Expected shape: FSS leaks bits at the scale of its full count entropy
(~2-3 bits per load) at every M, while the randomized mechanisms leak well
under half a bit — the model-free confirmation of the correlation story.
"""

import pytest

from repro.experiments import ablation_leakage

from conftest import context_for, record_result


@pytest.mark.benchmark(group="ablations")
def test_ablation_leakage(run_once):
    result = run_once(ablation_leakage.run, context_for("table2"))
    record_result(result)
    metrics = result.metrics

    for m in (2, 4, 8, 16):
        # FSS: the corresponding attack reads the full count.
        assert metrics["fss"][m] > 1.5
        # Randomized mechanisms: an order of magnitude less.
        for mechanism in ("fss_rts", "rss", "rss_rts"):
            assert metrics[mechanism][m] < 0.4
            assert metrics[mechanism][m] < 0.25 * metrics["fss"][m]

    # RTS strictly reduces leakage on top of each sizing scheme.
    for m in (4, 8, 16):
        assert metrics["fss_rts"][m] < metrics["fss"][m]
        assert metrics["rss_rts"][m] <= metrics["rss"][m] + 0.02
