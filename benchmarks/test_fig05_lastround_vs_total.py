"""Fig 5: last-round and total execution time both track coalescing.

Paper: the total execution time is proportional to the last-round coalesced
accesses, which justifies attacking the (cleaner) last-round time.
"""

import pytest

from repro.experiments import fig05

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig05")
def test_fig05(run_once):
    result = run_once(fig05.run, context_for("fig05"))
    record_result(result)

    # The last-round time is ~perfectly linear in last-round accesses.
    assert result.metrics["corr_last_accesses"] > 0.95
    # The total time correlates positively too (diluted by the 9 other
    # rounds' equal variance: ~1/sqrt(10) if perfectly linear).
    assert result.metrics["corr_total_last"] > 0.2
