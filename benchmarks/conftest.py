"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure via its experiment
harness, asserts the paper's qualitative shape (who wins, by roughly what
factor, where crossovers fall), prints the regenerated rows, and archives
them under ``benchmarks/results/``.

Experiments run once per benchmark (``pedantic`` with one round): the
regenerated artifact is the point, not the harness's own latency
distribution. Sample sizes default to a balanced profile that finishes the
whole suite in tens of minutes on one core; set ``REPRO_SAMPLES`` (or
``REPRO_PAPER=1`` for the paper's full 100-sample protocol) to rescale.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.base import ExperimentContext, ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"

#: Default sample counts per experiment id: (balanced, paper).
_PROFILES = {
    "fig05": (60, 100),
    "fig06": (100, 100),
    "fig07": (60, 100),
    "fig08": (60, 100),
    "fig09": (1000, 1000),
    "fig12": (60, 100),
    "fig13": (60, 100),
    "fig14": (60, 100),
    "fig15": (60, 100),
    "fig16": (25, 40),
    "fig17": (60, 100),
    "fig18": (30, 100),
    "table2": (1, 1),
}


def paper_scale() -> bool:
    return os.environ.get("REPRO_PAPER", "").lower() in {"1", "true", "yes"}


def context_for(experiment_id: str, root_seed: int = 2018
                ) -> ExperimentContext:
    """The benchmark context for one experiment."""
    override = os.environ.get("REPRO_SAMPLES")
    if override:
        samples = int(override)
    else:
        balanced, paper = _PROFILES[experiment_id]
        samples = paper if paper_scale() else balanced
    return ExperimentContext(root_seed=root_seed, samples=samples)


def record_result(result: ExperimentResult) -> None:
    """Print and archive a regenerated table/figure."""
    rendered = result.render()
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.experiment_id}.txt"
    path.write_text(rendered + "\n", encoding="utf-8")


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
