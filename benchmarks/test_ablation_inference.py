"""Ablation bench: num-subwarps inference from timing (Section IV-A).

Expected shape: the execution-time steps between M values (Fig 7a) make
the secret num-subwarps fully recoverable from a handful of timing
observations — the justification for assuming the FSS attacker knows M.
"""

import pytest

from repro.experiments import ablation_inference

from conftest import context_for, record_result


@pytest.mark.benchmark(group="ablations")
def test_ablation_inference(run_once):
    ctx = context_for("fig16")
    result = run_once(ablation_inference.run, ctx)
    record_result(result)

    assert result.metrics["accuracy"] == 1.0
    calibration = result.metrics["calibration"]
    # Calibrated means are strictly increasing in M (the Fig 7a staircase).
    ms = sorted(calibration)
    values = [calibration[m] for m in ms]
    assert values == sorted(values)
