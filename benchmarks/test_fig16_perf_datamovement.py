"""Fig 16: execution time and data movement of all four mechanisms.

Paper: both grow monotonically with num-subwarps; RTS is performance-
neutral; RSS-based mechanisms cost less than FSS-based at equal M; the
headline overhead band is 5-28% for the recommended configurations
(M = 2..16, RSS-based at the low end).
"""

import pytest

from repro.experiments import fig16

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig16")
def test_fig16(run_once):
    result = run_once(fig16.run, context_for("fig16"))
    record_result(result)
    times = result.metrics["normalized_time"]
    accesses = result.metrics["total_accesses"]

    for mech in times:
        sweep = sorted(times[mech])
        # Monotone cost in both metrics.
        assert [times[mech][m] for m in sweep] \
            == sorted(times[mech][m] for m in sweep)
        assert [accesses[mech][m] for m in sweep] \
            == sorted(accesses[mech][m] for m in sweep)

    for m in (2, 4, 8, 16):
        # RTS is performance-neutral (within measurement noise).
        assert times["fss_rts"][m] == pytest.approx(times["fss"][m],
                                                    rel=0.04)
        assert times["rss_rts"][m] == pytest.approx(times["rss"][m],
                                                    rel=0.04)
        # RSS-based mechanisms beat FSS-based at equal M.
        assert times["rss"][m] < times["fss"][m] + 0.02
        assert accesses["rss"][m] < accesses["fss"][m] * 1.01

    # At M=32 everything degenerates to coalescing-off.
    nocoal = result.metrics["nocoal_time_factor"]
    for mech in times:
        assert times[mech][32] == pytest.approx(nocoal, rel=0.03)
    assert 1.8 < nocoal < 2.8
    assert 2.0 < result.metrics["nocoal_access_factor"] < 2.8
