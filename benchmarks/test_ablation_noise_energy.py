"""Ablation benches: measurement noise and energy overhead.

Noise: the measured correlation attenuation must track the analytic
1/sqrt(1 + ratio^2) factor — the bridge between the paper's strong
(clean-channel) attacker and the realistic noisy one (Section V-C).

Energy: the defenses' energy overhead mirrors the Fig 16 cost curves —
monotone in num-subwarps, RSS-based cheapest, all converging at M=32.
"""

import pytest

from repro.experiments import ablation_energy, ablation_noise

from conftest import context_for, record_result


@pytest.mark.benchmark(group="ablations")
def test_ablation_noise(run_once):
    ctx = context_for("fig15")
    result = run_once(ablation_noise.run, ctx)
    record_result(result)
    metrics = result.metrics

    # Correlation decays monotonically with the noise ratio...
    ratios = sorted(metrics)
    correlations = [metrics[r]["corr"] for r in ratios]
    assert correlations[0] > correlations[-1]
    # ...and tracks the analytic attenuation at every point.
    for ratio in ratios:
        assert metrics[ratio]["corr"] == pytest.approx(
            metrics[ratio]["predicted"], abs=0.08
        )
    # Recovery degrades from partial to none.
    assert metrics[ratios[0]]["recovered"] >= 3
    assert metrics[ratios[-1]]["recovered"] <= 1


@pytest.mark.benchmark(group="ablations")
def test_ablation_energy(run_once):
    ctx = context_for("fig16")
    result = run_once(ablation_energy.run, ctx)
    record_result(result)
    metrics = result.metrics

    for mechanism, per_m in metrics.items():
        ms = sorted(per_m)
        totals = [per_m[m]["total"] for m in ms]
        # Monotone overhead, converging near the nocoal point at M=32.
        assert totals == sorted(totals), mechanism
        assert 1.1 < totals[0] < 1.7
        assert 2.0 < totals[-1] < 2.7
    for m in (2, 8):
        assert metrics["rss_rts"][m]["total"] \
            <= metrics["fss"][m]["total"] + 0.02
