"""Fig 14: RSS+RTS against its corresponding attack.

Paper: with randomness in both sizing and threading, recovery of the
correct key byte is difficult for num-subwarps > 2.
"""

import pytest

from repro.experiments import fig14

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig14")
def test_fig14(run_once):
    result = run_once(fig14.run, context_for("fig14"))
    record_result(result)
    corr = result.metrics["avg_corr"]
    recovered = result.metrics["bytes_recovered"]

    for m in (4, 8, 16):
        assert abs(corr[m]) < 0.2, f"RSS+RTS still leaking at M={m}"
        assert recovered[m] <= 2
