"""Fig 13: RSS against its corresponding attack.

Paper: for num-subwarps > 2 the correct key byte no longer has the highest
correlation — per-launch random sizing cannot be mimicked.
"""

import pytest

from repro.experiments import fig13

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig13")
def test_fig13(run_once):
    result = run_once(fig13.run, context_for("fig13"))
    record_result(result)
    corr = result.metrics["avg_corr"]
    recovered = result.metrics["bytes_recovered"]

    for m in (4, 8):
        assert abs(corr[m]) < 0.2, f"RSS still leaking at M={m}"
    # Recovery fails across the sweep (the paper allows M=2 to be
    # borderline; none of the sweep should recover the key).
    assert all(count <= 4 for count in recovered.values())
    assert sum(recovered.values()) <= 8
