"""Fig 15: security comparison of all four mechanisms.

Paper: FSS stays highly correlated under its attack at every M < 32 while
the randomized mechanisms collapse toward zero for M >= 2.
"""

import pytest

from repro.experiments import fig15

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig15")
def test_fig15(run_once):
    result = run_once(fig15.run, context_for("fig15"))
    record_result(result)
    corr = result.metrics["avg_corr"]

    # At M=1 every mechanism degenerates to the baseline machine.
    baseline_level = corr["fss"][1]
    for mech in ("fss_rts", "rss", "rss_rts"):
        assert corr[mech][1] == pytest.approx(baseline_level, abs=1e-9)

    # FSS keeps leaking at its baseline level across the sweep...
    for m in (2, 4, 8, 16):
        assert corr["fss"][m] > 0.15

    # ...while every randomized mechanism collapses for M >= 4.
    for mech in ("fss_rts", "rss", "rss_rts"):
        for m in (4, 8):
            assert abs(corr[mech][m]) < corr["fss"][m], \
                f"{mech} at M={m} leaks as much as FSS"
        assert abs(corr[mech][4]) < 0.18
