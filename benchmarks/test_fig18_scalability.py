"""Fig 18: the 1024-line (32-warp) case study.

Paper: (a) average correlation between estimated and observed last-round
accesses falls for the randomized mechanisms at num-subwarps > 1 while FSS
stays fully correlated; (b) execution time grows with num-subwarps, RTS is
time-neutral and RSS-based mechanisms stay cheaper than FSS-based
(RSS+RTS degrades 29-76% over M = 2..8).
"""

import pytest

from repro.experiments import fig18

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig18")
def test_fig18(run_once):
    result = run_once(fig18.run, context_for("fig18"))
    record_result(result)
    corr = result.metrics["avg_corr"]
    times = result.metrics["normalized_time"]

    # 18a: FSS's attack reconstructs the observed counts exactly.
    for m in (1, 2, 4, 8):
        assert corr["fss"][m] == pytest.approx(1.0, abs=1e-6)
    # The randomized mechanisms drop sharply for M >= 2.
    for mech in ("fss_rts", "rss", "rss_rts"):
        assert corr[mech][1] == pytest.approx(1.0, abs=1e-6)
        for m in (2, 4, 8):
            assert corr[mech][m] < 0.6
    # The RTS-bearing mechanisms also decay with M (Table II); standalone
    # RSS retains a position-structure leak through its in-order
    # assignment — the reason the paper pairs it with RTS.
    for mech in ("fss_rts", "rss_rts"):
        assert corr[mech][8] < corr[mech][2] + 0.05
    assert corr["rss"][8] > corr["rss_rts"][8]

    # 18b: monotone cost; RTS time-neutral; RSS cheaper than FSS;
    # RSS+RTS overhead in the paper's 29-76% band for M = 2..8.
    for mech in times:
        sweep = sorted(times[mech])
        assert [times[mech][m] for m in sweep] \
            == sorted(times[mech][m] for m in sweep)
    for m in (2, 4, 8):
        assert times["fss_rts"][m] == pytest.approx(times["fss"][m],
                                                    rel=0.04)
        assert times["rss"][m] <= times["fss"][m] + 0.02
        assert 1.2 < times["rss_rts"][m] < 2.1
