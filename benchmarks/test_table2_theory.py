"""Table II: theoretical rho and normalized samples, with MC cross-check.

Paper values: rho (FSS+RTS, RSS+RTS) = (0.41, 0.20), (0.20, 0.15),
(0.09, 0.11), (0.03, 0.05) for M = 2, 4, 8, 16; S = 6/25, 24/42, 115/78,
961/349; FSS is 1.0 / S=1 throughout and everything collapses at M=32.
"""

import math

import pytest

from repro.analysis.security import PAPER_TABLE2, security_table
from repro.experiments import table2

from conftest import context_for, record_result


@pytest.mark.benchmark(group="table2")
def test_table2_theory(run_once):
    rows = run_once(security_table)
    by_m = {row.num_subwarps: row for row in rows}

    for m, expected in PAPER_TABLE2.items():
        rho_fss, rho_fss_rts, rho_rss_rts = expected["rho"]
        assert by_m[m].rho_fss == pytest.approx(rho_fss, abs=0.005)
        assert by_m[m].rho_fss_rts == pytest.approx(rho_fss_rts, abs=0.005)
        assert by_m[m].rho_rss_rts == pytest.approx(rho_rss_rts, abs=0.005)

    # Headline: 961x at FSS+RTS M=16, crossover between mechanisms at M=8.
    assert by_m[16].s_fss_rts == pytest.approx(961, abs=1)
    assert by_m[4].s_rss_rts > by_m[4].s_fss_rts
    assert by_m[8].s_fss_rts > by_m[8].s_rss_rts
    assert math.isinf(by_m[32].s_fss)


@pytest.mark.benchmark(group="table2")
def test_table2_with_montecarlo(run_once):
    result = run_once(table2.run, context_for("table2"))
    record_result(result)
    # MC columns sit next to the exact ones in every row.
    for row in result.rows:
        m, _, rho_fr, mc_fr, rho_rr, mc_rr = row[:6]
        assert mc_fr == pytest.approx(rho_fr, abs=0.06)
        assert mc_rr == pytest.approx(rho_rr, abs=0.06)
