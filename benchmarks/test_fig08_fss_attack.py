"""Fig 8: the FSS attack (Algorithm 1) defeats standalone FSS.

Paper: an attacker who knows num-subwarps reconstructs the per-warp counts
exactly, re-establishing correlation at every M < 32 — FSS alone is not an
adequate defense.
"""

import numpy as np
import pytest

from repro.experiments import fig08
from repro.experiments.base import collect_records, run_corresponding_attack
from repro.core.policies import make_policy

from conftest import context_for, record_result


@pytest.mark.benchmark(group="fig08")
def test_fig08_timing_channel(run_once):
    result = run_once(fig08.run, context_for("fig08"))
    record_result(result)
    corr = result.metrics["avg_corr"]

    # The timing channel keeps leaking at every M: the correlation stays
    # at the baseline machine's level instead of collapsing.
    for m, value in corr.items():
        assert value > 0.1, f"FSS attack lost the signal at M={m}"


@pytest.mark.benchmark(group="fig08")
def test_fig08_counts_channel(run_once):
    """On the clean counts channel, Algorithm 1's reconstruction is exact:
    correlation 1.0 and full key recovery at every M < 32."""
    ctx = context_for("fig08")

    def attack(m):
        server, records = collect_records(
            ctx, make_policy("fss", m), 40, counts_only=True
        )
        observed = np.array(
            [r.last_round_byte_accesses for r in records]
        ).T
        return run_corresponding_attack(ctx, server, records, "fss", m,
                                        observable=observed)

    recoveries = run_once(lambda: {m: attack(m) for m in (2, 4, 8, 16)})
    for m, recovery in recoveries.items():
        assert recovery.average_correct_correlation == pytest.approx(1.0)
        assert recovery.success, f"Algorithm 1 failed at M={m}"
