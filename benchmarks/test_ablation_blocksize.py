"""Ablation bench: defense strength vs memory-block size.

Expected shape: at fixed M, the attack correlation rises monotonically
with R (smaller blocks = fewer collisions = easier mimicry), so sectored
memories would need larger num-subwarps for the same protection. The
paper's R=16 sits in the middle of the sweep; the Monte Carlo tracks the
closed forms at every point.
"""

import pytest

from repro.analysis.model import rho_fss_rts, rho_rss_rts
from repro.experiments import ablation_blocksize

from conftest import context_for, record_result


@pytest.mark.benchmark(group="ablations")
def test_ablation_blocksize(run_once):
    result = run_once(ablation_blocksize.run, context_for("table2"))
    record_result(result)
    metrics = result.metrics

    rs = sorted(metrics)
    # Monotone weakening with R for both mechanisms.
    rss_series = [metrics[r]["rss_rts"] for r in rs]
    fss_series = [metrics[r]["fss_rts"] for r in rs]
    assert rss_series == sorted(rss_series)
    assert fss_series == sorted(fss_series)
    # MC agrees with theory at every configuration.
    for r in rs:
        assert metrics[r]["fss_rts_mc"] == pytest.approx(
            metrics[r]["fss_rts"], abs=0.05
        )


@pytest.mark.benchmark(group="ablations")
def test_blocksize_trend_wide_sweep(run_once):
    """The monotone trend over a wide R range, both M regimes."""
    def sweep():
        return {
            (m, r): (float(rho_fss_rts(32, r, m)),
                     float(rho_rss_rts(32, r, m)))
            for m in (2, 8) for r in (4, 8, 16, 32, 64)
        }

    values = run_once(sweep)
    for m in (2, 8):
        series_f = [values[(m, r)][0] for r in (4, 8, 16, 32, 64)]
        series_r = [values[(m, r)][1] for r in (4, 8, 16, 32, 64)]
        assert series_f == sorted(series_f)
        assert series_r == sorted(series_r)
