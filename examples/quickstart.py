#!/usr/bin/env python3
"""Quickstart: encrypt on a simulated GPU under each coalescing policy.

Stands up the paper's Table I machine, encrypts one 32-line plaintext under
every coalescing policy, and prints what the defense changes: execution
time, data movement, and the last-round access count the timing attack
tries to estimate.

Run:  python examples/quickstart.py
"""

from repro import EncryptionServer, RngStream, make_policy, random_plaintexts

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NUM_SUBWARPS = 8


def main() -> None:
    plaintext = random_plaintexts(1, 32, RngStream(7, "quickstart"))[0]

    print(f"Encrypting a 32-line plaintext under each policy "
          f"(num_subwarps={NUM_SUBWARPS} for subwarp policies)\n")
    header = (f"{'policy':>10}  {'cycles':>8}  {'norm':>5}  "
              f"{'accesses':>8}  {'last-round acc':>14}")
    print(header)
    print("-" * len(header))

    baseline_cycles = None
    for name in ("baseline", "fss", "fss_rts", "rss", "rss_rts", "nocoal"):
        policy = make_policy(name, NUM_SUBWARPS)
        server = EncryptionServer(
            KEY, policy,
            rng=RngStream(7, f"victim-{name}")
            if policy.is_randomized else None,
        )
        record = server.encrypt(plaintext)
        if baseline_cycles is None:
            baseline_cycles = record.total_time
        print(f"{name:>10}  {record.total_time:>8}  "
              f"{record.total_time / baseline_cycles:>5.2f}  "
              f"{record.total_accesses:>8}  "
              f"{record.last_round_accesses:>14}")

    print("\nThe ciphertext is real AES-128 (FIPS-197):")
    server = EncryptionServer(KEY, make_policy("baseline"))
    record = server.encrypt(plaintext)
    print(f"  first line: {record.ciphertext_lines[0].hex()}")

    from repro.aes import decrypt_block
    recovered = decrypt_block(record.ciphertext_lines[0], KEY)
    assert recovered == plaintext[:16]
    print(f"  decrypts back to: {recovered.hex()}")


if __name__ == "__main__":
    main()
