#!/usr/bin/env python3
"""Pick an RCoal configuration: the security/performance trade-off.

Sweeps the four mechanisms over num-subwarps, measuring security on the
clean counts channel (where the Section V theory is exact) and performance
on the timing simulator, then ranks configurations by RCoal_Score
(Equation 7) under the paper's two design weightings.

Run:  python examples/defense_tradeoff.py        (~2 minutes)
"""

import numpy as np

from repro import (
    AccessEstimator,
    CorrelationTimingAttack,
    EncryptionServer,
    RngStream,
    make_policy,
    random_plaintexts,
    rcoal_score,
    samples_needed,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
MECHANISMS = ("fss", "fss_rts", "rss", "rss_rts")
SUBWARPS = (2, 4, 8, 16)
SECURITY_SAMPLES = 80
PERF_SAMPLES = 8


def measure(mechanism: str, m: int):
    """(attack correlation on counts channel, normalized exec time)."""
    plaintexts = random_plaintexts(SECURITY_SAMPLES, 32,
                                   RngStream(3, "pt"))
    policy = make_policy(mechanism, m)
    victim = EncryptionServer(
        KEY, policy, counts_only=True,
        rng=RngStream(3, f"v-{mechanism}-{m}")
        if policy.is_randomized else None,
    )
    records = victim.encrypt_batch(plaintexts)
    model = make_policy(mechanism, m)
    attack = CorrelationTimingAttack(AccessEstimator(
        model,
        rng=RngStream(3, f"a-{mechanism}-{m}")
        if model.is_randomized else None,
    ))
    observed = np.array([r.last_round_byte_accesses for r in records]).T
    recovery = attack.recover_key(
        [r.ciphertext_lines for r in records], observed,
        correct_key=victim.last_round_key,
    )
    corr = abs(recovery.average_correct_correlation)

    timing_victim = EncryptionServer(
        KEY, make_policy(mechanism, m),
        rng=RngStream(3, f"t-{mechanism}-{m}")
        if policy.is_randomized else None,
    )
    times = [timing_victim.encrypt(p).total_time
             for p in plaintexts[:PERF_SAMPLES]]
    return corr, float(np.mean(times))


def main() -> None:
    baseline = EncryptionServer(KEY, make_policy("baseline"))
    plaintexts = random_plaintexts(PERF_SAMPLES, 32, RngStream(3, "pt"))
    base_time = float(np.mean([baseline.encrypt(p).total_time
                               for p in plaintexts]))

    rows = []
    for mechanism in MECHANISMS:
        for m in SUBWARPS:
            corr, mean_time = measure(mechanism, m)
            norm_time = mean_time / base_time
            rows.append((mechanism, m, corr, norm_time))

    print(f"{'mechanism':>9} {'M':>3} {'attack corr':>11} "
          f"{'samples needed':>14} {'time':>6} "
          f"{'score(b=1)':>11} {'score(b=20)':>12}")
    for mechanism, m, corr, norm_time in rows:
        needed = samples_needed(corr) if corr > 0 else float("inf")
        b1 = rcoal_score(corr, norm_time, a=1, b=1) if corr else float("inf")
        b20 = rcoal_score(corr, norm_time, a=1, b=20) if corr \
            else float("inf")
        print(f"{mechanism:>9} {m:>3} {corr:>11.3f} {needed:>14.3g} "
              f"{norm_time:>6.2f} {b1:>11.3g} {b20:>12.3g}")

    print("\npaper's conclusions to look for:")
    print("  * FSS: correlation stays ~1.0 -> no security, all cost")
    print("  * security-oriented (b=1): FSS+RTS at M=8..16 scores best")
    print("  * performance-oriented (b=20): RSS+RTS overtakes FSS+RTS")


if __name__ == "__main__":
    main()
