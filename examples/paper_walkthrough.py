#!/usr/bin/env python3
"""The whole paper in five acts, at demo scale.

A guided tour matching the paper's narrative: the substrate is real AES,
coalescing leaks, the leak recovers keys, randomized coalescing stops it,
and the theory prices the trade-off. Each act prints what to look at.

Run:  python examples/paper_walkthrough.py        (~1 minute)
"""

import numpy as np

from repro import (
    AccessEstimator,
    CorrelationTimingAttack,
    EncryptionServer,
    RngStream,
    TTableAES,
    make_policy,
    random_plaintexts,
    recover_master_key,
    security_table,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
SAMPLES = 60


def act1_the_substrate():
    print("ACT 1 — the substrate is real AES-128")
    trace = TTableAES(KEY).encrypt(bytes(16))
    print(f"  E(0^128) = {trace.ciphertext.hex()}  (FIPS-verifiable)")
    print(f"  ...computed via {trace.total_lookups} T-table lookups/"
          f"thread; the last round's 16 indices are the leak surface\n")


def act2_the_leak():
    print("ACT 2 — coalescing turns data into access counts")
    server = EncryptionServer(KEY, make_policy("baseline"),
                              counts_only=True)
    for label, plaintext in (("identical lines", bytes(32 * 16)),
                             ("random lines",
                              random_plaintexts(1, 32,
                                                RngStream(0, "walk"))[0])):
        record = server.encrypt(plaintext)
        print(f"  {label:>16}: {record.last_round_accesses:4d} "
              f"last-round accesses")
    print("  data-dependent counts + count-dependent time = side channel\n")


def _attack(policy_name, m):
    policy = make_policy(policy_name, m)
    server = EncryptionServer(
        KEY, policy, counts_only=True,
        rng=RngStream(1, f"victim-{policy_name}")
        if policy.is_randomized else None,
    )
    records = server.encrypt_batch(
        random_plaintexts(SAMPLES, 32, RngStream(1, "pt"))
    )
    model = make_policy(policy_name, m)
    attack = CorrelationTimingAttack(AccessEstimator(
        model,
        rng=RngStream(1, f"attacker-{policy_name}")
        if model.is_randomized else None,
    ))
    observed = np.array([r.last_round_byte_accesses for r in records]).T
    return attack.recover_key(
        [r.ciphertext_lines for r in records], observed,
        correct_key=server.last_round_key,
    )


def act3_the_attack():
    print(f"ACT 3 — the correlation attack ({SAMPLES} samples, "
          f"clean counts channel)")
    recovery = _attack("baseline", 1)
    print(f"  undefended GPU: {recovery.num_correct}/16 key bytes, "
          f"corr {recovery.average_correct_correlation:.3f}")
    if recovery.success:
        master = recover_master_key(recovery.recovered_key)
        print(f"  master key recovered: {master.hex()} "
              f"({'CORRECT' if master == KEY else 'WRONG'})")
    print()
    return recovery


def act4_the_defense():
    print("ACT 4 — RCoal: the same mechanism-aware attack vs RSS+RTS(M=8)")
    recovery = _attack("rss_rts", 8)
    print(f"  defended GPU: {recovery.num_correct}/16 key bytes, "
          f"corr {recovery.average_correct_correlation:+.3f}, "
          f"avg rank {recovery.average_rank:.0f} (chance 127.5)\n")
    return recovery


def act5_the_price():
    print("ACT 5 — the theory prices it (Table II)")
    print("   M   rho FSS+RTS  rho RSS+RTS  samples x (FSS+RTS)")
    for row in security_table(subwarp_counts=(2, 4, 8, 16)):
        print(f"  {row.num_subwarps:2d}   {row.rho_fss_rts:11.3f}  "
              f"{row.rho_rss_rts:11.3f}  {row.s_fss_rts:19.0f}")
    print("\n  5-28% slowdown buys 24-961x more attack samples. "
          "That is the paper.")


def main() -> None:
    act1_the_substrate()
    act2_the_leak()
    baseline = act3_the_attack()
    defended = act4_the_defense()
    act5_the_price()
    assert baseline.num_correct > defended.num_correct


if __name__ == "__main__":
    main()
