#!/usr/bin/env python3
"""The correlation timing attack, end to end — and RCoal stopping it.

Reproduces the paper's story on one page:

1. a victim GPU server encrypts attacker-chosen plaintexts; the attacker
   records ciphertexts and last-round execution times;
2. against the **baseline** machine, correlating Equation-3 access
   estimates with time ranks the correct key byte at (or near) the top;
   with enough samples the full last-round key falls, and the AES key
   schedule is inverted to the master key;
3. against an **RSS+RTS** machine the same (mechanism-aware!) attack finds
   nothing.

Run:  python examples/attack_demo.py          (~2 minutes)
      REPRO_SAMPLES=800 python examples/attack_demo.py   (full recovery)
"""

import os

from repro import (
    AccessEstimator,
    CorrelationTimingAttack,
    EncryptionServer,
    RngStream,
    make_policy,
    random_plaintexts,
    recover_master_key,
)

SECRET_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
SAMPLES = int(os.environ.get("REPRO_SAMPLES", "200"))


def run_attack(policy_name: str, num_subwarps: int = 8):
    print(f"\n=== victim: {policy_name}"
          f"{f'(M={num_subwarps})' if policy_name != 'baseline' else ''} "
          f"| {SAMPLES} timing samples ===")

    victim_policy = make_policy(policy_name, num_subwarps)
    server = EncryptionServer(
        SECRET_KEY, victim_policy,
        rng=RngStream(1, f"victim-{policy_name}")
        if victim_policy.is_randomized else None,
    )
    plaintexts = random_plaintexts(SAMPLES, 32, RngStream(1, "plaintexts"))
    records = server.encrypt_batch(plaintexts)

    # The attacker models the machine (the corresponding attack: they know
    # the mechanism, but draw their own randomness).
    model = make_policy(policy_name, num_subwarps)
    estimator = AccessEstimator(
        model,
        rng=RngStream(1, "attacker") if model.is_randomized else None,
    )
    attack = CorrelationTimingAttack(estimator)
    recovery = attack.recover_key(
        [r.ciphertext_lines for r in records],
        [r.last_round_time for r in records],
        correct_key=server.last_round_key,
    )

    print(f"  avg correct-guess correlation: "
          f"{recovery.average_correct_correlation:+.3f}")
    print(f"  key bytes recovered:           {recovery.num_correct}/16")
    print(f"  avg rank of correct byte:      {recovery.average_rank:.1f} "
          f"(0 = recovered, 127.5 = chance)")
    if recovery.success:
        master = recover_master_key(recovery.recovered_key)
        print(f"  LAST-ROUND KEY RECOVERED -> master key {master.hex()}")
        assert master == SECRET_KEY
    return recovery


def main() -> None:
    baseline = run_attack("baseline")
    protected = run_attack("rss_rts", 8)

    print("\n=== verdict ===")
    print(f"  baseline machine leaks: rank {baseline.average_rank:.1f} "
          f"vs protected {protected.average_rank:.1f}")
    print("  (run with REPRO_SAMPLES=800 to watch the baseline fall "
          "completely while RSS+RTS still holds)")


if __name__ == "__main__":
    main()
