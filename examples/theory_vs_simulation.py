#!/usr/bin/env python3
"""Table II three ways: closed form, Monte Carlo, and full system.

The Section V model predicts the correlation a mechanism-aware attacker can
achieve. This example computes it three independent ways:

1. **theory** — the exact closed forms (occupancy distributions +
   analytical marginalization, exact rational arithmetic);
2. **monte carlo** — random thread->block draws with independent victim /
   attacker partition draws;
3. **system** — the real pipeline: AES traces, the coalescing unit, the
   corresponding attack correlating against *observed* per-byte counts.

All three should agree — that agreement is the reproduction's core
validity argument.

Run:  python examples/theory_vs_simulation.py     (~1 minute)
"""

import numpy as np

from repro import (
    AccessEstimator,
    CorrelationTimingAttack,
    EncryptionServer,
    RngStream,
    make_policy,
    random_plaintexts,
)
from repro.analysis.model import rho_fss_rts, rho_rss_rts
from repro.analysis.montecarlo import empirical_rho

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
MC_SAMPLES = 6000
SYSTEM_SAMPLES = 120


def system_rho(mechanism: str, m: int) -> float:
    plaintexts = random_plaintexts(SYSTEM_SAMPLES, 32, RngStream(11, "pt"))
    victim = EncryptionServer(
        KEY, make_policy(mechanism, m), counts_only=True,
        rng=RngStream(11, f"v-{mechanism}-{m}"),
    )
    records = victim.encrypt_batch(plaintexts)
    attack = CorrelationTimingAttack(AccessEstimator(
        make_policy(mechanism, m),
        rng=RngStream(11, f"a-{mechanism}-{m}"),
    ))
    observed = np.array([r.last_round_byte_accesses for r in records]).T
    recovery = attack.recover_key(
        [r.ciphertext_lines for r in records], observed,
        correct_key=victim.last_round_key,
    )
    return recovery.average_correct_correlation


def main() -> None:
    closed_forms = {"fss_rts": rho_fss_rts, "rss_rts": rho_rss_rts}
    print(f"{'mechanism':>9} {'M':>3} {'theory':>8} {'monte carlo':>12} "
          f"{'full system':>12}")
    for mechanism in ("fss_rts", "rss_rts"):
        for m in (2, 4, 8):
            theory = float(closed_forms[mechanism](32, 16, m))
            mc = empirical_rho(make_policy(mechanism, m), 16, MC_SAMPLES,
                               RngStream(11, f"mc-{mechanism}-{m}"))
            system = system_rho(mechanism, m)
            print(f"{mechanism:>9} {m:>3} {theory:>8.3f} {mc:>12.3f} "
                  f"{system:>12.3f}")

    print("\npaper Table II: fss_rts = 0.41 / 0.20 / 0.09, "
          "rss_rts = 0.20 / 0.15 / 0.11 for M = 2 / 4 / 8")


if __name__ == "__main__":
    main()
