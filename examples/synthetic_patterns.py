#!/usr/bin/env python3
"""How much does RCoal cost on non-AES access patterns?

The paper characterizes RCoal's overhead on AES (uniform random lookups
over 16 blocks). This example sweeps coalescing policies over synthetic
patterns — perfectly coalescible, uncoalescible, AES-like random, and
hotspot — showing that the overhead is a property of the workload's
*coalescibility*: subwarping a sequential kernel multiplies its traffic by
the subwarp count, while an already-uncoalescible kernel pays nothing.

Run:  python examples/synthetic_patterns.py        (~30 seconds)
"""

from repro import RngStream, make_policy
from repro.core.rcoal import RCoalGPU
from repro.workloads.synthetic import (
    HotspotPattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    SyntheticKernel,
)

PATTERNS = (
    SequentialPattern(),
    RandomPattern(num_blocks=16),
    HotspotPattern(),
    StridedPattern(),
)
POLICIES = (("baseline", 1), ("rss_rts", 4), ("rss_rts", 16), ("nocoal", 32))


def main() -> None:
    print(f"{'pattern':>10} | " + " | ".join(
        f"{name}(M={m}):time/acc".rjust(24) for name, m in POLICIES))
    print("-" * (13 + 27 * len(POLICIES)))

    for pattern in PATTERNS:
        cells = []
        baseline_time = None
        for name, m in POLICIES:
            policy = make_policy(name, m)
            gpu = RCoalGPU(policy)
            kernel = SyntheticKernel(pattern, num_warps=1)
            programs = kernel.build(RngStream(5, f"pat-{pattern.name}"))
            rng = (RngStream(5, f"victim-{pattern.name}-{name}-{m}")
                   if policy.is_randomized else None)
            result = gpu.launch(programs, rng).result
            if baseline_time is None:
                baseline_time = result.total_time
            cells.append(
                f"{result.total_time / baseline_time:5.2f}x /"
                f"{result.table_accesses:6d}".rjust(24)
            )
        print(f"{pattern.name:>10} | " + " | ".join(cells))

    print("\nreading guide:")
    print("  * sequential: fully coalescible -> subwarping multiplies "
          "traffic by ~M (the defense's worst case)")
    print("  * strided: one block per thread anyway -> randomization is "
          "free")
    print("  * random(R=16): the AES regime the paper reports (~2x at "
          "full split)")


if __name__ == "__main__":
    main()
