"""Seeded random-number-stream management.

The security of RSS/RTS hinges on the *victim's* random draws being
unpredictable to the *attacker*. To model that honestly while keeping every
experiment reproducible, all randomness in this package flows through named
:class:`RngStream` objects derived from a single experiment seed:

* the stream name ("victim", "attacker", "workload", ...) is hashed into the
  seed material, so two streams with the same root seed but different names
  are statistically independent;
* the same (root seed, name) pair always yields the same sequence, so every
  figure in the paper regenerates bit-identically.

``numpy.random.Generator`` (PCG64) is the underlying engine; helpers expose
the handful of draw shapes the library needs.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["derive_seed", "RngStream", "split_streams"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 over the root seed and name so that distinct names produce
    independent, well-mixed child seeds even for adjacent root seeds.
    """
    material = f"{root_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "little")


class RngStream:
    """A named, reproducible random stream.

    Parameters
    ----------
    root_seed:
        The experiment-level seed shared by all streams of one run.
    name:
        Stream identity; distinct names yield independent streams.
    """

    def __init__(self, root_seed: int, name: str):
        self.root_seed = int(root_seed)
        self.name = name
        self._generator = np.random.Generator(
            np.random.PCG64(derive_seed(self.root_seed, name))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngStream(root_seed={self.root_seed}, name={self.name!r})"

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (for bulk vectorized draws)."""
        return self._generator

    def child(self, name: str) -> "RngStream":
        """Derive a sub-stream; e.g. ``victim.child("sample-17")``."""
        return RngStream(derive_seed(self.root_seed, self.name), name)

    # -- draw helpers ------------------------------------------------------

    def integers(self, low: int, high: int, size: Optional[int] = None):
        """Uniform integers in ``[low, high)``."""
        return self._generator.integers(low, high, size=size)

    def random_bytes(self, n: int) -> bytes:
        """``n`` uniformly random bytes."""
        return self._generator.bytes(n)

    def permutation(self, n: int) -> np.ndarray:
        """A uniformly random permutation of ``range(n)``."""
        return self._generator.permutation(n)

    def choice_without_replacement(self, n: int, k: int) -> np.ndarray:
        """``k`` distinct values sampled uniformly from ``range(n)``."""
        return self._generator.choice(n, size=k, replace=False)

    def normal(self, mean: float, std: float, size: Optional[int] = None):
        """Normal draws (used by the normal RSS sizing variant)."""
        return self._generator.normal(mean, std, size=size)

    def uniform(self, low: float = 0.0, high: float = 1.0,
                size: Optional[int] = None):
        """Uniform float draws in ``[low, high)``."""
        return self._generator.uniform(low, high, size=size)


def split_streams(root_seed: int, names: Sequence[str]) -> List[RngStream]:
    """Create one independent stream per name from a single root seed."""
    return [RngStream(root_seed, name) for name in names]
