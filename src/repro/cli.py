"""Command-line entry point: regenerate paper tables and figures.

Usage::

    rcoal list                     # show available experiments
    rcoal fig06                    # regenerate Fig 6
    rcoal fig15 --samples 40       # smaller run
    rcoal fig07 -j 4               # fan samples out over 4 processes
    rcoal all                      # regenerate everything (slow)
    rcoal all -j 8                 # parallel, byte-identical output

Observability subcommands (see ``docs/observability.md``)::

    rcoal trace fig05 --out trace.json    # Chrome trace_event JSON
    rcoal metrics fig05                   # metrics snapshot table
    rcoal metrics fig05 --check BASELINE_METRICS.json   # regression gate
    rcoal serve fig07 --port 8000 -j 2    # live dashboard while running
    rcoal fig07 --serve 8000              # same, riding on a normal run
    rcoal profile fig05                   # sim-cycle cost centers + wall spans
    rcoal fig07 -j 4 --profile            # wall-clock span table on stderr

Benchmarks (see ``docs/performance.md``)::

    rcoal bench                    # time workloads, emit BENCH_<n>.json

Resilience (see ``docs/robustness.md``)::

    rcoal fig07 --resume runs/f7          # checkpoint; rerun to resume
    rcoal all -j 8 --resume runs/all      # per-experiment checkpoints
    rcoal fig07 -j 4 --supervise          # deadlines, retries, quarantine
    rcoal fig07 --supervise --faults raise@3   # deterministic chaos

Campaign status (the run-ledger surface; docs/observability.md)::

    rcoal status runs/f7                  # restored/remaining, latency
    rcoal status runs/all --json          # machine-readable manifest
    rcoal status runs/f7 --watch 2        # live, redrawn every 2 s
    rcoal status runs/f7 --gc             # drop superseded chunks,
                                          # compact the ledger

Sharded execution (coordinator-free multi-worker; docs/robustness.md)::

    rcoal shard runs/all &                # start any number of these —
    rcoal shard runs/all &                # same dir, same args; they
    rcoal shard runs/all                  # split the work via leases
    rcoal shard runs/f7 fig07             # shard a single experiment
    rcoal status runs/all --watch 2       # who holds which lease

Every worker's stdout is byte-identical to the serial run's; kill any
of them (even ``kill -9``) and the survivors reclaim its lease and
finish the campaign.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.errors import (
    CheckpointMismatchError,
    ConfigurationError,
    ExperimentError,
    ReproError,
)
from repro.experiments.base import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.telemetry import Telemetry, configure_logging

__all__ = ["main"]

# ---------------------------------------------------------------------------
# Exit codes — the single place the error-class → exit-code mapping lives.
# Scripts and CI assert on these; keep docs/robustness.md in sync.
# ---------------------------------------------------------------------------

EXIT_OK = 0
EXIT_FAILURE = 1        # unexpected repro error; also metrics drift
EXIT_USAGE = 2          # argparse's own code for bad flags, listed for docs
EXIT_CONFIG = 3         # invalid configuration (unknown experiment, bad plan)
EXIT_CHECKPOINT = 4     # --resume directory belongs to another campaign
EXIT_WORKER = 5         # worker crash/timeout escaped the retry budget
EXIT_QUARANTINE = 6     # run completed but samples were quarantined
EXIT_INTERRUPT = 130    # Ctrl-C (128 + SIGINT, shell convention)

#: First matching class wins — ordered most-specific first.
EXIT_BY_ERROR = (
    (CheckpointMismatchError, EXIT_CHECKPOINT),
    (ExperimentError, EXIT_WORKER),
    (ConfigurationError, EXIT_CONFIG),
    (ReproError, EXIT_FAILURE),
)

#: Telemetry subcommands handled by dedicated parsers; everything else is
#: the classic ``rcoal <experiment>`` form.
_TELEMETRY_COMMANDS = ("trace", "metrics")


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2018,
                        help="root experiment seed (default 2018)")
    parser.add_argument("--samples", type=int, default=None,
                        help="override plaintext sample count")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes (0 = one per CPU); results "
                             "are bit-identical to -j 1")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="enable repro.* logging on stderr "
                             "(-v info, -vv debug)")
    parser.add_argument("--progress", action="store_true",
                        help="per-sample ETA reporting on stderr")
    parser.add_argument("--profile", action="store_true",
                        help="collect wall-clock span profiling for the "
                             "run and print the span table on stderr; "
                             "stdout stays bit-identical (see 'rcoal "
                             "profile' for the sim-cycle cost-center "
                             "profiler)")
    parser.add_argument("--batched", default=None,
                        action=argparse.BooleanOptionalAction,
                        help="force the batched structure-of-arrays "
                             "collection core for counts-only phases "
                             "(--no-batched forces the per-launch event "
                             "engine); default: REPRO_BATCHED, then on. "
                             "Counts are checksum-identical either way "
                             "(see docs/performance.md)")
    parser.add_argument("--batched-timing", default=None,
                        action=argparse.BooleanOptionalAction,
                        help="force the wavefront-batched exact-timing "
                             "engine for timed phases "
                             "(--no-batched-timing forces the per-event "
                             "engine); default: REPRO_BATCHED_TIMING, "
                             "then on. The KernelResult is identical "
                             "either way; unsupported launches fall "
                             "back to the event engine (see "
                             "docs/performance.md)")


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "resilience", "checkpoint/resume and worker supervision "
        "(docs/robustness.md); all off by default — an unflagged run is "
        "byte-identical to earlier releases")
    group.add_argument("--resume", metavar="DIR", default=None,
                       help="checkpoint completed samples under DIR and "
                            "skip them on rerun; a resumed campaign "
                            "reproduces the uninterrupted output byte for "
                            "byte ('all' uses DIR/<experiment>)")
    group.add_argument("--supervise", action="store_true",
                       help="supervise workers: per-chunk deadlines, "
                            "capped-backoff retries, poison-sample "
                            "quarantine, degradation to serial when the "
                            "pool keeps dying")
    group.add_argument("--chunk-deadline", type=float, metavar="SECONDS",
                       default=None,
                       help="wall-clock deadline per worker chunk "
                            "(implies --supervise; default 300)")
    group.add_argument("--max-attempts", type=int, metavar="N", default=None,
                       help="attempts per work item before it is split / "
                            "quarantined (implies --supervise; default 3)")
    group.add_argument("--faults", metavar="PLAN", default=None,
                       help="inject deterministic faults, e.g. "
                            "'raise@3,hang@0x*,torn@out.json' "
                            "(chaos testing; see repro.faults)")


def _resilience_fields(args) -> dict:
    """``ExperimentContext`` fields for the resilience flags.

    Empty when no flag is set, so the default path builds the exact same
    context as before.
    """
    supervised = (args.supervise or args.chunk_deadline is not None
                  or args.max_attempts is not None)
    if not (supervised or args.resume or args.faults):
        return {}
    from repro.experiments.runner import CampaignStats, SupervisionPolicy
    fields: dict = {"campaign": CampaignStats()}
    if supervised:
        overrides = {}
        if args.chunk_deadline is not None:
            overrides["chunk_deadline"] = args.chunk_deadline
        if args.max_attempts is not None:
            overrides["max_attempts"] = args.max_attempts
        fields["supervision"] = SupervisionPolicy(**overrides)
    if args.faults:
        from repro.faults import install_plan, parse_fault_plan
        plan = parse_fault_plan(args.faults)
        install_plan(plan)  # arms write-site (torn) faults in this process
        fields["faults"] = plan
    return fields


def _open_store(resume_dir: str, experiment_id: str, ctx,
                multiple: bool, instrumented: bool):
    """Open (or validate) the checkpoint store for one experiment."""
    from repro.experiments.checkpoint import (
        CheckpointStore,
        campaign_fingerprint,
    )
    run_dir = os.path.join(resume_dir, experiment_id) if multiple \
        else resume_dir
    return CheckpointStore.open(
        run_dir, campaign_fingerprint(experiment_id, ctx, instrumented))


def _finish_campaign(campaign) -> int:
    """Summarize supervision incidents; exit 6 when samples were lost."""
    if campaign is None or not campaign.eventful():
        return EXIT_OK
    print(f"[campaign: {campaign.summary()}]", file=sys.stderr)
    if campaign.failed_samples:
        for entry in campaign.failed_samples:
            print(f"  quarantined sample {entry['sample']} "
                  f"({entry['phase']}): {entry['error']}", file=sys.stderr)
        return EXIT_QUARANTINE
    return EXIT_OK


def _emit_profile_summary(telemetry) -> None:
    """Wall-clock span table on stderr (stdout stays diff-clean)."""
    if telemetry is None or not telemetry.profiler.enabled \
            or len(telemetry.profiler) == 0:
        return
    print("== wall-clock profile ==", file=sys.stderr)
    print(telemetry.profiler.render_table(), file=sys.stderr)


def _add_serve_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--serve", metavar="PORT", default=None,
                        help="serve a live telemetry dashboard + JSON API "
                             "on PORT (or HOST:PORT) for the duration of "
                             "the run; results stay bit-identical "
                             "(see docs/observability.md)")


def _start_server(spec: str, telemetry, campaign_dir=None):
    """Start the --serve sink; prints the dashboard URL to stderr.

    ``campaign_dir`` (the run's ``--resume`` directory, when it has one)
    lights up the ``/campaign`` endpoint and the ledger-staleness check
    in ``/health``.
    """
    from repro.telemetry.serve import TelemetryServer, parse_serve_spec
    host, port = parse_serve_spec(spec)
    server = TelemetryServer(telemetry, host=host, port=port,
                             campaign_dir=campaign_dir).start()
    print(f"[serving live telemetry at {server.url}]", file=sys.stderr)
    return server


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rcoal",
        description="RCoal (HPCA 2018) reproduction: regenerate paper "
                    "tables and figures on the simulated GPU. "
                    "Subcommands 'trace' and 'metrics' run one experiment "
                    "with telemetry enabled (see rcoal trace --help).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig06, table2), 'all', or 'list'",
    )
    _add_common_arguments(parser)
    _add_serve_argument(parser)
    _add_resilience_arguments(parser)
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write the result rows as CSV "
                             "(experiment id is appended for 'all')")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the result as JSON")
    parser.add_argument("--chart", type=int, metavar="COLUMN", default=None,
                        help="also render column COLUMN (1-based after the "
                             "x column) as an ASCII bar chart")
    return parser


def _build_telemetry_parser(command: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"rcoal {command}",
        description=(
            "Run one experiment with event tracing enabled and export a "
            "Chrome trace_event JSON (open in chrome://tracing or "
            "https://ui.perfetto.dev)." if command == "trace" else
            "Run one experiment with metrics enabled and print the "
            "counter/gauge/histogram snapshot."
        ),
    )
    parser.add_argument("experiment",
                        help="experiment id (e.g. fig05, fig06)")
    _add_common_arguments(parser)
    _add_serve_argument(parser)
    _add_resilience_arguments(parser)
    if command == "trace":
        parser.add_argument("--out", metavar="PATH", default="trace.json",
                            help="Chrome trace output path "
                                 "(default trace.json)")
        parser.add_argument("--jsonl", metavar="PATH", default=None,
                            help="also write events as JSONL")
        parser.add_argument("--capacity", type=int, default=500_000,
                            help="trace ring-buffer capacity in events "
                                 "(default 500000; oldest evicted)")
    else:
        parser.add_argument("--json", metavar="PATH", default=None,
                            help="also write the metrics snapshot as JSON")
        parser.add_argument("--check", metavar="BASELINE", default=None,
                            help="compare the snapshot against a committed "
                                 "metrics baseline; exit 1 on drift")
        parser.add_argument("--write-baseline", metavar="BASELINE",
                            dest="write_baseline", default=None,
                            help="record/refresh this experiment's entry "
                                 "in a metrics baseline file")
        parser.add_argument("--tolerance", type=float, default=0.0,
                            help="relative tolerance for --check numeric "
                                 "comparisons (default 0.0: exact — the "
                                 "simulator is deterministic)")
    return parser


def _baseline_context(args) -> dict:
    """What a metrics baseline depends on (jobs excluded: bit-identical)."""
    return {
        "experiment": args.experiment,
        "seed": args.seed,
        "samples": args.samples,
        "repro_fast": os.environ.get("REPRO_FAST") or None,
        "repro_samples": os.environ.get("REPRO_SAMPLES") or None,
    }


def _run_telemetry_command(command: str, argv: List[str]) -> int:
    args = _build_telemetry_parser(command).parse_args(argv)
    configure_logging(args.verbose)

    capacity = getattr(args, "capacity", 500_000)
    if args.serve:
        from repro.telemetry import ProgressBoard
        telemetry = Telemetry(trace_capacity=capacity,
                              board=ProgressBoard(), profile=args.profile)
        server = _start_server(args.serve, telemetry,
                               campaign_dir=args.resume)
    else:
        telemetry = Telemetry(trace_capacity=capacity,
                              profile=args.profile)
        server = None
    ctx = ExperimentContext(root_seed=args.seed, samples=args.samples,
                            telemetry=telemetry, progress=args.progress,
                            jobs=args.jobs, batched=args.batched,
                            batched_timing=args.batched_timing,
                            **_resilience_fields(args))
    if args.resume:
        ctx = ctx.with_(checkpoint=_open_store(
            args.resume, args.experiment, ctx, multiple=False,
            instrumented=True))

    try:
        start = time.time()
        result = run_experiment(args.experiment, ctx)
    finally:
        if server is not None:
            server.stop()
        _emit_profile_summary(telemetry)
    print(result.render())
    # Timing goes to stderr: stdout stays bit-identical across runs and
    # across -j settings, so outputs can be diffed directly (CI does).
    print(f"[{args.experiment} completed in {time.time() - start:.1f}s]",
          file=sys.stderr)
    print()

    if command == "trace":
        tracer = telemetry.tracer
        if len(tracer) == 0:
            print("warning: no trace events recorded (counts-only "
                  "experiments skip the timing simulator)",
                  file=sys.stderr)
        path = tracer.write_chrome_trace(args.out)
        categories = ", ".join(sorted(tracer.categories())) or "none"
        print(f"[trace written to {path}: {len(tracer)} events "
              f"({tracer.dropped} evicted), categories: {categories}]")
        print("[open in chrome://tracing or https://ui.perfetto.dev]")
        if args.jsonl:
            print(f"[jsonl written to {tracer.write_jsonl(args.jsonl)}]")
        return _finish_campaign(ctx.campaign)

    print(f"== {args.experiment}: telemetry metrics snapshot ==")
    print(telemetry.metrics.render_table())
    if args.json:
        from repro.utils import atomic_write_text
        atomic_write_text(args.json, telemetry.metrics.to_json())
        print(f"[metrics json written to {args.json}]")

    if args.write_baseline or args.check:
        from repro.telemetry.baseline import (
            check_against_baseline,
            update_baseline,
        )
        snapshot = telemetry.metrics.snapshot()
        context = _baseline_context(args)
        if args.write_baseline:
            path = update_baseline(args.write_baseline, args.experiment,
                                   context, snapshot)
            print(f"[metrics baseline written to {path}]")
        if args.check:
            drifts = check_against_baseline(args.check, args.experiment,
                                            context, snapshot,
                                            tolerance=args.tolerance)
            if drifts:
                print(f"metrics drift vs {args.check} "
                      f"({len(drifts)} difference(s)):", file=sys.stderr)
                for drift in drifts[:50]:
                    print(f"  {drift}", file=sys.stderr)
                if len(drifts) > 50:
                    print(f"  ... and {len(drifts) - 50} more",
                          file=sys.stderr)
                return EXIT_FAILURE
            print(f"[metrics match baseline {args.check}]")
    return _finish_campaign(ctx.campaign)


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rcoal serve",
        description="Run one experiment with full telemetry and serve a "
                    "live dashboard (progress, metrics, trace tail) plus "
                    "JSON endpoints (/metrics, /trace, /progress, /health) "
                    "while it executes. Keeps serving after the run "
                    "finishes until interrupted (use --no-linger to exit "
                    "immediately).",
    )
    parser.add_argument("experiment",
                        help="experiment id to run (e.g. fig07)")
    _add_common_arguments(parser)
    _add_resilience_arguments(parser)
    parser.add_argument("--port", default="8000", metavar="PORT",
                        help="PORT or HOST:PORT to listen on "
                             "(default 8000 on 127.0.0.1)")
    parser.add_argument("--capacity", type=int, default=500_000,
                        help="trace ring-buffer capacity in events")
    parser.add_argument("--no-linger", dest="linger", action="store_false",
                        help="exit when the experiment finishes instead "
                             "of serving until Ctrl-C")
    return parser


def _run_serve_command(argv: List[str]) -> int:
    args = _build_serve_parser().parse_args(argv)
    configure_logging(args.verbose)
    from repro.telemetry import ProgressBoard

    telemetry = Telemetry(trace_capacity=args.capacity,
                          board=ProgressBoard(), profile=args.profile)
    server = _start_server(args.port, telemetry, campaign_dir=args.resume)
    ctx = ExperimentContext(root_seed=args.seed, samples=args.samples,
                            telemetry=telemetry, progress=args.progress,
                            jobs=args.jobs, batched=args.batched,
                            batched_timing=args.batched_timing,
                            **_resilience_fields(args))
    if args.resume:
        ctx = ctx.with_(checkpoint=_open_store(
            args.resume, args.experiment, ctx, multiple=False,
            instrumented=True))
    try:
        start = time.time()
        result = run_experiment(args.experiment, ctx)
        print(result.render())
        print(f"[{args.experiment} completed in "
              f"{time.time() - start:.1f}s]", file=sys.stderr)
        _emit_profile_summary(telemetry)
        if args.linger:
            print(f"[run complete; dashboard still live at {server.url} "
                  f"— Ctrl-C to exit]", file=sys.stderr)
            try:
                while True:
                    time.sleep(0.5)
            except KeyboardInterrupt:
                pass
    finally:
        server.stop()
    return _finish_campaign(ctx.campaign)


def _build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rcoal profile",
        description="Run one experiment under the two-axis profiler: "
                    "deterministic sim-cycle cost centers (which engine "
                    "stage the simulated cycles went to, reconciled "
                    "exactly against the round-window attribution) plus "
                    "wall-clock runner spans (where the host time went). "
                    "Exports flamegraph stacks, a combined Chrome trace, "
                    "and a drift-gated JSON report "
                    "(see docs/observability.md).",
    )
    parser.add_argument("experiment",
                        help="experiment id (e.g. fig05, fig07)")
    _add_common_arguments(parser)
    _add_resilience_arguments(parser)
    parser.add_argument("--capacity", type=int, default=2_000_000,
                        help="trace ring-buffer capacity in events "
                             "(default 2000000; the cost-center join "
                             "needs the full trace, eviction aborts it)")
    parser.add_argument("--round", type=int, default=None,
                        help="restrict cost centers to one AES round "
                             "index (default: all rounds)")
    parser.add_argument("--top", type=int, default=None,
                        help="show only the N largest cost centers")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the full profile report (sim + wall "
                             "axes) as stable JSON")
    parser.add_argument("--flamegraph", metavar="PATH", default=None,
                        help="write cost centers as collapsed stacks for "
                             "flamegraph.pl / speedscope")
    parser.add_argument("--chrome", metavar="PATH", default=None,
                        help="write a Chrome trace with the simulated "
                             "lanes plus a wall-clock process")
    parser.add_argument("--check", metavar="BASELINE", default=None,
                        help="compare the (deterministic) cost-center "
                             "section against a committed baseline; "
                             "exit 1 on drift")
    parser.add_argument("--write-baseline", metavar="BASELINE",
                        dest="write_baseline", default=None,
                        help="record/refresh this experiment's cost-center "
                             "entry in a profile baseline file (keep it "
                             "separate from the metrics baseline)")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="relative tolerance for --check (default "
                             "0.0: exact — cost centers are a pure "
                             "function of the deterministic trace)")
    return parser


def _run_profile_command(argv: List[str]) -> int:
    args = _build_profile_parser().parse_args(argv)
    configure_logging(args.verbose)

    telemetry = Telemetry(trace_capacity=args.capacity, profile=True)
    ctx = ExperimentContext(root_seed=args.seed, samples=args.samples,
                            telemetry=telemetry, progress=args.progress,
                            jobs=args.jobs, batched=args.batched,
                            batched_timing=args.batched_timing,
                            **_resilience_fields(args))
    if args.resume:
        ctx = ctx.with_(checkpoint=_open_store(
            args.resume, args.experiment, ctx, multiple=False,
            instrumented=True))

    start = time.time()
    result = run_experiment(args.experiment, ctx)
    print(result.render())
    print(f"[{args.experiment} completed in {time.time() - start:.1f}s]",
          file=sys.stderr)
    print()

    from repro.analysis.attribution import attribute_rounds
    from repro.analysis.costcenters import (
        collapsed_stacks,
        cost_centers,
        render_cost_table,
    )
    tracer = telemetry.tracer
    if len(tracer) == 0:
        print("warning: no trace events recorded (counts-only "
              "experiments skip the timing simulator); the sim-cycle "
              "profile is empty", file=sys.stderr)
    attributions = attribute_rounds(tracer, round_index=args.round)
    report = cost_centers(tracer, attributions=attributions)

    scope = f"round {args.round}" if args.round is not None else "all rounds"
    print(f"== {args.experiment}: sim-cycle cost centers ({scope}) ==")
    print(render_cost_table(report, top=args.top))
    print(f"[{report.windows} round windows, "
          f"{report.total_window_cycles:.0f} window cycles; cost centers "
          f"reconcile exactly with 'rcoal attribute']")
    print()
    print(f"== {args.experiment}: wall-clock spans ==")
    print(telemetry.profiler.render_table())

    if args.flamegraph:
        from repro.utils import atomic_write_text
        atomic_write_text(args.flamegraph, collapsed_stacks(report))
        print(f"[flamegraph stacks written to {args.flamegraph}; render "
              f"with flamegraph.pl or speedscope]")
    if args.chrome:
        from repro.utils import atomic_write_json
        trace = tracer.chrome_trace()
        trace["traceEvents"].extend(telemetry.profiler.to_chrome_events())
        atomic_write_json(args.chrome, trace)
        print(f"[chrome trace (sim + wall lanes) written to {args.chrome}]")

    sim_section = report.to_dict()
    context = dict(_baseline_context(args), round=args.round)
    if args.out:
        from repro.telemetry.metrics import stable_json
        from repro.utils import atomic_write_text
        payload = {
            "format": 1,
            "experiment": args.experiment,
            "context": context,
            "sim": sim_section,
            "wall": telemetry.profiler.snapshot(),
        }
        atomic_write_text(args.out, stable_json(payload) + "\n")
        print(f"[profile report written to {args.out}]")
    if args.write_baseline:
        from repro.telemetry.baseline import update_baseline
        path = update_baseline(args.write_baseline, args.experiment,
                               context, sim_section)
        print(f"[profile baseline written to {path}]")
    if args.check:
        from repro.telemetry.baseline import check_against_baseline
        drifts = check_against_baseline(args.check, args.experiment,
                                        context, sim_section,
                                        tolerance=args.tolerance)
        if drifts:
            print(f"cost-center drift vs {args.check} "
                  f"({len(drifts)} difference(s)):", file=sys.stderr)
            for drift in drifts[:50]:
                print(f"  {drift}", file=sys.stderr)
            if len(drifts) > 50:
                print(f"  ... and {len(drifts) - 50} more",
                      file=sys.stderr)
            return EXIT_FAILURE
        print(f"[cost centers match baseline {args.check}]")
    return _finish_campaign(ctx.campaign)


def _build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rcoal bench",
        description="Time representative workloads (full-timing kernel, "
                    "counts-only sweep, full fig07 harness) and write a "
                    "BENCH_<n>.json perf report.",
    )
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="also time fig07 through the parallel runner "
                             "with this many workers (0 = one per CPU)")
    parser.add_argument("--samples", type=int, default=12,
                        help="fig07 sample count (default 12)")
    parser.add_argument("--lines", type=int, default=256,
                        help="counts-sweep plaintext lines (default 256)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="take the best of N runs per workload")
    parser.add_argument("--seed", type=int, default=2018,
                        help="root experiment seed (default 2018)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="report path (default: next free "
                             "BENCH_<n>.json in the CWD)")
    parser.add_argument("--check", metavar="FLOORS", default=None,
                        help="compare the report against committed "
                             "throughput floors (e.g. BENCH_FLOORS.json); "
                             "exit 1 when any workload regresses past "
                             "its floor")
    parser.add_argument("--profile", action="store_true",
                        help="run the fig07 harness workloads with span "
                             "profiling enabled (recorded in the report's "
                             "config block; default off for comparability)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="enable repro.* logging on stderr")
    return parser


def _run_bench_command(argv: List[str]) -> int:
    args = _build_bench_parser().parse_args(argv)
    configure_logging(args.verbose or 1)
    from repro.experiments.bench import (
        check_bench_floors,
        render_report,
        run_bench,
        write_bench,
    )
    jobs = args.jobs if args.jobs != 0 else (os.cpu_count() or 1)
    report = run_bench(jobs=jobs, samples=args.samples, lines=args.lines,
                       repeat=args.repeat, seed=args.seed,
                       profile=args.profile)
    print(render_report(report))
    print(f"[bench report written to {write_bench(report, args.out)}]")
    if args.check:
        violations = check_bench_floors(report, args.check)
        if violations:
            print(f"bench regression vs {args.check} "
                  f"({len(violations)} violation(s)):", file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return EXIT_FAILURE
        print(f"[bench clears the floors in {args.check}]")
    return 0


def _build_status_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rcoal status",
        description="Report a checkpoint campaign's state from its run "
                    "ledger (events.jsonl) and chunk files: restored / "
                    "remaining samples per phase, chunk latency "
                    "percentiles, retries and quarantines. Works on a "
                    "single --resume directory or an 'all' campaign "
                    "root; reads the same ground truth a --resume acts "
                    "on, so the numbers match what a rerun would skip.",
    )
    parser.add_argument("dir", metavar="DIR",
                        help="the campaign's --resume directory")
    parser.add_argument("--json", action="store_true",
                        help="emit the full manifest as stable JSON "
                             "instead of the table")
    parser.add_argument("--watch", type=float, metavar="SECONDS",
                        default=None,
                        help="redraw every SECONDS until Ctrl-C")
    parser.add_argument("--gc", action="store_true",
                        help="first garbage-collect the campaign: delete "
                             "chunk files fully covered by other chunks "
                             "(resumed output stays byte-identical) and "
                             "compact the ledger to lifecycle events "
                             "plus per-phase summaries")
    parser.add_argument("--stall-seconds", type=float, metavar="N",
                        default=30.0,
                        help="report 'stalled' when a phase is open but "
                             "the ledger has been silent for N seconds "
                             "(default 30)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="enable repro.* logging on stderr")
    return parser


def _build_shard_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rcoal shard",
        description="One coordinator-free campaign worker: claims phase "
                    "chunks via atomic lease files in DIR, simulates "
                    "them, commits checkpoint chunks, and releases. "
                    "Launch any number of these against the same DIR "
                    "(even from different hosts sharing it) with the "
                    "same seed/sample arguments; they drain the "
                    "campaign cooperatively, reclaim dead peers' "
                    "leases after the deadline, and each produce "
                    "stdout byte-identical to the serial run "
                    "(see docs/robustness.md).",
    )
    parser.add_argument("dir", metavar="DIR",
                        help="shared campaign directory (the --resume "
                             "layout; 'all' uses DIR/<experiment>)")
    parser.add_argument("experiment", nargs="?", default="all",
                        help="experiment id or 'all' (default: all)")
    parser.add_argument("--worker", metavar="NAME", default=None,
                        help="this worker's identity in leases and the "
                             "ledger (default: <host>-<pid>)")
    parser.add_argument("--lease-seconds", type=float, default=30.0,
                        metavar="S",
                        help="lease validity without renewal; peers "
                             "reclaim a lease this long after its last "
                             "heartbeat (default 30)")
    parser.add_argument("--heartbeat-seconds", type=float, default=None,
                        metavar="S",
                        help="renewal interval (default: lease/3; must "
                             "be shorter than the lease)")
    parser.add_argument("--chunk", type=int, default=8, metavar="SAMPLES",
                        help="work-item granularity in samples "
                             "(default 8); must match across workers "
                             "only for efficiency, never correctness")
    parser.add_argument("--seed", type=int, default=2018,
                        help="root experiment seed (default 2018)")
    parser.add_argument("--samples", type=int, default=None,
                        help="override plaintext sample count")
    parser.add_argument("--faults", metavar="PLAN", default=None,
                        help="deterministic chaos, incl. the lease "
                             "targets torn@lease / hang@lease / "
                             "exit@lease / steal@lease (see repro.faults)")
    parser.add_argument("--batched", default=None,
                        action=argparse.BooleanOptionalAction,
                        help="counts-phase engine selection (as on the "
                             "main command; part of the campaign "
                             "fingerprint)")
    parser.add_argument("--batched-timing", default=None,
                        action=argparse.BooleanOptionalAction,
                        help="timed-phase engine selection (as on the "
                             "main command; part of the campaign "
                             "fingerprint)")
    parser.add_argument("--progress", action="store_true",
                        help="per-sample ETA reporting on stderr")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="enable repro.* logging on stderr")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write the result rows as CSV "
                             "(experiment id is appended for 'all')")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the result as JSON")
    return parser


def _run_shard_command(argv: List[str]) -> int:
    args = _build_shard_parser().parse_args(argv)
    configure_logging(args.verbose)
    from repro.experiments.shard import ShardPolicy
    from repro.telemetry.journal import worker_id

    policy = ShardPolicy(
        worker=args.worker or worker_id(),
        lease_seconds=args.lease_seconds,
        heartbeat_seconds=args.heartbeat_seconds,
        chunk_samples=args.chunk,
    ).validate()
    fields: dict = {}
    if args.faults:
        from repro.faults import install_plan, parse_fault_plan
        plan = parse_fault_plan(args.faults)
        install_plan(plan)
        fields["faults"] = plan
    ctx = ExperimentContext(root_seed=args.seed, samples=args.samples,
                            progress=args.progress, batched=args.batched,
                            batched_timing=args.batched_timing,
                            shard=policy, **fields)

    ids = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    multiple = len(ids) > 1
    for experiment_id in ids:
        run_ctx = ctx.with_(checkpoint=_open_store(
            args.dir, experiment_id, ctx, multiple=multiple,
            instrumented=False))
        start = time.time()
        result = run_experiment(experiment_id, run_ctx)
        # stdout matches the serial `rcoal all` byte for byte — lease
        # traffic, resume notes, and timing all go to stderr.
        print(result.render())
        print(f"[{experiment_id} completed in {time.time() - start:.1f}s]",
              file=sys.stderr)
        print()
        if args.csv:
            from repro.experiments.export import write_csv
            target = (f"{args.csv}.{experiment_id}.csv" if multiple
                      else args.csv)
            print(f"[csv written to {write_csv(result, target)}]")
        if args.json:
            from repro.experiments.export import write_json
            target = (f"{args.json}.{experiment_id}.json" if multiple
                      else args.json)
            print(f"[json written to {write_json(result, target)}]")
    return EXIT_OK


def _run_status_command(argv: List[str]) -> int:
    args = _build_status_parser().parse_args(argv)
    configure_logging(args.verbose)
    from repro.experiments.manifest import (
        campaign_manifest,
        gc_campaign,
        render_manifest,
    )
    if args.gc:
        stats = gc_campaign(args.dir)
        swept = (f", swept {stats['removed_leases']} stale lease(s)"
                 if stats.get("removed_leases") else "")
        print(f"[gc: removed {stats['removed_chunks']} superseded "
              f"chunk(s), kept {stats['kept_chunks']}{swept}; ledger "
              f"compacted {stats['events_before']} -> "
              f"{stats['events_after']} event(s)]", file=sys.stderr)

    def render_once() -> None:
        manifest = campaign_manifest(args.dir,
                                     stall_after=args.stall_seconds)
        if args.json:
            from repro.telemetry.metrics import stable_json
            print(stable_json(manifest))
        else:
            print(render_manifest(manifest))
        sys.stdout.flush()

    if args.watch is None:
        render_once()
        return EXIT_OK
    # Ctrl-C lands in main(), which maps it to the documented 130.
    while True:
        render_once()
        time.sleep(max(0.1, args.watch))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: dispatch, then map failures to documented codes."""
    try:
        return _dispatch(argv)
    except KeyboardInterrupt:
        # The runner already flushed a partial-progress note; keep the
        # last line short and the exit code distinct (128 + SIGINT).
        print("[interrupted]", file=sys.stderr)
        return EXIT_INTERRUPT
    except ReproError as exc:
        code = next(code for cls, code in EXIT_BY_ERROR
                    if isinstance(exc, cls))
        print(f"error: {exc}", file=sys.stderr)
        return code


def _dispatch(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _TELEMETRY_COMMANDS:
        return _run_telemetry_command(argv[0], argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve_command(argv[1:])
    if argv and argv[0] == "profile":
        return _run_profile_command(argv[1:])
    if argv and argv[0] == "bench":
        return _run_bench_command(argv[1:])
    if argv and argv[0] == "status":
        return _run_status_command(argv[1:])
    if argv and argv[0] == "shard":
        return _run_shard_command(argv[1:])

    args = _build_parser().parse_args(argv)
    configure_logging(args.verbose)

    if args.experiment == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    ids = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    telemetry = server = None
    if args.serve:
        from repro.telemetry import ProgressBoard
        telemetry = Telemetry(board=ProgressBoard(), profile=args.profile)
        server = _start_server(args.serve, telemetry,
                               campaign_dir=args.resume)
    elif args.profile:
        telemetry = Telemetry(profile=True)
    ctx = ExperimentContext(root_seed=args.seed, samples=args.samples,
                            telemetry=telemetry, progress=args.progress,
                            jobs=args.jobs, batched=args.batched,
                            batched_timing=args.batched_timing,
                            **_resilience_fields(args))

    multiple = len(ids) > 1
    # An `all --resume` campaign gets a root-level ledger over the
    # per-experiment run dirs: experiment start/finish marks written by
    # the parent (the per-phase detail lives in each run dir's own
    # ledger). `rcoal status <root>` folds both levels.
    campaign_journal = None
    if args.resume and multiple:
        from repro.telemetry.journal import JOURNAL_NAME, RunJournal
        campaign_journal = RunJournal(
            os.path.join(args.resume, JOURNAL_NAME))

    def _emit(experiment_id: str, result, seconds: float) -> None:
        print(result.render())
        if args.chart is not None:
            from repro.experiments.charts import result_chart
            print()
            print(result_chart(result, column=args.chart))
        # stderr, so stdout diffs clean across runs and -j settings.
        print(f"[{experiment_id} completed in {seconds:.1f}s]",
              file=sys.stderr)
        print()
        if args.csv:
            from repro.experiments.export import write_csv
            target = (f"{args.csv}.{experiment_id}.csv" if multiple
                      else args.csv)
            print(f"[csv written to {write_csv(result, target)}]")
        if args.json:
            from repro.experiments.export import write_json
            target = (f"{args.json}.{experiment_id}.json" if multiple
                      else args.json)
            print(f"[json written to {write_json(result, target)}]")

    batch_start = time.time()

    def _publish_batch(done: int) -> None:
        # Experiment-level progress for the --serve dashboard: the one
        # signal that survives `all -j N`, where workers run with
        # telemetry stripped and only completions reach the parent.
        if telemetry is None or not multiple:
            return
        telemetry.board.publish("experiments", done, len(ids),
                                time.time() - batch_start,
                                state="done" if done >= len(ids)
                                else "running")

    try:
        _publish_batch(0)
        if multiple and ctx.effective_jobs() > 1:
            # Whole experiments fan out across the pool; output order
            # (and bytes) match a serial run. Workers open their own
            # checkpoint stores and ship their incident ledgers back.
            from repro.experiments.runner import run_experiments_parallel
            for done, (experiment_id, result, seconds, worker_stats) in \
                    enumerate(run_experiments_parallel(
                        ids, ctx, ctx.effective_jobs(),
                        checkpoint_dir=args.resume), 1):
                if ctx.campaign is not None:
                    ctx.campaign.absorb(worker_stats)
                if campaign_journal is not None:
                    campaign_journal.append(
                        "experiment_finish", experiment=experiment_id,
                        seconds=round(seconds, 6))
                _emit(experiment_id, result, seconds)
                _publish_batch(done)
            return _finish_campaign(ctx.campaign)

        for done, experiment_id in enumerate(ids, 1):
            run_ctx = ctx
            if args.resume:
                run_ctx = ctx.with_(checkpoint=_open_store(
                    args.resume, experiment_id, ctx, multiple=multiple,
                    instrumented=telemetry is not None))
            if campaign_journal is not None:
                campaign_journal.append("experiment_start",
                                        experiment=experiment_id)
            start = time.time()
            result = run_experiment(experiment_id, run_ctx)
            seconds = time.time() - start
            if campaign_journal is not None:
                campaign_journal.append("experiment_finish",
                                        experiment=experiment_id,
                                        seconds=round(seconds, 6))
            _emit(experiment_id, result, seconds)
            _publish_batch(done)
        return _finish_campaign(ctx.campaign)
    finally:
        if server is not None:
            server.stop()
        _emit_profile_summary(telemetry)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
