"""Command-line entry point: regenerate paper tables and figures.

Usage::

    rcoal list                     # show available experiments
    rcoal fig06                    # regenerate Fig 6
    rcoal fig15 --samples 40       # smaller run
    rcoal all                      # regenerate everything (slow)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.base import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rcoal",
        description="RCoal (HPCA 2018) reproduction: regenerate paper "
                    "tables and figures on the simulated GPU.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig06, table2), 'all', or 'list'",
    )
    parser.add_argument("--seed", type=int, default=2018,
                        help="root experiment seed (default 2018)")
    parser.add_argument("--samples", type=int, default=None,
                        help="override plaintext sample count")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write the result rows as CSV "
                             "(experiment id is appended for 'all')")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the result as JSON")
    parser.add_argument("--chart", type=int, metavar="COLUMN", default=None,
                        help="also render column COLUMN (1-based after the "
                             "x column) as an ASCII bar chart")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    ids = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    ctx = ExperimentContext(root_seed=args.seed, samples=args.samples)

    multiple = len(ids) > 1
    for experiment_id in ids:
        start = time.time()
        result = run_experiment(experiment_id, ctx)
        print(result.render())
        if args.chart is not None:
            from repro.experiments.charts import result_chart
            print()
            print(result_chart(result, column=args.chart))
        print(f"[{experiment_id} completed in {time.time() - start:.1f}s]")
        print()
        if args.csv:
            from repro.experiments.export import write_csv
            target = (f"{args.csv}.{experiment_id}.csv" if multiple
                      else args.csv)
            print(f"[csv written to {write_csv(result, target)}]")
        if args.json:
            from repro.experiments.export import write_json
            target = (f"{args.json}.{experiment_id}.json" if multiple
                      else args.json)
            print(f"[json written to {write_json(result, target)}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
