"""Fig 7: FSS performance and the baseline attack against FSS.

(a) Execution time and total memory accesses per plaintext rise with the
number of subwarps (fewer coalescing opportunities).
(b) The *baseline* attack (which assumes one subwarp) sees its average
correct-guess correlation fall as the machine's num-subwarps grows — the
security benefit of a secret subwarp count.
"""

from __future__ import annotations

import numpy as np

from repro.attack.estimator import AccessEstimator
from repro.attack.recovery import CorrelationTimingAttack
from repro.core.policies import make_policy
from repro.experiments.base import ExperimentContext, ExperimentResult, \
    collect_records

__all__ = ["run", "SUBWARP_SWEEP"]

SUBWARP_SWEEP = (1, 2, 4, 8, 16, 32)


def run(ctx: ExperimentContext = ExperimentContext()) -> ExperimentResult:
    num_samples = ctx.sample_count()
    rows = []
    baseline_time = None
    for m in SUBWARP_SWEEP:
        policy = make_policy("fss", m)
        server, records = collect_records(ctx, policy, num_samples)
        mean_time = float(np.mean([r.total_time for r in records]))
        mean_accesses = float(np.mean([r.total_accesses for r in records]))
        if baseline_time is None:
            baseline_time = mean_time

        # The attack still models one subwarp (it does not know M).
        attack = CorrelationTimingAttack(
            AccessEstimator(make_policy("baseline"),
                            warp_size=server.gpu.config.warp_size)
        )
        recovery = attack.recover_key(
            [r.ciphertext_lines for r in records],
            [r.last_round_time for r in records],
            correct_key=server.last_round_key,
        )
        rows.append((
            m,
            mean_time,
            mean_time / baseline_time,
            mean_accesses,
            recovery.average_correct_correlation,
            recovery.num_correct,
        ))

    return ExperimentResult(
        experiment_id="fig07",
        title="FSS: performance vs num-subwarps (a) and baseline-attack "
              "correlation (b)",
        headers=["num-subwarps", "exec time (cycles)", "time (norm)",
                 "mem accesses/plaintext", "avg corr (baseline attack)",
                 "bytes recovered"],
        rows=rows,
        notes=[
            "paper 7a: time and accesses increase monotonically with "
            "num-subwarps (~2.2x time, ~2.3x accesses at M=32)",
            "paper 7b: the baseline attack's correlation decreases as "
            "num-subwarps grows",
        ],
        metrics={"normalized_times": {r[0]: r[2] for r in rows},
                 "avg_corr": {r[0]: r[4] for r in rows}},
    )
