"""ASCII rendering of experiment results."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

__all__ = ["format_value", "format_table"]


def format_value(value) -> str:
    """Human-friendly formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width ASCII table."""
    formatted: List[List[str]] = [[format_value(v) for v in row]
                                  for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i])
                         for i, cell in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in formatted)
    return "\n".join(out)
