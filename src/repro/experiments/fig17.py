"""Fig 17: RCoal_Score trade-off comparison (Equation 7).

Combines the Fig 15 security data (average attack correlation) with the
Fig 16 performance data (normalized execution time):

* (a) security-oriented design: a = 1, b = 1;
* (b) performance-oriented design: a = 1, b = 20.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.score import rcoal_score
from repro.experiments import fig15, fig16
from repro.experiments.base import (
    MECHANISMS,
    ExperimentContext,
    ExperimentResult,
)

__all__ = ["run", "SCORE_SWEEP"]

SCORE_SWEEP: Tuple[int, ...] = (2, 4, 8, 16)


def run(
    ctx: ExperimentContext = ExperimentContext(),
    subwarp_sweep: Sequence[int] = SCORE_SWEEP,
    security_result: Optional[ExperimentResult] = None,
    performance_result: Optional[ExperimentResult] = None,
) -> ExperimentResult:
    """Compute RCoal scores; Fig 15/16 results may be passed in to reuse."""
    security = security_result or fig15.run(ctx, subwarp_sweep)
    performance = performance_result or fig16.run(ctx, subwarp_sweep)
    avg_corr = security.metrics["avg_corr"]
    norm_time = performance.metrics["normalized_time"]

    rows = []
    scores = {"security": {}, "performance": {}}
    for m in subwarp_sweep:
        row = [m]
        for weights, label in (((1.0, 1.0), "security"),
                               ((1.0, 20.0), "performance")):
            a, b = weights
            for mech in MECHANISMS:
                # |corr|: the score uses correlation magnitude; tiny
                # negative estimates mean "no leakage found".
                corr = abs(avg_corr[mech][m])
                score = rcoal_score(corr, norm_time[mech][m], a=a, b=b)
                row.append(score)
                scores[label].setdefault(mech, {})[m] = score
        rows.append(tuple(row))

    headers = (
        ["num-subwarps"]
        + [f"a=1,b=1 {mech.upper()}" for mech in MECHANISMS]
        + [f"a=1,b=20 {mech.upper()}" for mech in MECHANISMS]
    )
    return ExperimentResult(
        experiment_id="fig17",
        title="RCoal_Score: security-oriented (a=1,b=1) and "
              "performance-oriented (a=1,b=20) designs",
        headers=headers,
        rows=rows,
        notes=[
            "paper: FSS+RTS scores best for the security-oriented design "
            "at M in {8,16}; RSS+RTS overtakes it for the performance-"
            "oriented design at the same M",
        ],
        metrics={"scores": scores, "sweep": list(subwarp_sweep)},
    )
