"""Fig 8: the FSS attack (Algorithm 1) defeats standalone FSS.

Once the attacker knows (or infers, from the large execution-time steps of
Fig 7a) the machine's num-subwarps, Algorithm 1 computes the per-subwarp
access counts exactly and the correlation — and key recovery — returns.
Only M = 32 is immune (constant 32 accesses, zero variance).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.experiments.scatter import SCATTER_SWEEP, run_scatter_experiment

__all__ = ["run"]


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep=SCATTER_SWEEP) -> ExperimentResult:
    return run_scatter_experiment(
        ctx,
        experiment_id="fig08",
        policy_name="fss",
        title="FSS mechanism against the FSS attack (Algorithm 1)",
        paper_note="paper: the FSS attack re-establishes a high correlation "
                   "for the correct guess at every M < 32; FSS alone is not "
                   "an adequate defense",
        subwarp_sweep=subwarp_sweep,
)
