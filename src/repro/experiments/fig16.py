"""Fig 16: performance and data movement of all four mechanisms.

(a) Total memory accesses per plaintext and (b) execution time (normalized
to the num-subwarps=1 baseline), across num-subwarps. Also reports the
coalescing-disabled reference point discussed in Section III (~+178% time,
~2.7x accesses).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.policies import make_policy
from repro.experiments.base import (
    MECHANISMS,
    ExperimentContext,
    ExperimentResult,
    collect_records,
)

__all__ = ["run", "PERF_SWEEP"]

PERF_SWEEP: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Performance runs need means, not correlations: fewer samples suffice.
_PAPER_SAMPLES = 40
_FAST_SAMPLES = 15


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep: Sequence[int] = PERF_SWEEP) -> ExperimentResult:
    num_samples = ctx.sample_count(paper=_PAPER_SAMPLES, fast=_FAST_SAMPLES)
    times: Dict[str, Dict[int, float]] = {m: {} for m in MECHANISMS}
    accesses: Dict[str, Dict[int, float]] = {m: {} for m in MECHANISMS}

    base_server, base_records = collect_records(
        ctx, make_policy("baseline"), num_samples
    )
    baseline_time = float(np.mean([r.total_time for r in base_records]))
    baseline_accesses = float(
        np.mean([r.total_accesses for r in base_records])
    )

    for mechanism in MECHANISMS:
        for m in subwarp_sweep:
            policy = make_policy(mechanism, m)
            _, records = collect_records(ctx, policy, num_samples)
            times[mechanism][m] = float(
                np.mean([r.total_time for r in records])
            ) / baseline_time
            accesses[mechanism][m] = float(
                np.mean([r.total_accesses for r in records])
            )

    _, nocoal_records = collect_records(ctx, make_policy("nocoal"),
                                        num_samples)
    nocoal_time = float(np.mean([r.total_time for r in nocoal_records]))
    nocoal_accesses = float(
        np.mean([r.total_accesses for r in nocoal_records])
    )

    rows = []
    for m in subwarp_sweep:
        rows.append(
            (m,)
            + tuple(times[mech][m] for mech in MECHANISMS)
            + tuple(accesses[mech][m] for mech in MECHANISMS)
        )
    headers = (
        ["num-subwarps"]
        + [f"time {mech.upper()}" for mech in MECHANISMS]
        + [f"accesses {mech.upper()}" for mech in MECHANISMS]
    )
    return ExperimentResult(
        experiment_id="fig16",
        title="Execution time (normalized) and total memory accesses",
        headers=headers,
        rows=rows,
        notes=[
            "paper: time and accesses grow with num-subwarps; RTS is "
            "performance-neutral; RSS-based mechanisms cost slightly less "
            "than FSS-based at equal M (skewed sizes keep large subwarps)",
            f"coalescing disabled: time x{nocoal_time / baseline_time:.2f} "
            f"(paper ~2.8x for 1024 lines), accesses "
            f"x{nocoal_accesses / baseline_accesses:.2f} (paper ~2.7x)",
        ],
        metrics={
            "normalized_time": times,
            "total_accesses": accesses,
            "baseline_time": baseline_time,
            "baseline_accesses": baseline_accesses,
            "nocoal_time_factor": nocoal_time / baseline_time,
            "nocoal_access_factor": nocoal_accesses / baseline_accesses,
            "sweep": list(subwarp_sweep),
        },
    )
