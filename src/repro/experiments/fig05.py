"""Fig 5: last-round execution time tracks total execution time.

The attack's premise: because every round's coalescing behaviour is driven
by the same machine, the last-round time (what the analysis uses) and the
total time (what a remote attacker can actually measure) are strongly
correlated, and both are ~linear in the last-round coalesced accesses.
"""

from __future__ import annotations

import numpy as np

from repro.attack.correlation import pearson
from repro.core.policies import make_policy
from repro.experiments.base import ExperimentContext, ExperimentResult, \
    collect_records

__all__ = ["run"]


def run(ctx: ExperimentContext = ExperimentContext()) -> ExperimentResult:
    num_samples = ctx.sample_count()
    server, records = collect_records(ctx, make_policy("baseline"),
                                      num_samples)
    total = np.array([r.total_time for r in records], dtype=float)
    last = np.array([r.last_round_time for r in records], dtype=float)
    accesses = np.array([r.last_round_accesses for r in records], dtype=float)

    corr_total_last = pearson(total, last)
    corr_last_acc = pearson(last, accesses)
    corr_total_acc = pearson(total, accesses)
    slope = float(np.polyfit(accesses, last, 1)[0])

    rows = [
        ("corr(total time, last-round time)", corr_total_last),
        ("corr(last-round time, last-round accesses)", corr_last_acc),
        ("corr(total time, last-round accesses)", corr_total_acc),
        ("cycles per last-round coalesced access (fit)", slope),
        ("samples", num_samples),
    ]
    return ExperimentResult(
        experiment_id="fig05",
        title="Relationship between last-round and total execution time",
        headers=["quantity", "value"],
        rows=rows,
        notes=[
            "paper: both total and last-round time correlate with "
            "last-round coalesced accesses (used to justify attacking "
            "last-round time)",
        ],
        metrics={
            "corr_total_last": corr_total_last,
            "corr_last_accesses": corr_last_acc,
            "series": {
                "total_time": total.tolist(),
                "last_round_time": last.tolist(),
                "last_round_accesses": accesses.tolist(),
            },
        },
    )
