"""Campaign checkpoint/resume (``rcoal <exp> --resume DIR``).

A paper-scale campaign (``REPRO_SAMPLES=100`` across every mechanism)
takes long enough that a hung worker, an OOM kill, or a Ctrl-C must not
mean starting over. The per-sample RNG derivation ``(root_seed,
"name#sample<i>")`` that makes the parallel runner bit-identical also
makes resume free of replay cost: any sample can be re-simulated in
isolation, so a checkpoint only has to remember which samples finished
and what they produced.

Layout of a run directory::

    <run_dir>/
      manifest.json                  # campaign fingerprint (atomic write)
      events.jsonl                   # append-only run ledger (RunJournal)
      phases/<slug>-<hash>/          # one dir per collect_records phase
        chunk-00000-00003.pkl        # records (+ telemetry) for samples 0-3
      failed_samples.json            # quarantine report, when any (atomic)

Each chunk file is one pickled :class:`ChunkResult`, written atomically
(tempfile + fsync + ``os.replace``), so an interrupted save can never
leave a truncated chunk: on resume the chunk either exists completely or
the samples are simply re-simulated. Chunks hold *per-sample results in
sample order*; telemetry merge is boundary-insensitive (time bases
telescope, counters add), so a resumed instrumented run merges stored and
fresh chunks in sample order and reproduces the uninterrupted telemetry
bit for bit.

The manifest pins the **campaign fingerprint** — experiment id, root
seed, sample override, plaintext lines, GPU config hash, the
``REPRO_FAST``/``REPRO_SAMPLES`` scaling context, and whether the run is
instrumented. Resuming under a different fingerprint raises
:class:`~repro.errors.CheckpointMismatchError` with a field-by-field
diff: mixing results from two different campaigns would corrupt the
output silently, which is strictly worse than starting over.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import CheckpointMismatchError
from repro.telemetry import Telemetry, get_logger
from repro.telemetry.baseline import compare_snapshots
from repro.telemetry.journal import JOURNAL_NAME, RunJournal
from repro.telemetry.metrics import stable_json
from repro.utils import (atomic_write_bytes, atomic_write_text,
                         batched_mode, batched_timing_mode)

__all__ = [
    "CHECKPOINT_FORMAT",
    "ChunkResult",
    "CheckpointStore",
    "campaign_fingerprint",
    "chunk_name",
    "chunk_spans",
    "config_hash",
    "phase_dir_name",
    "phase_label",
    "shard_spans",
]

log = get_logger(__name__)

CHECKPOINT_FORMAT = 1

#: Chunk file names encode their sample span: ``chunk-SSSSS-EEEEE.pkl``.
_CHUNK_NAME = re.compile(r"chunk-(\d+)-(\d+)\.pkl")


def config_hash(config) -> str:
    """Stable short hash of a GPU configuration (``"default"`` for None)."""
    if config is None:
        return "default"
    if is_dataclass(config):
        fields = asdict(config)
    else:
        fields = dict(vars(config))
    fields = {name: fields[name] for name in sorted(fields)}
    digest = hashlib.sha256(
        stable_json(fields, indent=None).encode("utf-8")
    ).hexdigest()
    return digest[:16]


def campaign_fingerprint(experiment_id: str, ctx,
                         instrumented: bool) -> dict:
    """Everything a checkpoint's validity depends on.

    ``jobs`` is deliberately excluded — parallel runs are bit-identical to
    serial, so a campaign started with ``-j 8`` may be resumed with
    ``-j 1`` (or vice versa) and still reproduce the uninterrupted output.
    """
    return {
        "format": CHECKPOINT_FORMAT,
        "experiment": experiment_id,
        "root_seed": ctx.root_seed,
        "samples": ctx.samples,
        "lines": ctx.lines,
        "config": config_hash(ctx.config),
        "repro_fast": os.environ.get("REPRO_FAST") or None,
        "repro_samples": os.environ.get("REPRO_SAMPLES") or None,
        "instrumented": bool(instrumented),
        # Engine selection for counts-only phases. Counts are
        # checksum-identical across the two cores, but like --profile the
        # selection is part of the campaign's identity so a --resume never
        # silently mixes cores.
        "batched": batched_mode(getattr(ctx, "batched", None)),
        # Likewise for exact timing: the wavefront core is KernelResult-
        # identical to the event engine, but the selection is pinned so a
        # resumed campaign is a property of one declared engine choice.
        "batched_timing": batched_timing_mode(
            getattr(ctx, "batched_timing", None)),
    }


@dataclass
class ChunkResult:
    """One completed contiguous span of samples for one phase."""

    indices: Tuple[int, ...]
    records: list
    telemetry: Optional[Telemetry] = None

    @property
    def start(self) -> int:
        return self.indices[0]


def _phase_slug(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", label).strip("-") or "phase"


def phase_dir_name(label: str) -> str:
    """The on-disk directory name of one phase (slug + stable hash)."""
    digest = hashlib.sha256(label.encode("utf-8")).hexdigest()[:8]
    return f"{_phase_slug(label)}-{digest}"


def phase_label(ctx, policy, num_samples: int, counts_only: bool,
                retain_kernel_results: bool) -> str:
    """Checkpoint phase identity: everything that shapes this phase's
    records beyond the campaign-level fingerprint. Shared by the serial,
    parallel, and resilient collection paths and by the run ledger, so
    one phase has one name everywhere."""
    return (f"{policy.describe()}|n={num_samples}"
            f"|counts={int(counts_only)}"
            f"|retain={int(retain_kernel_results)}"
            f"|lines={ctx.lines}|cfg={config_hash(ctx.config)}")


def chunk_name(start: int, end: int) -> str:
    """The chunk file name for the inclusive sample span ``[start, end]``."""
    return f"chunk-{start:05d}-{end:05d}.pkl"


def shard_spans(num_samples: int,
                chunk_samples: int) -> List[Tuple[int, int]]:
    """Fixed-boundary work items for sharded execution (inclusive spans).

    Unlike :func:`repro.experiments.runner._contiguous_chunks` — which
    chunks whatever happens to be *missing* — these boundaries depend
    only on ``(num_samples, chunk_samples)``, so every shard worker
    enumerates the identical work list and lease files (named by span)
    mean the same unit of work to all of them. A span partially covered
    by an earlier non-shard run is simply re-simulated whole: samples
    are deterministic, and the fold dedupes by index.
    """
    size = max(1, chunk_samples)
    return [(start, min(start + size, num_samples) - 1)
            for start in range(0, num_samples, size)]


def chunk_spans(directory: Union[str, Path]) -> List[Tuple[int, int]]:
    """Sample spans recorded in a phase directory, from file names alone.

    ``chunk-00008-00011.pkl`` → ``(8, 11)``. Parsing names instead of
    unpickling lets the manifest aggregator count completed samples for
    a campaign without loading its (potentially huge) telemetry; the
    spans are trustworthy because chunk files are written atomically —
    a name either denotes a complete chunk or doesn't exist.
    """
    directory = Path(directory)
    spans: List[Tuple[int, int]] = []
    if not directory.is_dir():
        return spans
    for name in sorted(os.listdir(directory)):
        match = _CHUNK_NAME.fullmatch(name)
        if match:
            spans.append((int(match.group(1)), int(match.group(2))))
    return spans


class CheckpointStore:
    """Persistence for one campaign's completed per-sample results.

    Open with :meth:`open` (validates or records the fingerprint), then
    per collection phase: :meth:`completed_indices` to skip finished
    samples, :meth:`save_chunk` as spans complete, :meth:`load_chunks` to
    fold stored results back in sample order.
    """

    def __init__(self, run_dir, fingerprint: dict):
        self.run_dir = Path(run_dir)
        self.fingerprint = fingerprint
        #: The campaign's run ledger, living next to the manifest. Other
        #: layers (the resilient runner, the CLI) append through this —
        #: the store's own events are ``campaign_open``/``checkpoint_save``.
        self.journal = RunJournal(self.run_dir / JOURNAL_NAME)

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def open(cls, run_dir, fingerprint: dict) -> "CheckpointStore":
        """Create or resume a run directory for this fingerprint.

        A fresh/empty directory gets a manifest; an existing one must have
        been recorded under the *same* fingerprint, else this raises
        :class:`CheckpointMismatchError` naming every differing field.
        """
        run_dir = Path(run_dir)
        manifest = run_dir / "manifest.json"
        resumed = manifest.exists()
        if resumed:
            with open(manifest, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
            drifts = compare_snapshots(stored, fingerprint,
                                       path="fingerprint")
            if drifts:
                raise CheckpointMismatchError(
                    f"checkpoint {run_dir} was recorded for a different "
                    f"campaign; refusing to mix results:\n  "
                    + "\n  ".join(drifts)
                    + "\n(use a fresh --resume directory, or rerun with "
                      "the original context)"
                )
            log.info("resuming campaign checkpoint at %s", run_dir)
        else:
            run_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(manifest, stable_json(fingerprint) + "\n")
            log.info("started campaign checkpoint at %s", run_dir)
        store = cls(run_dir, fingerprint)
        store.journal.append("campaign_open",
                             experiment=fingerprint.get("experiment"),
                             resumed=resumed)
        return store

    # -- phases ---------------------------------------------------------------

    def phase_dir(self, label: str, make: bool = False) -> Path:
        path = self.run_dir / "phases" / phase_dir_name(label)
        if make:
            path.mkdir(parents=True, exist_ok=True)
        return path

    def load_chunks(self, label: str) -> List[ChunkResult]:
        """All stored chunks of a phase, sorted by first sample index.

        An unreadable chunk file (which the atomic writer makes nearly
        impossible) is skipped with a warning — its samples just get
        re-simulated, which is always safe.
        """
        directory = self.phase_dir(label)
        chunks: List[ChunkResult] = []
        if not directory.is_dir():
            return chunks
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".pkl"):
                continue
            path = directory / name
            try:
                with open(path, "rb") as handle:
                    chunk = pickle.load(handle)
            except Exception as exc:  # corrupt/foreign file: re-simulate
                log.warning("skipping unreadable checkpoint chunk %s: %s",
                            path, exc)
                continue
            chunks.append(chunk)
        chunks.sort(key=lambda chunk: chunk.start)
        return chunks

    def completed_indices(self, label: str) -> set:
        return {index for chunk in self.load_chunks(label)
                for index in chunk.indices}

    def completed_spans(self, label: str) -> List[Tuple[int, int]]:
        """Persisted sample spans of a phase, from file names alone —
        the cheap (no-unpickle) census the manifest aggregator uses."""
        return chunk_spans(self.phase_dir(label))

    def save_chunk(self, label: str, chunk: ChunkResult) -> Path:
        """Persist one completed chunk, atomically."""
        directory = self.phase_dir(label, make=True)
        path = directory / chunk_name(chunk.indices[0], chunk.indices[-1])
        written = atomic_write_bytes(path, pickle.dumps(chunk, protocol=4))
        self.journal.append("checkpoint_save", phase=label,
                            start=chunk.indices[0], end=chunk.indices[-1],
                            samples=len(chunk.indices))
        return written

    def has_chunk(self, label: str, start: int, end: int) -> bool:
        """Whether the exact span ``[start, end]`` is already committed."""
        return (self.phase_dir(label) / chunk_name(start, end)).is_file()

    def commit_chunk(self, label: str, chunk: ChunkResult) -> bool:
        """Duplicate-tolerant :meth:`save_chunk` for sharded execution.

        A chunk file that already exists is complete and correct — it was
        written atomically, and every worker computes identical bytes for
        the same span — so a second commit (a stolen lease's original
        owner finishing late, or two workers that raced past the lease
        layer entirely) is a no-op that leaves the existing file's bytes
        untouched. Returns whether *this* call persisted the chunk.
        """
        if self.has_chunk(label, chunk.indices[0], chunk.indices[-1]):
            self.journal.append("checkpoint_duplicate", phase=label,
                                start=chunk.indices[0],
                                end=chunk.indices[-1])
            return False
        self.save_chunk(label, chunk)
        return True

    # -- quarantine report ----------------------------------------------------

    def record_failed_samples(self, failed: Sequence[dict]) -> None:
        """Persist the quarantine report next to the manifest."""
        atomic_write_text(self.run_dir / "failed_samples.json",
                          stable_json(list(failed)) + "\n")

    def describe(self) -> str:
        return str(self.run_dir)
