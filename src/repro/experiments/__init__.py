"""Experiment harnesses: one module per paper table / figure.

Each module exposes ``run(ctx) -> ExperimentResult`` regenerating the rows /
series of the corresponding figure. ``repro.experiments.registry`` maps
experiment ids ("fig06", "table2", ...) to runners;
``python -m repro.cli <id>`` executes one from the command line and prints
the ASCII rendering.
"""

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.experiments.manifest import (
    campaign_health,
    campaign_manifest,
    gc_campaign,
    render_manifest,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "ExperimentContext",
    "ExperimentResult",
    "campaign_health",
    "campaign_manifest",
    "gc_campaign",
    "render_manifest",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
