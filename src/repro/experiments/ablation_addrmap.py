"""Ablation: does memory-hierarchy randomization stop the attack? (No.)

Section VII's second future-work direction is randomization at other
levels of the memory hierarchy. A natural first candidate — secretly
permuting the chunk→partition and chunk→bank mappings, as hardware memory
hashing would — does *not* touch the coalescing leak: the coalescer merges
by block address before any mapping, so the access counts (and the time
that tracks them) are unchanged. This experiment measures that negative
result, which is the quantitative argument for the paper's choice to
randomize the coalescing logic itself.
"""

from __future__ import annotations

from repro.attack.estimator import AccessEstimator
from repro.attack.recovery import CorrelationTimingAttack
from repro.core.policies import make_policy
from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.gpu.address import AddressMap, PermutedAddressMap
from repro.gpu.config import GPUConfig
from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionServer

__all__ = ["run"]


def _attack_with_map(ctx: ExperimentContext, address_map, num_samples: int):
    server = EncryptionServer(ctx.secret_key(), make_policy("baseline"),
                              config=ctx.config,
                              address_map=address_map)
    plaintexts = random_plaintexts(num_samples, ctx.lines,
                                   ctx.stream("workload"))
    records = server.encrypt_batch(plaintexts)
    attack = CorrelationTimingAttack(
        AccessEstimator(make_policy("baseline"))
    )
    recovery = attack.recover_key(
        [r.ciphertext_lines for r in records],
        [r.last_round_time for r in records],
        correct_key=server.last_round_key,
    )
    accesses = [r.last_round_accesses for r in records]
    return recovery, accesses


def run(ctx: ExperimentContext = ExperimentContext()) -> ExperimentResult:
    num_samples = ctx.sample_count(paper=100, fast=40)
    config = ctx.config or GPUConfig()

    plain_recovery, plain_accesses = _attack_with_map(
        ctx, AddressMap(config), num_samples
    )
    permuted_map = PermutedAddressMap(config, ctx.stream("addrmap-secret"))
    permuted_recovery, permuted_accesses = _attack_with_map(
        ctx, permuted_map, num_samples
    )

    rows = [
        ("avg correct-guess correlation",
         plain_recovery.average_correct_correlation,
         permuted_recovery.average_correct_correlation),
        ("bytes recovered (of 16)",
         plain_recovery.num_correct, permuted_recovery.num_correct),
        ("avg rank of correct guess",
         plain_recovery.average_rank, permuted_recovery.average_rank),
        ("last-round accesses identical",
         None, plain_accesses == permuted_accesses),
    ]
    return ExperimentResult(
        experiment_id="ablation_addrmap",
        title="Secretly permuted partition/bank mapping vs the baseline "
              "attack (memory-hierarchy randomization alone)",
        headers=["quantity", "plain mapping", "permuted mapping"],
        rows=rows,
        notes=[
            "the coalescer merges by block address before any mapping: "
            "access counts are bit-identical under the permuted map, so "
            "the count-based leak (and the attack) survives — supporting "
            "the paper's choice to randomize coalescing itself",
        ],
        metrics={
            "plain_corr": plain_recovery.average_correct_correlation,
            "permuted_corr": permuted_recovery.average_correct_correlation,
            "accesses_identical": plain_accesses == permuted_accesses,
        },
    )
