"""Ablation: the realistic (noisy) attacker (Section V-C's remark).

The paper's evaluation assumes a strong attacker reading the clean
last-round time; it notes the realistic attacker sees the noisy total time
and needs vastly more samples (Jiang et al.: one million on hardware).
This experiment quantifies the bridge on our simulator: inject Gaussian
noise of increasing ratio into the last-round-time observable and measure
how the baseline attack's correlation attenuates — the textbook
1/sqrt(1 + ratio^2) factor — and how recovery degrades.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.attack.estimator import AccessEstimator
from repro.attack.noise import add_gaussian_noise, correlation_attenuation
from repro.attack.recovery import CorrelationTimingAttack
from repro.core.policies import make_policy
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    collect_records,
)

__all__ = ["run", "NOISE_RATIOS"]

NOISE_RATIOS: Tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0)


def run(ctx: ExperimentContext = ExperimentContext(),
        noise_ratios: Sequence[float] = NOISE_RATIOS) -> ExperimentResult:
    num_samples = ctx.sample_count(paper=150, fast=60)
    server, records = collect_records(ctx, make_policy("baseline"),
                                      num_samples)
    ciphertexts = [r.ciphertext_lines for r in records]
    clean = np.array([r.last_round_time for r in records], dtype=float)

    rows = []
    metrics = {}
    clean_corr = None
    for ratio in noise_ratios:
        observable = add_gaussian_noise(
            clean, ratio, ctx.stream(f"noise-{ratio}")
        )
        attack = CorrelationTimingAttack(
            AccessEstimator(make_policy("baseline"))
        )
        recovery = attack.recover_key(ciphertexts, observable,
                                      correct_key=server.last_round_key)
        corr = recovery.average_correct_correlation
        if clean_corr is None:
            clean_corr = corr
        predicted = clean_corr * correlation_attenuation(ratio)
        rows.append((ratio, corr, predicted, recovery.num_correct,
                     recovery.average_rank))
        metrics[ratio] = {"corr": corr, "predicted": predicted,
                          "recovered": recovery.num_correct}

    return ExperimentResult(
        experiment_id="ablation_noise",
        title="Baseline attack vs measurement noise "
              "(noise sigma as multiple of signal sigma)",
        headers=["noise ratio", "avg corr", "predicted corr",
                 "bytes recovered", "avg rank"],
        rows=rows,
        notes=[
            "prediction: corr(clean) / sqrt(1 + ratio^2); samples needed "
            "scale by (1 + ratio^2) per Eq 4 — the paper's 'one million "
            "samples on real hardware' vs 100 on a quiet simulator is "
            "this curve taken to large ratios",
            f"{num_samples} samples",
        ],
        metrics=metrics,
    )
