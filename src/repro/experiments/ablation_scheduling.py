"""Ablation: warp-scheduling noise vs the timing channel.

Fig 18's methodology note: for 1024-line plaintexts the paper correlates
against *observed access counts* "to negate the ill-effects of the warp
scheduling noise" on the timing channel. This ablation quantifies that
noise: on the undefended machine, compare

* corr(last-round time, last-round accesses) — channel quality, and
* the baseline attack's average correct-guess correlation over time,

between the 1-warp (32-line) and 32-warp (1024-line) workloads, plus the
counts channel as the noise-free reference. The timing channel should
degrade with warp count while the counts channel stays exact — precisely
the justification for the paper's switch.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.attack.correlation import pearson
from repro.core.policies import make_policy
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    collect_records,
    run_corresponding_attack,
)

__all__ = ["run", "WORKLOAD_LINES"]

WORKLOAD_LINES: Tuple[int, ...] = (32, 1024)


def run(ctx: ExperimentContext = ExperimentContext()) -> ExperimentResult:
    rows = []
    metrics = {}
    for lines in WORKLOAD_LINES:
        # Big workloads cost ~2.5 s of simulation per sample; scale down.
        paper_n, fast_n = (100, 40) if lines <= 64 else (30, 12)
        num_samples = ctx.sample_count(paper=paper_n, fast=fast_n)
        sub_ctx = ctx.with_(lines=lines, samples=num_samples)

        server, records = collect_records(sub_ctx, make_policy("baseline"),
                                          num_samples)
        times = [float(r.last_round_time) for r in records]
        accesses = [float(r.last_round_accesses) for r in records]
        channel_quality = pearson(times, accesses)

        timing_recovery = run_corresponding_attack(
            sub_ctx, server, records, "baseline", 1
        )
        observed = np.array(
            [r.last_round_byte_accesses for r in records]
        ).T
        counts_recovery = run_corresponding_attack(
            sub_ctx, server, records, "baseline", 1, observable=observed
        )

        rows.append((
            lines,
            lines // 32,
            channel_quality,
            timing_recovery.average_correct_correlation,
            counts_recovery.average_correct_correlation,
        ))
        metrics[lines] = {
            "channel_quality": channel_quality,
            "timing_attack_corr":
                timing_recovery.average_correct_correlation,
            "counts_attack_corr":
                counts_recovery.average_correct_correlation,
        }

    return ExperimentResult(
        experiment_id="ablation_scheduling",
        title="Warp-scheduling noise: timing channel vs counts channel "
              "(undefended machine)",
        headers=["lines", "warps", "corr(time, accesses)",
                 "attack corr (timing)", "attack corr (counts)"],
        rows=rows,
        notes=[
            "paper Fig 18: with 32 warps the timing channel picks up "
            "scheduling/contention noise, so the 1024-line security "
            "evaluation correlates against observed accesses instead — "
            "this table is that justification, measured",
        ],
        metrics=metrics,
    )
