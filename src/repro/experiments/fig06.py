"""Fig 6: the baseline attack vs coalescing on/off.

(a) With coalescing enabled, the correct value of key byte 0 achieves the
highest correlation among all 256 guesses and recovery succeeds.
(b) With coalescing disabled every warp always generates 32 accesses, the
correlation collapses to ~0, and no byte is recoverable.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies import make_policy
from repro.experiments.base import ExperimentContext, ExperimentResult, \
    collect_records, run_corresponding_attack

__all__ = ["run"]


def _attack_summary(ctx, policy_name):
    policy = make_policy(policy_name)
    num_samples = ctx.sample_count()
    server, records = collect_records(ctx, policy, num_samples)
    recovery = run_corresponding_attack(ctx, server, records,
                                        "baseline", 1)
    byte0 = recovery.bytes_[0]
    wrong = np.delete(byte0.correlations, byte0.correct_value)
    return recovery, {
        "byte0_correct_corr": byte0.correct_correlation,
        "byte0_max_wrong_corr": float(wrong.max()),
        "byte0_rank": byte0.correct_rank,
        "bytes_recovered": recovery.num_correct,
        "avg_correct_corr": recovery.average_correct_correlation,
        "avg_rank": recovery.average_rank,
    }


def run(ctx: ExperimentContext = ExperimentContext()) -> ExperimentResult:
    _, enabled = _attack_summary(ctx, "baseline")
    _, disabled = _attack_summary(ctx, "nocoal")

    headers = ["quantity", "coalescing on (6a)", "coalescing off (6b)"]
    keys = [
        ("k0 correct-guess correlation", "byte0_correct_corr"),
        ("k0 best wrong-guess correlation", "byte0_max_wrong_corr"),
        ("k0 rank of correct guess (0=best)", "byte0_rank"),
        ("key bytes recovered (of 16)", "bytes_recovered"),
        ("avg correct-guess correlation", "avg_correct_corr"),
        ("avg rank of correct guess", "avg_rank"),
    ]
    rows = [(label, enabled[key], disabled[key]) for label, key in keys]
    return ExperimentResult(
        experiment_id="fig06",
        title="Effect of coalescing on recovery of last-round key byte 0",
        headers=headers,
        rows=rows,
        notes=[
            "paper: recovery succeeds with coalescing enabled and the "
            "correct-guess correlation is the maximum; with coalescing "
            "disabled all correlations are ~0 and no byte is recovered",
            "deviation: at the paper's 100-sample budget our simulator "
            "recovers most but not all bytes (per-byte correlation is "
            "information-theoretically capped at ~0.25 when the last round "
            "time is exactly linear in its 16 i.i.d. per-byte loads); "
            "REPRO_SAMPLES=800 recovers the full key",
        ],
        metrics={"enabled": enabled, "disabled": disabled},
    )
