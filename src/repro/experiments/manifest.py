"""Campaign manifest: fold run ledgers + checkpoint state into one view.

A campaign directory is either a single checkpoint run dir (``rcoal
fig07 --resume DIR``: ``manifest.json`` + ``events.jsonl`` + ``phases/``
at the top) or a multi-experiment root (``rcoal all --resume DIR``: one
run dir per experiment underneath, plus an optional root-level ledger of
``experiment_start``/``experiment_finish`` events). This module is the
read side of the observability plane:

* :func:`campaign_manifest` — the full aggregated view: per experiment,
  per phase: total/restored/completed/remaining sample counts (counted
  from chunk *file names*, never by unpickling — so a manifest of a
  terabyte campaign costs a directory listing), chunk latency
  percentiles (p50/p95/p99 through the telemetry ``Histogram``),
  retry/split/quarantine totals, and per-process event lanes;
* :func:`campaign_health` — the cheap staleness probe ``/health`` polls:
  the age of the newest ledger event plus which phases are still open;
* :func:`render_manifest` — the ``rcoal status`` table;
* :func:`gc_campaign` — checkpoint GC (drop chunk files fully covered by
  the other chunks of their phase) and ledger compaction (fold per-chunk
  events into one ``compacted`` summary per run, preserving the counts
  and latency histograms the manifest reports).

Completed counts come from the checkpoint store's file names — the
ground truth a ``--resume`` acts on — while latency, retries, and lanes
come from the ledger; when the two disagree (a ledger lost to a crash),
the store wins and the manifest still reports exact restored/remaining
numbers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.experiments.checkpoint import chunk_spans, phase_dir_name
from repro.experiments.reporting import format_table
from repro.telemetry import DEFAULT_BUCKETS, Histogram, get_logger
from repro.telemetry.journal import (
    JOURNAL_NAME,
    last_event,
    read_journal,
)
from repro.utils import atomic_write_text

__all__ = [
    "campaign_health",
    "campaign_manifest",
    "compact_journal",
    "discover_run_dirs",
    "gc_campaign",
    "render_manifest",
]

log = get_logger(__name__)

#: Ledger events that survive compaction verbatim (everything else is
#: folded into one ``compacted`` summary per run).
_KEEP_KINDS = frozenset({
    "campaign_open", "phase_start", "phase_finish", "checkpoint_restore",
    "chunk_quarantine", "degraded_serial", "experiment_start",
    "experiment_finish", "gc", "compacted",
})

#: Seconds without a ledger event before an in-progress campaign counts
#: as stalled (``/health`` reports ``degraded`` past this).
DEFAULT_STALL_AFTER = 30.0


def discover_run_dirs(root: Union[str, Path]) -> List[Path]:
    """The checkpoint run directories of a campaign root.

    A directory with its own ``manifest.json`` *is* a (single) run;
    otherwise every immediate child with one is a per-experiment run
    (the ``rcoal all --resume`` layout).
    """
    root = Path(root)
    if (root / "manifest.json").is_file():
        return [root]
    if not root.is_dir():
        return []
    return sorted(child for child in root.iterdir()
                  if (child / "manifest.json").is_file())


def _span_union(spans: List[Tuple[int, int]]) -> int:
    """Distinct samples covered by (possibly overlapping) spans."""
    covered: set = set()
    for start, end in spans:
        covered.update(range(start, end + 1))
    return len(covered)


def _latency_summary(histogram: Histogram) -> Optional[dict]:
    if histogram.count == 0:
        return None
    return {
        "count": histogram.count,
        "mean_ms": round(histogram.mean, 3),
        "p50_ms": histogram.percentile(0.50),
        "p95_ms": histogram.percentile(0.95),
        "p99_ms": histogram.percentile(0.99),
    }


def _new_phase(label: str) -> dict:
    return {"phase": label, "policy": None, "samples": None,
            "restored": 0, "completed": 0, "remaining": None,
            "quarantined": 0, "retries": 0, "splits": 0,
            "dispatched": 0, "chunks_done": 0, "engine": None,
            "mode": None, "state": "unknown", "seconds": None,
            "lease_claims": 0, "lease_steals": 0,
            "histogram": Histogram("latency_ms", DEFAULT_BUCKETS)}


def _new_worker_lane(event: dict) -> dict:
    return {"pid": event.get("pid"), "events": 0, "claims": 0,
            "heartbeats": 0, "steals": 0, "releases": 0,
            "chunks_done": 0, "renewals": 0, "last_ts": None,
            "last_heartbeat_ts": None}


def _fold_events(events: List[dict], phases: Dict[str, dict],
                 lanes: Dict[str, dict],
                 workers: Optional[Dict[str, dict]] = None) -> None:
    """Accumulate one ledger's events into phase + lane summaries.

    ``workers`` (when given) collects per-worker lanes from events that
    carry a ``worker`` field — the shard lease protocol's claims,
    heartbeats, steals, releases, and chunk completions — so ``rcoal
    status`` can show who held what even after the lease files are gone.
    """
    for event in events:
        pid = str(event.get("pid", "?"))
        lane = lanes.setdefault(pid, {"events": 0, "first_ts": None,
                                      "last_ts": None})
        lane["events"] += 1
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if lane["first_ts"] is None or ts < lane["first_ts"]:
                lane["first_ts"] = ts
            if lane["last_ts"] is None or ts > lane["last_ts"]:
                lane["last_ts"] = ts
        kind = event.get("kind")
        worker = event.get("worker")
        if workers is not None and isinstance(worker, str):
            wlane = workers.setdefault(worker, _new_worker_lane(event))
            wlane["events"] += 1
            if isinstance(ts, (int, float)) and \
                    (wlane["last_ts"] is None or ts > wlane["last_ts"]):
                wlane["last_ts"] = ts
            if kind == "lease_claim":
                wlane["claims"] += 1
            elif kind == "lease_heartbeat":
                wlane["heartbeats"] += 1
                wlane["renewals"] = max(
                    wlane["renewals"], int(event.get("renewals", 0) or 0))
                if isinstance(ts, (int, float)):
                    wlane["last_heartbeat_ts"] = ts
            elif kind == "lease_steal":
                wlane["steals"] += 1
            elif kind == "lease_release":
                wlane["releases"] += 1
            elif kind == "chunk_done":
                wlane["chunks_done"] += 1
        label = event.get("phase")
        if not isinstance(label, str):
            continue
        phase = phases.setdefault(label, _new_phase(label))
        if kind == "phase_start":
            phase["samples"] = event.get("samples", phase["samples"])
            phase["policy"] = event.get("policy", phase["policy"])
            phase["engine"] = event.get("engine", phase["engine"])
            phase["mode"] = event.get("mode", phase["mode"])
            phase["restored"] = max(phase["restored"],
                                    int(event.get("restored", 0) or 0))
            if phase["state"] == "unknown":
                phase["state"] = "in-progress"
        elif kind == "phase_finish":
            phase["samples"] = event.get("samples", phase["samples"])
            phase["state"] = "done"
            phase["seconds"] = event.get("seconds", phase["seconds"])
        elif kind == "checkpoint_restore":
            phase["restored"] = max(phase["restored"],
                                    int(event.get("restored", 0) or 0))
        elif kind == "chunk_dispatch":
            phase["dispatched"] += 1
        elif kind == "chunk_done":
            phase["chunks_done"] += 1
            seconds = event.get("seconds")
            if isinstance(seconds, (int, float)) and seconds >= 0:
                phase["histogram"].observe(max(1, round(seconds * 1e3)))
        elif kind == "chunk_retry":
            phase["retries"] += 1
        elif kind == "chunk_split":
            phase["splits"] += 1
        elif kind == "chunk_quarantine":
            phase["quarantined"] += 1
        elif kind == "lease_claim":
            phase["lease_claims"] += 1
        elif kind == "lease_steal":
            phase["lease_steals"] += 1
        elif kind == "compacted":
            phase["dispatched"] += int(event.get("dispatched", 0) or 0)
            phase["chunks_done"] += int(event.get("chunks_done", 0) or 0)
            phase["retries"] += int(event.get("retries", 0) or 0)
            phase["splits"] += int(event.get("splits", 0) or 0)
            phase["lease_claims"] += int(
                event.get("lease_claims", 0) or 0)
            phase["lease_steals"] += int(
                event.get("lease_steals", 0) or 0)
            latency = event.get("latency")
            if isinstance(latency, dict):
                stored = Histogram("latency_ms", latency["buckets"])
                stored.counts = list(latency["counts"])
                stored.count = int(latency["count"])
                stored.sum = latency["sum"]
                stored.max = latency.get("max")
                if stored.buckets == phase["histogram"].buckets:
                    phase["histogram"].merge_from(stored)


def _lease_census(phase_dir: Path, label: str,
                  now: float) -> List[dict]:
    """The live lease table of one phase directory, from its files.

    Uses the shard layer's own reader, so a torn lease file reports as
    ``torn`` (= stale = reclaimable) here exactly as a worker sees it.
    """
    from repro.experiments.shard import LEASE_NAME, parse_lease

    leases: List[dict] = []
    try:
        names = sorted(os.listdir(phase_dir))
    except OSError:
        return leases
    for name in names:
        if not LEASE_NAME.fullmatch(name):
            continue
        lease = parse_lease(phase_dir / name)
        if lease is None:
            continue  # released between listing and reading
        last = lease.renewed or lease.created
        leases.append({
            "phase": label, "start": lease.start, "end": lease.end,
            "owner": lease.owner, "host": lease.host, "pid": lease.pid,
            "renewals": lease.renewals,
            "state": ("torn" if lease.torn
                      else "stale" if lease.stale(now) else "live"),
            "age_seconds": (round(now - last, 3)
                            if isinstance(last, (int, float)) else None),
            "expires_in_seconds": (round(lease.deadline - now, 3)
                                   if lease.deadline is not None
                                   else None),
        })
    return leases


def _experiment_view(run_dir: Path,
                     now: Optional[float] = None) -> dict:
    """One run directory's manifest entry (ledger + checkpoint census)."""
    now = time.time() if now is None else now
    try:
        with open(run_dir / "manifest.json", "r", encoding="utf-8") as fh:
            fingerprint = json.load(fh)
    except (OSError, ValueError):
        fingerprint = {}
    events = read_journal(run_dir / JOURNAL_NAME)
    phases: Dict[str, dict] = {}
    lanes: Dict[str, dict] = {}
    workers: Dict[str, dict] = {}
    _fold_events(events, phases, lanes, workers)

    # Checkpoint ground truth: count completed samples from chunk file
    # names; phase dirs the (possibly lost) ledger never mentioned still
    # show up, keyed by their directory name. Lease files in the same
    # directories are the *live* shard claim table (the ledger only has
    # their history).
    phases_root = run_dir / "phases"
    named_dirs = {phase_dir_name(label): label for label in phases}
    leases: List[dict] = []
    if phases_root.is_dir():
        for child in sorted(phases_root.iterdir()):
            if not child.is_dir():
                continue
            label = named_dirs.get(child.name, child.name)
            phase = phases.setdefault(label, _new_phase(label))
            phase["completed"] = _span_union(chunk_spans(child))
            leases.extend(_lease_census(child, label, now))

    total = done = remaining = quarantined = 0
    for phase in phases.values():
        if phase["samples"] is not None:
            phase["remaining"] = max(
                0, phase["samples"] - phase["completed"])
            total += phase["samples"]
            remaining += phase["remaining"]
            if phase["state"] != "done" and phase["remaining"] == 0 \
                    and phase["quarantined"] == 0:
                phase["state"] = "complete"
        done += phase["completed"]
        quarantined += phase["quarantined"]
        phase["latency"] = _latency_summary(phase.pop("histogram"))

    newest = last_event(run_dir / JOURNAL_NAME)
    return {
        "run_dir": str(run_dir),
        "experiment": fingerprint.get("experiment") or run_dir.name,
        "fingerprint": fingerprint,
        "phases": [phases[label] for label in sorted(phases)],
        "lanes": lanes,
        "workers": workers,
        "leases": leases,
        "events": len(events),
        "last_event_ts": newest.get("ts") if newest else None,
        "totals": {"samples": total, "completed": done,
                   "remaining": remaining, "quarantined": quarantined,
                   "retries": sum(p["retries"] for p in phases.values()),
                   "splits": sum(p["splits"] for p in phases.values())},
    }


def campaign_manifest(root: Union[str, Path],
                      stall_after: float = DEFAULT_STALL_AFTER,
                      now: Optional[float] = None) -> dict:
    """The aggregated campaign view ``rcoal status`` and ``/campaign``
    serve. Raises :class:`ConfigurationError` when ``root`` holds no
    campaign (no run dir and no ledger)."""
    root = Path(root)
    runs = discover_run_dirs(root)
    root_events = [] if runs == [root] \
        else read_journal(root / JOURNAL_NAME)
    if not runs and not root_events:
        raise ConfigurationError(
            f"no campaign found at {root}: expected a --resume directory "
            f"(manifest.json) or a campaign root containing one per "
            f"experiment"
        )
    now = time.time() if now is None else now
    experiments = [_experiment_view(run_dir, now=now) for run_dir in runs]

    totals = {"samples": 0, "completed": 0, "remaining": 0,
              "quarantined": 0, "retries": 0, "splits": 0}
    last_ts = None
    workers: Dict[str, dict] = {}
    stale_leases: List[dict] = []
    for view in experiments:
        for key in totals:
            totals[key] += view["totals"][key]
        if view["last_event_ts"] is not None and \
                (last_ts is None or view["last_event_ts"] > last_ts):
            last_ts = view["last_event_ts"]
        for name, lane in view["workers"].items():
            if name not in workers:
                workers[name] = dict(lane)
                continue
            merged = workers[name]
            for key in ("events", "claims", "heartbeats", "steals",
                        "releases", "chunks_done"):
                merged[key] += lane[key]
            merged["renewals"] = max(merged["renewals"],
                                     lane["renewals"])
            for key in ("last_ts", "last_heartbeat_ts"):
                if lane[key] is not None and \
                        (merged[key] is None
                         or lane[key] > merged[key]):
                    merged[key] = lane[key]
        stale_leases.extend(
            dict(lease, experiment=view["experiment"])
            for lease in view["leases"] if lease["state"] != "live")
    for event in root_events:
        ts = event.get("ts")
        if isinstance(ts, (int, float)) and (last_ts is None
                                             or ts > last_ts):
            last_ts = ts

    open_phases = [phase["phase"] for view in experiments
                   for phase in view["phases"]
                   if phase["state"] == "in-progress"]
    age = round(now - last_ts, 3) if last_ts is not None else None
    if totals["samples"] and totals["remaining"] == 0 and not open_phases:
        status = "complete"
    elif open_phases and age is not None and age > stall_after:
        status = "stalled"
    elif stale_leases:
        # A stale (or torn) lease is a worker that stopped heartbeating
        # mid-chunk — the shard-era face of a stall. Live peers reclaim
        # it within the lease deadline; one that *persists* across
        # --watch redraws means nobody is left to steal it.
        status = "stalled"
    else:
        status = "in-progress"
    return {
        "root": str(root),
        "status": status,
        "experiments": experiments,
        "totals": totals,
        "workers": workers,
        "stale_leases": stale_leases,
        "open_phases": open_phases,
        "last_event_age_seconds": age,
        "root_events": len(root_events),
    }


def campaign_health(root: Union[str, Path],
                    stall_after: float = DEFAULT_STALL_AFTER) -> dict:
    """The cheap staleness probe ``/health`` folds in.

    Reads only ledger tails (plus phase_start/finish pairing), never the
    chunk census, so a 1 Hz health poll against a big campaign stays
    cheap. ``stalled`` means: some phase started and never finished, and
    no process has written any event for ``stall_after`` seconds.
    """
    root = Path(root)
    runs = discover_run_dirs(root)
    ledgers = [run / JOURNAL_NAME for run in runs]
    if (root / JOURNAL_NAME).is_file() \
            and root / JOURNAL_NAME not in ledgers:
        ledgers.append(root / JOURNAL_NAME)
    last_ts = None
    open_phases: List[str] = []
    for ledger in ledgers:
        newest = last_event(ledger)
        if newest and isinstance(newest.get("ts"), (int, float)):
            if last_ts is None or newest["ts"] > last_ts:
                last_ts = newest["ts"]
        started: Dict[str, bool] = {}
        for event in read_journal(ledger):
            label = event.get("phase")
            if not isinstance(label, str):
                continue
            if event.get("kind") == "phase_start":
                started[label] = True
            elif event.get("kind") == "phase_finish":
                started[label] = False
        open_phases.extend(label for label, is_open in started.items()
                           if is_open)
    # Shard lease files: a stale one is a worker that stopped
    # heartbeating mid-chunk — same degraded condition as ledger
    # silence, but attributable to an owner. Costs one directory
    # listing per phase dir (the files are tiny), so the 1 Hz poll
    # stays cheap.
    now = time.time()
    leases = stale = 0
    stalled_worker = None
    for run_dir in runs:
        phases_root = run_dir / "phases"
        if not phases_root.is_dir():
            continue
        for child in sorted(phases_root.iterdir()):
            if not child.is_dir():
                continue
            for lease in _lease_census(child, child.name, now):
                leases += 1
                if lease["state"] != "live":
                    stale += 1
                    if stalled_worker is None:
                        stalled_worker = lease["owner"] or "torn-lease"
    age = round(now - last_ts, 3) if last_ts is not None else None
    # A stale lease only stalls a campaign with open work: on a
    # finished campaign it is litter from a worker whose span a peer
    # already covered (GC sweeps it), matching campaign_manifest's
    # status precedence where complete beats stalled.
    stalled = bool(open_phases) and ((age is not None
                                      and age > stall_after)
                                     or stale > 0)
    return {
        "ledgers": len(ledgers),
        "last_event_age_seconds": age,
        "open_phases": open_phases,
        "leases": leases,
        "stale_leases": stale,
        "stalled_worker": stalled_worker,
        "stalled": stalled,
        "stalled_phase": open_phases[0] if stalled and open_phases
        else None,
    }


def _phase_cell(phase: dict) -> str:
    """Compact phase column: the policy segment plus distinguishing
    flags (full labels are in the JSON view)."""
    label = phase["phase"]
    head = label.split("|", 1)[0]
    flags = []
    if "|counts=1" in label:
        flags.append("counts")
    if "|retain=1" in label:
        flags.append("retain")
    return head + (" [" + ",".join(flags) + "]" if flags else "")


def render_manifest(manifest: dict) -> str:
    """The ``rcoal status`` table (machine view: ``--json``)."""
    headers = ["experiment", "phase", "total", "done", "left", "quar",
               "retry", "p50 ms", "p95 ms", "p99 ms", "state"]
    rows = []
    for view in manifest["experiments"]:
        if not view["phases"]:
            rows.append((view["experiment"], "-", 0, 0, 0, 0, 0,
                         None, None, None, "empty"))
        for phase in view["phases"]:
            latency = phase["latency"] or {}
            rows.append((
                view["experiment"], _phase_cell(phase),
                phase["samples"], phase["completed"], phase["remaining"],
                phase["quarantined"], phase["retries"],
                latency.get("p50_ms"), latency.get("p95_ms"),
                latency.get("p99_ms"), phase["state"],
            ))
    totals = manifest["totals"]
    lines = [f"== campaign {manifest['root']}: {manifest['status']} ==",
             format_table(headers, rows),
             "",
             f"totals: {totals['completed']}/{totals['samples']} samples "
             f"done, {totals['remaining']} remaining, "
             f"{totals['quarantined']} quarantined, "
             f"{totals['retries']} retries"]
    age = manifest["last_event_age_seconds"]
    if age is not None:
        lines.append(f"last ledger event: {age:.1f}s ago")
    workers = manifest.get("workers") or {}
    if workers:
        lines.append("workers:")
        now = time.time()
        for name in sorted(workers):
            lane = workers[name]
            beat = lane.get("last_heartbeat_ts") or lane.get("last_ts")
            beat_note = (f"last heartbeat {now - beat:.1f}s ago"
                         if isinstance(beat, (int, float)) else
                         "no heartbeat recorded")
            lines.append(
                f"  {name} (pid {lane.get('pid', '?')}): "
                f"claims={lane['claims']} done={lane['chunks_done']} "
                f"steals={lane['steals']} releases={lane['releases']} "
                f"heartbeats={lane['heartbeats']}, {beat_note}")
    for lease in manifest.get("stale_leases") or []:
        lines.append(
            f"stale lease: samples {lease['start']}-{lease['end']} of "
            f"{lease['experiment']} held by "
            f"{lease['owner'] or 'a torn lease'}"
            + (f" (pid {lease['pid']} on {lease['host']})"
               if lease.get("pid") else "")
            + (f", silent {lease['age_seconds']:.1f}s"
               if lease.get("age_seconds") is not None else "")
            + " — reclaimable by any worker")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# GC + compaction (``rcoal status --gc``).
# ---------------------------------------------------------------------------


def _gc_phase_dir(directory: Path) -> Tuple[int, int]:
    """Remove chunk files whose samples other chunks fully cover.

    Retries and splits can leave overlapping spans (e.g. a whole-chunk
    file plus its two split halves). Keeping greedily by descending span
    size means the largest-coverage files survive; a file contributing
    no new sample index is superseded and deleted. Returns
    ``(removed, kept)``.
    """
    spans = chunk_spans(directory)
    by_size = sorted(spans, key=lambda s: (s[0] - s[1], s[0]))
    covered: set = set()
    keep: set = set()
    for start, end in by_size:
        samples = set(range(start, end + 1))
        if samples - covered:
            covered |= samples
            keep.add((start, end))
    removed = kept = 0
    for start, end in spans:
        if (start, end) in keep:
            kept += 1
            continue
        target = directory / f"chunk-{start:05d}-{end:05d}.pkl"
        try:
            os.unlink(target)
            removed += 1
            log.info("gc: removed superseded chunk %s", target)
        except OSError as exc:
            log.warning("gc: could not remove %s: %s", target, exc)
            kept += 1
    return removed, kept


def compact_journal(path: Union[str, Path]) -> Tuple[int, int]:
    """Rewrite a ledger with per-chunk events folded into summaries.

    Keeps lifecycle events (:data:`_KEEP_KINDS`) verbatim and replaces
    the chunk-level churn with one ``compacted`` event per phase
    carrying the counters and the latency histogram state, so a
    manifest built after compaction reports the same totals and
    percentiles. Rewriting resets the read-time ``seq`` numbering —
    ``/campaign`` clients simply see a smaller ``recorded`` and restart
    their cursor. Returns ``(events_before, events_after)``.
    """
    path = Path(path)
    events = read_journal(path)
    if not events:
        return 0, 0
    phases: Dict[str, dict] = {}
    lanes: Dict[str, dict] = {}
    _fold_events(events, phases, lanes)
    kept = [dict(event) for event in events
            if event.get("kind") in _KEEP_KINDS
            and event.get("kind") != "compacted"]
    for event in kept:
        event.pop("seq", None)
    for label in sorted(phases):
        phase = phases[label]
        histogram = phase["histogram"]
        kept.append({
            "kind": "compacted", "ts": round(time.time(), 6),
            "pid": os.getpid(), "phase": label,
            "dispatched": phase["dispatched"],
            "chunks_done": phase["chunks_done"],
            "retries": phase["retries"], "splits": phase["splits"],
            "lease_claims": phase["lease_claims"],
            "lease_steals": phase["lease_steals"],
            "latency": {"buckets": list(histogram.buckets),
                        "counts": list(histogram.counts),
                        "count": histogram.count,
                        "sum": histogram.sum,
                        "max": histogram.max},
        })
    text = "".join(json.dumps(event, sort_keys=True,
                              separators=(",", ":")) + "\n"
                   for event in kept)
    atomic_write_text(path, text)
    return len(events), len(kept)


def gc_campaign(root: Union[str, Path]) -> dict:
    """Checkpoint GC + ledger compaction for one campaign root.

    Safe by construction: only chunk files whose *every* sample another
    kept chunk also holds are deleted (``load_chunks`` folds by sample
    index, so resumed output is unchanged — proven byte-identical in
    tests and CI), and compaction preserves every count the manifest
    reports. Returns the stats ``rcoal status --gc`` prints.
    """
    root = Path(root)
    runs = discover_run_dirs(root)
    if not runs and not (root / JOURNAL_NAME).is_file():
        raise ConfigurationError(
            f"no campaign found at {root}; nothing to gc"
        )
    stats = {"removed_chunks": 0, "kept_chunks": 0,
             "removed_leases": 0,
             "events_before": 0, "events_after": 0}
    ledgers = [run / JOURNAL_NAME for run in runs]
    if runs != [root] and (root / JOURNAL_NAME).is_file():
        ledgers.append(root / JOURNAL_NAME)
    from repro.experiments.shard import lease_name
    now = time.time()
    for run_dir in runs:
        phases_root = run_dir / "phases"
        if phases_root.is_dir():
            for child in sorted(phases_root.iterdir()):
                if child.is_dir():
                    removed, kept = _gc_phase_dir(child)
                    stats["removed_chunks"] += removed
                    stats["kept_chunks"] += kept
                    # Stale/torn lease litter (a dead worker whose span
                    # peers covered) is safe to sweep: any worker would
                    # reclaim it anyway, and a *live* lease is never
                    # touched.
                    for lease in _lease_census(child, child.name, now):
                        if lease["state"] != "live":
                            try:
                                os.unlink(
                                    child / lease_name(lease["start"],
                                                       lease["end"]))
                                stats["removed_leases"] += 1
                            except OSError:
                                pass
    for ledger in ledgers:
        if not ledger.is_file():
            continue
        before, after = compact_journal(ledger)
        stats["events_before"] += before
        stats["events_after"] += after
    for run_dir in runs:
        journal_path = run_dir / JOURNAL_NAME
        if journal_path.is_file():
            from repro.telemetry.journal import RunJournal
            RunJournal(journal_path).append(
                "gc", removed_chunks=stats["removed_chunks"],
                events_before=stats["events_before"],
                events_after=stats["events_after"])
            break
    return stats
