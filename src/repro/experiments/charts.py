"""ASCII bar charts for experiment results.

The paper's figures are mostly grouped bar / line charts over num-subwarps.
This renderer turns an :class:`~repro.experiments.base.ExperimentResult`
whose first column is the x-value and whose remaining numeric columns are
series into a terminal-friendly horizontal bar chart — enough to *see* the
crossovers without a plotting stack (the CSV/JSON export feeds real
plotting tools).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult

__all__ = ["bar_chart", "result_chart"]

_BAR = "█"
_NEGATIVE_BAR = "▒"


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 48, title: Optional[str] = None) -> str:
    """One horizontal bar per (label, value).

    Negative values render with a distinct fill; infinities are annotated
    instead of scaled (they would flatten everything else).
    """
    if len(labels) != len(values):
        raise ConfigurationError(
            f"{len(labels)} labels vs {len(values)} values"
        )
    if not labels:
        raise ConfigurationError("nothing to chart")

    finite = [abs(v) for v in values if not math.isinf(v)]
    scale = max(finite) if finite else 1.0
    if scale == 0:
        scale = 1.0
    label_width = max(len(str(label)) for label in labels)

    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        if math.isinf(value):
            bar, shown = "→ inf", "inf"
        else:
            length = round(abs(value) / scale * width)
            fill = _NEGATIVE_BAR if value < 0 else _BAR
            bar = fill * max(length, 1 if value != 0 else 0)
            shown = f"{value:.3g}"
        lines.append(f"{str(label).rjust(label_width)} |{bar} {shown}")
    return "\n".join(lines)


def result_chart(result: ExperimentResult, column: int = 1,
                 width: int = 48) -> str:
    """Chart one numeric column of a result against its first column."""
    if not result.rows:
        raise ConfigurationError("result has no rows")
    if not 1 <= column < len(result.headers):
        raise ConfigurationError(
            f"column must be in [1, {len(result.headers) - 1}]: {column}"
        )
    labels = [str(row[0]) for row in result.rows]
    values = []
    for row in result.rows:
        value = row[column]
        if not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"column {column} ({result.headers[column]!r}) is not "
                f"numeric"
            )
        values.append(float(value))
    title = f"{result.experiment_id}: {result.headers[column]}"
    return bar_chart(labels, values, width=width, title=title)
