"""Ablation: inferring the secret num-subwarps from timing alone.

Section IV-A's stepping stone to the FSS attack: "by repeatedly measuring
the execution time for encryption of a plaintext, an attacker can determine
which num-subwarp is used by the remote GPU server." This experiment
quantifies it: calibrate a replica per candidate M, then classify timing
batches from victims with unknown M.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.attack.infer import SubwarpCountInferrer
from repro.core.policies import make_policy
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    collect_records,
)

__all__ = ["run", "INFER_SWEEP"]

INFER_SWEEP: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep: Sequence[int] = INFER_SWEEP) -> ExperimentResult:
    observe_samples = ctx.sample_count(paper=10, fast=5)

    inferrer = SubwarpCountInferrer("fss", candidates=subwarp_sweep,
                                    config=ctx.config)
    profile = inferrer.calibrate(ctx.stream("inference-calibration"),
                                 samples=observe_samples)

    rows = []
    correct = 0
    for true_m in subwarp_sweep:
        _, records = collect_records(ctx, make_policy("fss", true_m),
                                     observe_samples)
        times = [r.total_time for r in records]
        guessed = profile.classify(times)
        margin = profile.margin(times)
        correct += guessed == true_m
        rows.append((true_m, guessed, guessed == true_m, margin))

    return ExperimentResult(
        experiment_id="ablation_inference",
        title="Inferring a victim's num-subwarps from mean execution time",
        headers=["true M", "inferred M", "correct", "margin"],
        rows=rows,
        notes=[
            f"accuracy: {correct}/{len(list(subwarp_sweep))} — the timing "
            "steps of Fig 7a make M recoverable, which is why FSS alone "
            "(secret M) is not a defense and the FSS attack applies",
            "calibration uses an attacker-side replica with a different "
            "key: mean time over random plaintexts is key-independent",
        ],
        metrics={"accuracy": correct / len(list(subwarp_sweep)),
                 "calibration": profile.mean_time},
    )
