"""Shared harness for the scatter-plot figures (Figs 8, 12, 13, 14).

Each of those figures runs one defense mechanism at several num-subwarp
values against its *corresponding* attack and scatter-plots the per-guess
correlations for key byte 0, highlighting the correct guess. The harness
reduces each scatter to the quantities the figures communicate: the correct
guess's correlation, the strongest wrong guess, the correct guess's rank,
and whole-key recovery statistics.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.policies import make_policy
from repro.experiments.base import ExperimentContext, ExperimentResult, \
    collect_records, run_corresponding_attack

__all__ = ["run_scatter_experiment", "SCATTER_SWEEP"]

SCATTER_SWEEP: Tuple[int, ...] = (2, 4, 8, 16)


def run_scatter_experiment(
    ctx: ExperimentContext,
    experiment_id: str,
    policy_name: str,
    title: str,
    paper_note: str,
    subwarp_sweep: Sequence[int] = SCATTER_SWEEP,
) -> ExperimentResult:
    """Run ``policy_name`` vs its corresponding attack across the sweep."""
    num_samples = ctx.sample_count()
    rows = []
    scatters = {}
    for m in subwarp_sweep:
        policy = make_policy(policy_name, m)
        server, records = collect_records(ctx, policy, num_samples)
        recovery = run_corresponding_attack(ctx, server, records,
                                            policy_name, m)
        byte0 = recovery.bytes_[0]
        wrong = np.delete(byte0.correlations, byte0.correct_value)
        rows.append((
            m,
            byte0.correct_correlation,
            float(wrong.max()),
            byte0.correct_rank,
            recovery.average_correct_correlation,
            recovery.num_correct,
        ))
        scatters[m] = byte0.correlations.tolist()

    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["num-subwarps", "k0 correct corr", "k0 best wrong corr",
                 "k0 rank", "avg correct corr", "bytes recovered"],
        rows=rows,
        notes=[paper_note],
        metrics={
            "avg_corr": {row[0]: row[4] for row in rows},
            "bytes_recovered": {row[0]: row[5] for row in rows},
            "scatter_correlations": scatters,
        },
    )
