"""Process-parallel experiment execution.

The paper's evaluation protocol is embarrassingly parallel twice over:
``rcoal all`` runs ~20 independent experiments, and inside each one
:func:`~repro.experiments.base.collect_records` simulates ~100 independent
kernel launches. This module fans both levels out across a
``ProcessPoolExecutor`` while keeping every output **bit-identical** to a
serial run:

* all per-sample randomness is re-derived from ``(root_seed, stream name,
  sample index)`` (see ``ExperimentContext.sample_stream``), so a worker
  simulates sample *i* without replaying samples ``0..i-1``;
* workers are assigned *contiguous* sample chunks and their results —
  records, metrics, traces — are folded back in chunk order, so merged
  telemetry equals what one serial run would have recorded
  (``MetricsRegistry.merge`` / ``Tracer.merge``);
* per-worker progress increments fan in through a queue to a single
  aggregated status line (``ProgressAggregator``), never interleaved
  stderr writes.

Workers inherit the parent's environment (``REPRO_FAST`` etc.); payload
functions live at module level so the pool works under both the ``fork``
and ``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.core.policies import CoalescingPolicy
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    build_server,
    victim_stream_name,
)
from repro.telemetry import (
    ProgressAggregator,
    QueueProgress,
    Telemetry,
    get_logger,
)
from repro.utils import env_flag
from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionRecord, EncryptionServer

__all__ = [
    "chunk_indices",
    "collect_records_parallel",
    "run_experiments_parallel",
]

log = get_logger(__name__)

#: Worker-global progress queue, installed by the pool initializer (a
#: multiprocessing queue cannot ride along in pickled task payloads).
_WORKER_PROGRESS_QUEUE = None


def _init_worker(progress_queue) -> None:
    global _WORKER_PROGRESS_QUEUE
    _WORKER_PROGRESS_QUEUE = progress_queue


def chunk_indices(count: int, chunks: int) -> List[range]:
    """Split ``range(count)`` into ``chunks`` contiguous balanced ranges.

    Contiguity matters: merging worker results in chunk order then equals
    the serial sample order, which gauge last-values and trace timelines
    depend on. Empty ranges are never returned.
    """
    chunks = max(1, min(chunks, count))
    base, extra = divmod(count, chunks)
    ranges: List[range] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def _collect_chunk(payload) -> Tuple[List[EncryptionRecord],
                                     Optional[Telemetry]]:
    """Worker: simulate one contiguous chunk of a sample batch."""
    (ctx, policy, num_samples, indices, counts_only,
     retain_kernel_results, trace_capacity) = payload
    telemetry = (Telemetry(trace_capacity=trace_capacity)
                 if trace_capacity else None)
    # Regenerating the full batch keeps workers seed-identical to serial;
    # plaintext generation is bulk RNG draws, a rounding error next to one
    # kernel simulation.
    plaintexts = random_plaintexts(num_samples, ctx.lines,
                                   ctx.stream("workload"))
    server = build_server(ctx, policy, counts_only=counts_only,
                          retain_kernel_results=retain_kernel_results,
                          telemetry=telemetry)
    progress = QueueProgress(_WORKER_PROGRESS_QUEUE)
    stream_name = victim_stream_name(policy)
    records = []
    for index in indices:
        records.append(server.encrypt(
            plaintexts[index], rng=ctx.sample_stream(stream_name, index)
        ))
        progress.update()
    return records, telemetry


def collect_records_parallel(
    ctx: ExperimentContext,
    policy: CoalescingPolicy,
    num_samples: int,
    counts_only: bool = False,
    retain_kernel_results: bool = False,
) -> Tuple[EncryptionServer, List[EncryptionRecord]]:
    """Parallel drop-in for :func:`repro.experiments.base.collect_records`.

    Fans the sample batch out over ``ctx.effective_jobs()`` worker
    processes and returns records in sample order, bit-identical to the
    serial path. When ``ctx.telemetry`` is enabled, each worker records
    into a private :class:`Telemetry` and the chunks are merged back in
    order, so metrics and traces also match a serial instrumented run.
    """
    jobs = min(ctx.effective_jobs(), num_samples)
    telemetry = ctx.telemetry
    instrumented = telemetry is not None and telemetry.enabled
    trace_capacity = telemetry.tracer.capacity if instrumented else 0
    worker_ctx = ctx.with_(telemetry=None, progress=False, jobs=1)

    progress_enabled = ctx.progress or env_flag("REPRO_PROGRESS")
    board = telemetry.board if instrumented else None
    # The live ``--serve`` board also needs the worker fan-in queue, even
    # when the stderr status line is off.
    queue = multiprocessing.get_context().Queue() \
        if progress_enabled or board is not None else None

    log.info("collecting %d samples under %s across %d workers%s",
             num_samples, policy.describe(), jobs,
             " (counts only)" if counts_only else "")
    chunks = chunk_indices(num_samples, jobs)
    records: List[EncryptionRecord] = []
    with ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_worker, initargs=(queue,)
    ) as pool, ProgressAggregator(
        num_samples, queue, label=policy.describe(),
        enabled=progress_enabled, board=board,
    ):
        futures = [
            pool.submit(_collect_chunk,
                        (worker_ctx, policy, num_samples, list(chunk),
                         counts_only, retain_kernel_results,
                         trace_capacity))
            for chunk in chunks
        ]
        # Collect in submission (= sample) order; merge telemetry the
        # same way so the stitched result equals a serial run's.
        for future in futures:
            chunk_records, chunk_telemetry = future.result()
            records.extend(chunk_records)
            if instrumented:
                telemetry.merge(chunk_telemetry)

    server = build_server(ctx, policy, counts_only=counts_only,
                          retain_kernel_results=retain_kernel_results,
                          telemetry=telemetry)
    return server, records


def _run_one_experiment(payload) -> Tuple[str, ExperimentResult, float]:
    """Worker: run one full experiment serially."""
    ctx, experiment_id = payload
    from repro.experiments.registry import run_experiment
    start = time.perf_counter()
    result = run_experiment(experiment_id, ctx)
    return experiment_id, result, time.perf_counter() - start


def run_experiments_parallel(
    experiment_ids: Sequence[str],
    ctx: ExperimentContext,
    jobs: int,
):
    """Run whole experiments across a process pool (``rcoal all -j N``).

    Yields ``(experiment_id, result, seconds)`` tuples in the order the
    ids were given — each experiment is internally deterministic, so the
    combined output is byte-identical to a serial ``rcoal all``. Workers
    run their experiment serially (``jobs=1``) to avoid nested pools.
    """
    worker_ctx = ctx.with_(telemetry=None, progress=False, jobs=1)
    with ProcessPoolExecutor(
        max_workers=max(1, min(jobs, len(experiment_ids)))
    ) as pool:
        futures = [
            pool.submit(_run_one_experiment, (worker_ctx, experiment_id))
            for experiment_id in experiment_ids
        ]
        for future in futures:
            yield future.result()
