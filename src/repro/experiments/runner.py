"""Process-parallel and resilient experiment execution.

The paper's evaluation protocol is embarrassingly parallel twice over:
``rcoal all`` runs ~20 independent experiments, and inside each one
:func:`~repro.experiments.base.collect_records` simulates ~100 independent
kernel launches. This module fans both levels out across a
``ProcessPoolExecutor`` while keeping every output **bit-identical** to a
serial run:

* all per-sample randomness is re-derived from ``(root_seed, stream name,
  sample index)`` (see ``ExperimentContext.sample_stream``), so a worker
  simulates sample *i* without replaying samples ``0..i-1``;
* workers are assigned *contiguous* sample chunks and their results —
  records, metrics, traces — are folded back in chunk order, so merged
  telemetry equals what one serial run would have recorded
  (``MetricsRegistry.merge`` / ``Tracer.merge``);
* per-worker progress increments fan in through a queue to a single
  aggregated status line (``ProgressAggregator``), never interleaved
  stderr writes.

The same per-sample derivation is what makes the **resilience layer**
(:func:`collect_records_resilient`) free of replay cost: completed sample
spans checkpoint to disk and a resumed campaign re-simulates only the
missing indices, byte-identical to an uninterrupted run. A
:class:`SupervisionPolicy` adds worker supervision on top — per-chunk
deadlines that reap hung workers, capped-exponential-backoff retries,
failing-chunk splitting to isolate poison samples, quarantine instead of
campaign abort, and graceful degradation to in-process execution when the
pool itself keeps dying. Supervision and checkpointing are **off by
default**: the happy path below is byte-identical to earlier releases.

Workers inherit the parent's environment (``REPRO_FAST`` etc.); payload
functions live at module level so the pool works under both the ``fork``
and ``spawn`` start methods.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import sys
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import CoalescingPolicy
from repro.errors import WorkerCrashError
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    build_server,
    victim_stream_name,
)
from repro.experiments.checkpoint import ChunkResult, phase_label
from repro.telemetry import (
    ProgressAggregator,
    ProgressReporter,
    QueueProgress,
    SpanProfiler,
    Telemetry,
    get_logger,
)
from repro.telemetry.journal import RunJournal
from repro.utils import batched_mode, batched_timing_mode, env_flag
from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionRecord, EncryptionServer

__all__ = [
    "CampaignStats",
    "SupervisionPolicy",
    "chunk_indices",
    "collect_records_parallel",
    "collect_records_resilient",
    "run_experiments_parallel",
]

log = get_logger(__name__)

#: Worker-global progress queue, installed by the pool initializer (a
#: multiprocessing queue cannot ride along in pickled task payloads).
_WORKER_PROGRESS_QUEUE = None


def _init_worker(progress_queue) -> None:
    global _WORKER_PROGRESS_QUEUE
    _WORKER_PROGRESS_QUEUE = progress_queue


#: Process-wide warm worker pool (see :func:`_shared_pool`).
_SHARED_POOL: Optional[ProcessPoolExecutor] = None
_SHARED_POOL_JOBS = 0
_SHARED_POOL_ATEXIT = False


def _shared_pool(jobs: int) -> ProcessPoolExecutor:
    """A warm, process-wide pool for non-progress-reporting fan-outs.

    Standing up a ``ProcessPoolExecutor`` costs worker spawn plus the
    package import chain — whole seconds on small hosts — and a figure
    harness calls ``collect_records`` once per (mechanism, subwarp-count)
    cell, so paying that per call made small parallel campaigns *slower*
    than serial (fig07's 0.93x parallel "speedup" in BENCH_3). Reusing
    one pool amortizes the spin-up to once per process; workers hold no
    per-call state (every task payload carries its full context), so the
    results stay bit-identical.

    Only used when no progress queue is needed: the queue rides in via
    the pool initializer, so progress-reporting/--serve runs keep their
    per-call pools, where spin-up is noise against the run length anyway.
    """
    global _SHARED_POOL, _SHARED_POOL_JOBS, _SHARED_POOL_ATEXIT
    if _SHARED_POOL is not None and _SHARED_POOL_JOBS != jobs:
        _discard_shared_pool()
    if _SHARED_POOL is None:
        _SHARED_POOL = ProcessPoolExecutor(
            max_workers=jobs, initializer=_init_worker, initargs=(None,))
        _SHARED_POOL_JOBS = jobs
        if not _SHARED_POOL_ATEXIT:
            atexit.register(_discard_shared_pool)
            _SHARED_POOL_ATEXIT = True
    return _SHARED_POOL


def _discard_shared_pool() -> None:
    """Drop the warm pool (broken pool, Ctrl-C, or interpreter exit)."""
    global _SHARED_POOL, _SHARED_POOL_JOBS
    pool = _SHARED_POOL
    _SHARED_POOL = None
    _SHARED_POOL_JOBS = 0
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the worker supervisor (see ``docs/robustness.md``).

    Attached to an :class:`ExperimentContext` (``--supervise`` on the
    CLI); ``None`` — the default — means no supervision: failures
    propagate and nothing is retried, exactly the pre-supervision
    behavior.
    """

    #: Wall-clock seconds one chunk attempt may take before the pool is
    #: reaped and the chunk retried. ``None`` disables deadlines.
    chunk_deadline: Optional[float] = 300.0
    #: Attempts per work item before it is split (multi-sample chunks) or
    #: quarantined (single samples).
    max_attempts: int = 3
    #: Capped exponential backoff between retry rounds, in seconds:
    #: ``min(cap, base * 2**(attempt-1))``. A base of 0 disables sleeping
    #: (the fault-injection tests run with 0 — no clocks, no flakes).
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Pool rebuilds tolerated (after timeouts/kills) before degrading to
    #: in-process serial execution for the rest of the phase.
    max_pool_restarts: int = 2
    #: Parallel chunking granularity: aim for this many chunks per worker,
    #: so a killed chunk forfeits only a fraction of a worker's samples
    #: and splitting isolates poison samples quickly.
    chunks_per_worker: int = 4
    #: Serial checkpointing granularity, in samples per chunk.
    serial_chunk_samples: int = 8

    def backoff(self, attempt: int) -> float:
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** max(0, attempt - 1)))


@dataclass
class CampaignStats:
    """Mutable incident ledger for one campaign (one CLI invocation).

    The resilient runner increments these as it supervises; the CLI reads
    them afterwards for the exit code and the stderr summary. Workers get
    a pickled copy, so only parent-side incidents accumulate here — the
    live cross-process view is the telemetry board's incident counters.
    """

    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    splits: int = 0
    pool_restarts: int = 0
    degraded_serial: bool = False
    resumed_samples: int = 0
    failed_samples: List[dict] = field(default_factory=list)

    def absorb(self, other: Optional["CampaignStats"]) -> None:
        """Fold a worker's ledger into this one (``all -j N`` fan-in)."""
        if other is None:
            return
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.crashes += other.crashes
        self.splits += other.splits
        self.pool_restarts += other.pool_restarts
        self.degraded_serial = self.degraded_serial or other.degraded_serial
        self.resumed_samples += other.resumed_samples
        self.failed_samples.extend(other.failed_samples)

    def eventful(self) -> bool:
        return bool(self.retries or self.timeouts or self.crashes
                    or self.splits or self.pool_restarts
                    or self.degraded_serial or self.resumed_samples
                    or self.failed_samples)

    def summary(self) -> str:
        parts = [f"retries={self.retries}", f"timeouts={self.timeouts}",
                 f"crashes={self.crashes}"]
        if self.splits:
            parts.append(f"splits={self.splits}")
        if self.pool_restarts:
            parts.append(f"pool_restarts={self.pool_restarts}")
        if self.degraded_serial:
            parts.append("degraded=serial")
        if self.resumed_samples:
            parts.append(f"resumed={self.resumed_samples}")
        parts.append(f"quarantined={len(self.failed_samples)}")
        return " ".join(parts)


def chunk_indices(count: int, chunks: int) -> List[range]:
    """Split ``range(count)`` into ``chunks`` contiguous balanced ranges.

    Contiguity matters: merging worker results in chunk order then equals
    the serial sample order, which gauge last-values and trace timelines
    depend on. Empty ranges are never returned.
    """
    chunks = max(1, min(chunks, count))
    base, extra = divmod(count, chunks)
    ranges: List[range] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def _contiguous_chunks(indices: Sequence[int],
                       target_size: int) -> List[Tuple[int, ...]]:
    """Group sorted sample indices into contiguous runs of at most
    ``target_size``.

    Resume leaves arbitrary holes in the sample space; chunks must stay
    contiguous so stored and fresh telemetry merge back in sample order.
    """
    target_size = max(1, target_size)
    chunks: List[Tuple[int, ...]] = []
    current: List[int] = []
    for index in indices:
        if current and (index != current[-1] + 1
                        or len(current) >= target_size):
            chunks.append(tuple(current))
            current = []
        current.append(index)
    if current:
        chunks.append(tuple(current))
    return chunks


def _abort_pool(pool, futures: Sequence = ()) -> None:
    """Tear a pool down *now*: cancel, stop feeding, kill the processes.

    Used on Ctrl-C and when the supervisor reaps a hung chunk — a plain
    ``shutdown(wait=True)`` would block behind the hang forever.
    """
    for future in futures:
        future.cancel()
    process_objects = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in process_objects:
        if proc.is_alive():
            proc.kill()
    for proc in process_objects:
        proc.join(timeout=2)


def _collect_chunk(payload) -> Tuple[List[EncryptionRecord],
                                     Optional[Telemetry]]:
    """Worker: simulate one contiguous chunk of a sample batch."""
    (ctx, policy, num_samples, indices, counts_only,
     retain_kernel_results, trace_capacity, profile) = payload
    progress = QueueProgress(_WORKER_PROGRESS_QUEUE)
    return _simulate_chunk(ctx, policy, num_samples, indices, counts_only,
                           retain_kernel_results, trace_capacity,
                           faults=None, attempt=0, progress=progress,
                           in_worker=True, profile=profile)


def _simulate_chunk(ctx, policy, num_samples, indices, counts_only,
                    retain_kernel_results, trace_capacity, faults, attempt,
                    progress, in_worker,
                    profile=False) -> Tuple[List[EncryptionRecord],
                                            Optional[Telemetry]]:
    """Simulate one contiguous span of samples into a private telemetry.

    Shared by the plain pool worker, the supervised pool worker, and the
    in-process resilient path, so all three produce identical records and
    mergeable telemetry. Fault checks run *before* a sample simulates:
    a retried chunk re-simulates from scratch, so partial work from a
    failed attempt never leaks into the results.

    ``profile`` turns on wall-clock span recording in the chunk's private
    telemetry; the spans ride back to the parent through the normal
    telemetry merge. The simulated work itself is unaffected.
    """
    telemetry = (Telemetry(trace_capacity=trace_capacity, profile=profile)
                 if trace_capacity else None)
    profiler = (telemetry.profiler if telemetry is not None
                else SpanProfiler.disabled())
    # Regenerating the full batch keeps workers seed-identical to serial;
    # plaintext generation is bulk RNG draws, a rounding error next to one
    # kernel simulation.
    with profiler.span("chunk.workload"):
        plaintexts = random_plaintexts(num_samples, ctx.lines,
                                       ctx.stream("workload"))
    server = build_server(ctx, policy, counts_only=counts_only,
                          retain_kernel_results=retain_kernel_results,
                          telemetry=telemetry)
    stream_name = victim_stream_name(policy)
    if counts_only and faults is None and batched_mode(ctx.batched):
        # Same engine selection as the serial path; fault plans keep the
        # per-sample loop so injected failures fire at sample boundaries.
        from repro.gpu.batched import BatchedCountsCore
        core = BatchedCountsCore(server)
        with profiler.span("chunk.simulate"):
            records = core.encrypt_batch(
                [plaintexts[index] for index in indices],
                [ctx.sample_stream(stream_name, index)
                 for index in indices],
                on_record=lambda record: progress.update(),
            )
        return records, telemetry
    records = []
    with profiler.span("chunk.simulate"):
        for index in indices:
            if faults is not None:
                faults.maybe_fire_sample(index, attempt,
                                         in_worker=in_worker)
            records.append(server.encrypt(
                plaintexts[index],
                rng=ctx.sample_stream(stream_name, index)
            ))
            progress.update()
    return records, telemetry


def _collect_chunk_supervised(payload) -> Tuple[List[EncryptionRecord],
                                                Optional[Telemetry]]:
    """Worker: supervised variant of :func:`_collect_chunk` — carries the
    fault plan and the supervisor-assigned attempt number."""
    (ctx, policy, num_samples, indices, counts_only, retain_kernel_results,
     trace_capacity, faults, attempt, profile) = payload
    progress = QueueProgress(_WORKER_PROGRESS_QUEUE)
    return _simulate_chunk(ctx, policy, num_samples, indices, counts_only,
                           retain_kernel_results, trace_capacity,
                           faults=faults, attempt=attempt,
                           progress=progress, in_worker=True,
                           profile=profile)


def collect_records_parallel(
    ctx: ExperimentContext,
    policy: CoalescingPolicy,
    num_samples: int,
    counts_only: bool = False,
    retain_kernel_results: bool = False,
) -> Tuple[EncryptionServer, List[EncryptionRecord]]:
    """Parallel drop-in for :func:`repro.experiments.base.collect_records`.

    Fans the sample batch out over ``ctx.effective_jobs()`` worker
    processes and returns records in sample order, bit-identical to the
    serial path. When ``ctx.telemetry`` is enabled, each worker records
    into a private :class:`Telemetry` and the chunks are merged back in
    order, so metrics and traces also match a serial instrumented run.

    A Ctrl-C mid-fan-out cancels pending chunks, kills the worker
    processes, flushes a partial-progress note to stderr, and re-raises —
    the CLI maps it to a distinct exit code instead of a traceback.
    """
    jobs = min(ctx.effective_jobs(), num_samples)
    telemetry = ctx.telemetry
    instrumented = telemetry is not None and telemetry.enabled
    trace_capacity = telemetry.tracer.capacity if instrumented else 0
    profiler = (telemetry.profiler if instrumented
                else SpanProfiler.disabled())
    worker_ctx = _worker_context(ctx)
    journal = _phase_journal(ctx)
    label = None
    if journal.enabled:
        label = phase_label(ctx, policy, num_samples, counts_only,
                            retain_kernel_results)
        if counts_only:
            engine = "batched" if batched_mode(ctx.batched) else "event"
        else:
            engine = ("batched_timing"
                      if batched_timing_mode(ctx.batched_timing)
                      else "event")
        journal.append("phase_start", phase=label,
                       policy=policy.describe(), samples=num_samples,
                       jobs=jobs, mode="parallel", engine=engine,
                       counts_only=counts_only)
        if counts_only:
            journal.append("engine_select", phase=label, engine=engine)
    phase_started = time.perf_counter()

    progress_enabled = ctx.progress or env_flag("REPRO_PROGRESS")
    board = telemetry.board if instrumented else None
    # The live ``--serve`` board also needs the worker fan-in queue, even
    # when the stderr status line is off.
    queue = multiprocessing.get_context().Queue() \
        if progress_enabled or board is not None else None

    log.info("collecting %d samples under %s across %d workers%s",
             num_samples, policy.describe(), jobs,
             " (counts only)" if counts_only else "")
    chunks = chunk_indices(num_samples, jobs)
    records: List[EncryptionRecord] = []
    # No progress queue → the warm process-wide pool can serve this call;
    # otherwise the queue must ride in via the initializer of a fresh one.
    warm = queue is None
    pool = _shared_pool(jobs) if warm else ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_worker, initargs=(queue,))
    try:
        with ProgressAggregator(
            num_samples, queue, label=policy.describe(),
            enabled=progress_enabled, board=board,
        ):
            # "runner.submit" is payload pickling + task hand-off; the
            # first "runner.wait" additionally covers pool spin-up
            # (worker spawn + imports) the first time a pool is used,
            # which is why it dwarfs later waits on short runs.
            with profiler.span("runner.submit"):
                futures = [
                    pool.submit(_collect_chunk,
                                (worker_ctx, policy, num_samples,
                                 list(chunk), counts_only,
                                 retain_kernel_results, trace_capacity,
                                 profiler.enabled))
                    for chunk in chunks
                ]
            if journal.enabled:
                for chunk in chunks:
                    journal.append("chunk_dispatch", phase=label,
                                   start=chunk[0], end=chunk[-1],
                                   samples=len(chunk), attempt=0)
            # Collect in submission (= sample) order; merge telemetry the
            # same way so the stitched result equals a serial run's.
            try:
                for future, chunk in zip(futures, chunks):
                    with profiler.span("runner.wait"):
                        chunk_records, chunk_telemetry = future.result()
                    if journal.enabled:
                        # Completion latency since the fan-out started —
                        # an upper bound on the chunk's own wall time.
                        journal.append(
                            "chunk_done", phase=label, start=chunk[0],
                            end=chunk[-1], samples=len(chunk),
                            seconds=round(
                                time.perf_counter() - phase_started, 6))
                    records.extend(chunk_records)
                    if instrumented:
                        with profiler.span("runner.merge"):
                            telemetry.merge(chunk_telemetry)
            except KeyboardInterrupt:
                _abort_pool(pool, futures)
                if warm:
                    _discard_shared_pool()
                print(f"\n[interrupted: {len(records)}/{num_samples} "
                      f"samples collected under {policy.describe()}; "
                      f"partial results discarded — use --resume to make "
                      f"campaigns restartable]", file=sys.stderr)
                raise
    except BrokenProcessPool:
        # A dead warm pool must not poison later calls; the plain
        # (unsupervised) path still propagates the crash unchanged.
        if warm:
            _discard_shared_pool()
        raise
    finally:
        if not warm:
            pool.shutdown(wait=True)

    if journal.enabled:
        journal.append(
            "phase_finish", phase=label, samples=num_samples,
            completed=len(records),
            seconds=round(time.perf_counter() - phase_started, 6))
    server = build_server(ctx, policy, counts_only=counts_only,
                          retain_kernel_results=retain_kernel_results,
                          telemetry=telemetry)
    return server, records


# ---------------------------------------------------------------------------
# Resilient execution: checkpoint/resume + worker supervision.
# ---------------------------------------------------------------------------


def _worker_context(ctx: ExperimentContext) -> ExperimentContext:
    """Strip everything a chunk worker must not inherit: the parent's
    telemetry sink, progress reporter, nested parallelism, and the whole
    resilience layer (supervision happens in the parent only). Engine
    selection is pinned to the *parent's* resolution so a warm pool's
    workers never consult their own (possibly stale) ``REPRO_BATCHED``.
    The run ledger is parent-side too: chunk events are emitted where the
    supervisor sees them, so one ledger file has one writer per process
    tree level."""
    return ctx.with_(telemetry=None, progress=False, jobs=1,
                     supervision=None, faults=None, checkpoint=None,
                     campaign=None, journal=None, shard=None,
                     batched=batched_mode(ctx.batched),
                     batched_timing=batched_timing_mode(ctx.batched_timing))


def _phase_journal(ctx: ExperimentContext) -> RunJournal:
    """The ledger a collection phase should append to: an explicit
    ``ctx.journal`` wins, then the checkpoint store's, then the no-op."""
    if ctx.journal is not None:
        return ctx.journal
    store = ctx.checkpoint
    if store is not None and getattr(store, "journal", None) is not None:
        return store.journal
    return RunJournal.disabled()


def _note_incident(board, kind: str) -> None:
    if board is not None:
        board.incident(kind)


class _PhaseSupervisor:
    """Drives one collection phase's work items to completion.

    Owns the retry/split/quarantine bookkeeping shared by the pool loop
    and the in-process loop. ``results`` maps a chunk's first sample index
    to its :class:`ChunkResult`; ``failed`` maps quarantined sample
    indices to their final error string.
    """

    def __init__(self, sup: Optional[SupervisionPolicy],
                 campaign: CampaignStats, board, label: str,
                 save, journal: Optional[RunJournal] = None) -> None:
        self.sup = sup or SupervisionPolicy()
        self.supervised = sup is not None
        self.campaign = campaign
        self.board = board
        self.label = label
        self._save = save
        self.journal = journal if journal is not None \
            else RunJournal.disabled()
        self.results: Dict[int, ChunkResult] = {}
        self.failed: Dict[int, str] = {}

    def complete(self, indices: Tuple[int, ...], records,
                 telemetry) -> None:
        chunk = ChunkResult(tuple(indices), records, telemetry)
        self.results[chunk.start] = chunk
        self._save(chunk)

    def handle_failure(self, pending: deque, indices: Tuple[int, ...],
                       attempt: int, exc: BaseException) -> float:
        """Reschedule, split, or quarantine a failed work item.

        Returns the backoff delay to apply before the next attempt round.
        Without supervision the failure propagates unchanged (completed
        chunks stay checkpointed, so a later ``--resume`` picks up here).
        """
        if not self.supervised:
            raise exc
        next_attempt = attempt + 1
        if next_attempt < self.sup.max_attempts:
            pending.append((indices, next_attempt))
            self.campaign.retries += 1
            _note_incident(self.board, "retry")
            self.journal.append("chunk_retry", phase=self.label,
                                start=indices[0], end=indices[-1],
                                attempt=next_attempt,
                                error=f"{type(exc).__name__}: {exc}")
            log.warning("retrying samples %d-%d of %s (attempt %d/%d): %s",
                        indices[0], indices[-1], self.label, next_attempt,
                        self.sup.max_attempts, exc)
            return self.sup.backoff(next_attempt)
        if len(indices) > 1:
            mid = len(indices) // 2
            pending.append((indices[:mid], 0))
            pending.append((indices[mid:], 0))
            self.campaign.splits += 1
            _note_incident(self.board, "split")
            self.journal.append("chunk_split", phase=self.label,
                                start=indices[0], end=indices[-1],
                                at=indices[mid])
            log.warning("splitting failing chunk %d-%d of %s to isolate "
                        "the poison sample", indices[0], indices[-1],
                        self.label)
            return self.sup.backoff(1)
        index = indices[0]
        reason = f"{type(exc).__name__}: {exc}"
        self.failed[index] = reason
        self.campaign.failed_samples.append(
            {"phase": self.label, "sample": index, "error": reason}
        )
        _note_incident(self.board, "quarantined")
        self.journal.append("chunk_quarantine", phase=self.label,
                            sample=index, error=reason)
        log.error("quarantining sample %d of %s after %d attempts: %s",
                  index, self.label, self.sup.max_attempts, reason)
        return 0.0


def _run_chunks_serial(supervisor: _PhaseSupervisor, pending: deque,
                       worker_ctx, policy, num_samples, counts_only,
                       retain_kernel_results, trace_capacity, faults,
                       reporter, profile: bool = False) -> None:
    """In-process work loop: the serial resilient path, also the
    degraded-mode fallback when the pool keeps dying."""
    journal = supervisor.journal
    while pending:
        indices, attempt = pending.popleft()
        journal.append("chunk_dispatch", phase=supervisor.label,
                       start=indices[0], end=indices[-1],
                       samples=len(indices), attempt=attempt)
        chunk_started = time.perf_counter()
        try:
            records, telemetry = _simulate_chunk(
                worker_ctx, policy, num_samples, indices, counts_only,
                retain_kernel_results, trace_capacity, faults, attempt,
                reporter, in_worker=False, profile=profile)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            supervisor.campaign.crashes += 1
            _note_incident(supervisor.board, "crash")
            delay = supervisor.handle_failure(pending, indices, attempt,
                                              exc)
            if delay > 0:
                time.sleep(delay)
            continue
        journal.append("chunk_done", phase=supervisor.label,
                       start=indices[0], end=indices[-1],
                       samples=len(indices),
                       seconds=round(
                           time.perf_counter() - chunk_started, 6))
        supervisor.complete(indices, records, telemetry)


def _run_chunks_pool(supervisor: _PhaseSupervisor, pending: deque,
                     worker_ctx, policy, num_samples, counts_only,
                     retain_kernel_results, trace_capacity, faults,
                     jobs: int, queue, reporter,
                     profiler: Optional[SpanProfiler] = None) -> None:
    """Pool work loop with deadlines, retries, and pool resurrection.

    Work items are submitted in rounds (everything currently pending);
    results are collected in submission order so completion bookkeeping
    stays deterministic. A timeout or a died worker kills the whole pool —
    a :class:`ProcessPoolExecutor` cannot reap a single hung process —
    and completed sibling futures keep their results while unfinished
    siblings are rescheduled at their current attempt. After
    ``max_pool_restarts`` rebuilds the phase degrades to in-process
    serial execution, where ``hang``/``exit`` faults surface as plain
    raises and the retry/quarantine machinery still applies.
    """
    sup = supervisor.sup
    campaign = supervisor.campaign
    journal = supervisor.journal
    deadline = sup.chunk_deadline if supervisor.supervised else None
    profiler = profiler if profiler is not None else SpanProfiler.disabled()
    pool: Optional[ProcessPoolExecutor] = None
    restarts = 0
    try:
        while pending:
            if restarts > sup.max_pool_restarts:
                campaign.degraded_serial = True
                _note_incident(supervisor.board, "degraded-serial")
                journal.append("degraded_serial", phase=supervisor.label,
                               restarts=restarts)
                log.warning("%s: pool died %d times; degrading to "
                            "in-process serial execution",
                            supervisor.label, restarts)
                if pool is not None:
                    _abort_pool(pool)
                    pool = None
                _run_chunks_serial(supervisor, pending, worker_ctx, policy,
                                   num_samples, counts_only,
                                   retain_kernel_results, trace_capacity,
                                   faults, reporter,
                                   profile=profiler.enabled)
                return
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=jobs,
                                           initializer=_init_worker,
                                           initargs=(queue,))
            round_items = list(pending)
            pending.clear()
            with profiler.span("runner.submit"):
                futures = [
                    (pool.submit(_collect_chunk_supervised,
                                 (worker_ctx, policy, num_samples,
                                  list(indices), counts_only,
                                  retain_kernel_results, trace_capacity,
                                  faults, attempt, profiler.enabled)),
                     indices, attempt)
                    for indices, attempt in round_items
                ]
            if journal.enabled:
                for indices, attempt in round_items:
                    journal.append("chunk_dispatch", phase=supervisor.label,
                                   start=indices[0], end=indices[-1],
                                   samples=len(indices), attempt=attempt)
            round_started = time.perf_counter()
            pool_dead = False
            max_delay = 0.0
            for future, indices, attempt in futures:
                if pool_dead:
                    # The pool was reaped mid-round. Keep results that
                    # finished in time; reschedule the rest at attempt+1.
                    # A pool death cannot be attributed to one chunk, so
                    # every unfinished chunk advances — the one whose
                    # fault killed the pool stops refiring a transient
                    # fault, and innocents merely carry a higher attempt
                    # number (harmless unless they actually fail).
                    salvaged = False
                    if future.done() and not future.cancelled():
                        try:
                            records, telemetry = future.result(timeout=0)
                            supervisor.complete(indices, records,
                                                telemetry)
                            salvaged = True
                        except Exception:
                            pass
                    if salvaged:
                        journal.append(
                            "chunk_done", phase=supervisor.label,
                            start=indices[0], end=indices[-1],
                            samples=len(indices),
                            seconds=round(
                                time.perf_counter() - round_started, 6))
                    else:
                        future.cancel()
                        pending.append((indices, attempt + 1))
                    continue
                try:
                    with profiler.span("runner.wait"):
                        records, telemetry = future.result(timeout=deadline)
                    supervisor.complete(indices, records, telemetry)
                    journal.append(
                        "chunk_done", phase=supervisor.label,
                        start=indices[0], end=indices[-1],
                        samples=len(indices),
                        seconds=round(
                            time.perf_counter() - round_started, 6))
                except FuturesTimeoutError:
                    campaign.timeouts += 1
                    campaign.pool_restarts += 1
                    _note_incident(supervisor.board, "timeout")
                    journal.append("pool_restart", phase=supervisor.label,
                                   reason="timeout", start=indices[0],
                                   end=indices[-1])
                    log.warning("samples %d-%d of %s exceeded the %.1fs "
                                "chunk deadline; reaping the pool",
                                indices[0], indices[-1], supervisor.label,
                                deadline)
                    _abort_pool(pool)
                    pool = None
                    pool_dead = True
                    restarts += 1
                    # Pool-level failures can't be pinned on one chunk (the
                    # future we were waiting on may be an innocent sibling
                    # of the real hang), so no split/quarantine here — just
                    # advance the attempt and let degraded-serial mode make
                    # the precisely-attributed call if this keeps up.
                    pending.append((indices, attempt + 1))
                    campaign.retries += 1
                    max_delay = max(max_delay, sup.backoff(attempt + 1))
                except BrokenProcessPool as exc:
                    campaign.crashes += 1
                    _note_incident(supervisor.board, "worker-killed")
                    journal.append("pool_restart", phase=supervisor.label,
                                   reason="worker-died", start=indices[0],
                                   end=indices[-1])
                    log.warning("worker process died while running samples "
                                "%d-%d of %s", indices[0], indices[-1],
                                supervisor.label)
                    pool = None  # the executor is already broken
                    pool_dead = True
                    if not supervisor.supervised:
                        raise WorkerCrashError(
                            f"worker process died while running samples "
                            f"{indices[0]}-{indices[-1]} ({exc}); rerun "
                            f"with --supervise to retry and quarantine"
                        ) from exc
                    campaign.pool_restarts += 1
                    restarts += 1
                    # Same attribution caveat as the deadline case above.
                    pending.append((indices, attempt + 1))
                    campaign.retries += 1
                    max_delay = max(max_delay, sup.backoff(attempt + 1))
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    campaign.crashes += 1
                    _note_incident(supervisor.board, "crash")
                    max_delay = max(max_delay, supervisor.handle_failure(
                        pending, indices, attempt, exc))
            if pending and max_delay > 0:
                time.sleep(max_delay)
    except KeyboardInterrupt:
        if pool is not None:
            _abort_pool(pool)
            pool = None
        raise
    finally:
        if pool is not None:
            pool.shutdown(wait=True)


def collect_records_resilient(
    ctx: ExperimentContext,
    policy: CoalescingPolicy,
    num_samples: int,
    counts_only: bool = False,
    retain_kernel_results: bool = False,
) -> Tuple[EncryptionServer, List[EncryptionRecord]]:
    """Checkpointed and/or supervised drop-in for ``collect_records``.

    Engaged when the context carries a checkpoint store, a supervision
    policy, or a fault plan. Completed sample spans are persisted as they
    finish (atomic pickle chunks keyed by the campaign fingerprint), so an
    interrupted campaign resumed with ``--resume`` re-simulates only the
    missing samples and reproduces the uninterrupted output byte for byte
    — chunk boundaries don't matter because telemetry merge telescopes in
    sample order. Quarantined samples are *omitted* from the returned
    records and reported on ``ctx.campaign`` / the progress board instead
    of aborting the phase.
    """
    sup = ctx.supervision
    campaign = ctx.campaign if ctx.campaign is not None else CampaignStats()
    store = ctx.checkpoint
    faults = (ctx.faults.bind(num_samples, ctx.root_seed)
              if ctx.faults is not None else None)
    telemetry = ctx.telemetry
    instrumented = telemetry is not None and telemetry.enabled
    trace_capacity = telemetry.tracer.capacity if instrumented else 0
    board = telemetry.board if instrumented else None
    profiler = (telemetry.profiler if instrumented
                else SpanProfiler.disabled())
    worker_ctx = _worker_context(ctx)
    label = phase_label(ctx, policy, num_samples, counts_only,
                        retain_kernel_results)
    journal = _phase_journal(ctx)

    with profiler.span("checkpoint.load"):
        stored = store.load_chunks(label) if store is not None else []
    completed = {index for chunk in stored for index in chunk.indices}
    missing = [i for i in range(num_samples) if i not in completed]
    jobs = min(ctx.effective_jobs(), max(1, len(missing)))
    if counts_only:
        engine = ("batched" if faults is None and batched_mode(ctx.batched)
                  else "event")
    else:
        engine = ("batched_timing"
                  if batched_timing_mode(ctx.batched_timing) else "event")
    journal.append("phase_start", phase=label, policy=policy.describe(),
                   samples=num_samples, restored=len(completed),
                   jobs=jobs, mode="resilient", engine=engine,
                   counts_only=counts_only, supervised=sup is not None)
    if counts_only:
        journal.append("engine_select", phase=label, engine=engine)
    phase_started = time.perf_counter()
    if stored:
        campaign.resumed_samples += num_samples - len(missing)
        journal.append("checkpoint_restore", phase=label,
                       restored=len(completed), chunks=len(stored))
        print(f"[resume: {num_samples - len(missing)}/{num_samples} "
              f"samples of {policy.describe()} restored from "
              f"{store.describe()}]", file=sys.stderr)

    if store is not None:
        def save(chunk):
            with profiler.span("checkpoint.save"):
                store.save_chunk(label, chunk)
    else:
        def save(chunk):
            return None
    supervisor = _PhaseSupervisor(sup, campaign, board, label, save,
                                  journal=journal)
    for chunk in stored:
        supervisor.results[chunk.start] = chunk

    log.info("collecting %d samples under %s (%d checkpointed, "
             "supervised=%s)", num_samples, policy.describe(),
             len(completed), sup is not None)

    if missing:
        jobs = min(ctx.effective_jobs(), len(missing))
        policy_opts = supervisor.sup
        if jobs > 1:
            target = math.ceil(len(missing)
                               / (jobs * policy_opts.chunks_per_worker))
        else:
            target = policy_opts.serial_chunk_samples
        pending = deque((chunk, 0)
                        for chunk in _contiguous_chunks(missing, target))
        progress_enabled = ctx.progress or env_flag("REPRO_PROGRESS")
        try:
            if jobs > 1:
                queue = multiprocessing.get_context().Queue() \
                    if progress_enabled or board is not None else None
                with ProgressAggregator(
                    num_samples, queue, label=policy.describe(),
                    enabled=progress_enabled, board=board,
                ) as aggregator:
                    if completed:
                        aggregator.reporter.update(len(completed))
                    _run_chunks_pool(supervisor, pending, worker_ctx,
                                     policy, num_samples, counts_only,
                                     retain_kernel_results, trace_capacity,
                                     faults, jobs, queue,
                                     aggregator.reporter,
                                     profiler=profiler)
            else:
                reporter = ProgressReporter(
                    num_samples, label=policy.describe(),
                    enabled=progress_enabled, board=board)
                if completed:
                    reporter.update(len(completed))
                _run_chunks_serial(supervisor, pending, worker_ctx, policy,
                                   num_samples, counts_only,
                                   retain_kernel_results, trace_capacity,
                                   faults, reporter,
                                   profile=profiler.enabled)
                reporter.finish()
        except KeyboardInterrupt:
            done = sum(len(chunk.indices)
                       for chunk in supervisor.results.values())
            note = (f"\n[interrupted: {done}/{num_samples} samples of "
                    f"{policy.describe()} done")
            if store is not None:
                note += f"; resume with --resume {store.describe()}"
            print(note + "]", file=sys.stderr)
            raise

    if supervisor.failed:
        if store is not None:
            store.record_failed_samples(campaign.failed_samples)
        print(f"[quarantined {len(supervisor.failed)} sample(s) under "
              f"{policy.describe()}: "
              f"{sorted(supervisor.failed)}]", file=sys.stderr)

    # Fold everything — restored and fresh — back in sample order.
    records: List[EncryptionRecord] = []
    for start in sorted(supervisor.results):
        chunk = supervisor.results[start]
        records.extend(chunk.records)
        if instrumented:
            with profiler.span("runner.merge"):
                telemetry.merge(chunk.telemetry)

    journal.append(
        "phase_finish", phase=label, samples=num_samples,
        completed=len(records), restored=len(completed),
        quarantined=len(supervisor.failed),
        seconds=round(time.perf_counter() - phase_started, 6))
    server = build_server(ctx, policy, counts_only=counts_only,
                          retain_kernel_results=retain_kernel_results,
                          telemetry=telemetry)
    return server, records


def _run_one_experiment(payload):
    """Worker: run one full experiment serially.

    Returns ``(experiment_id, result, seconds, campaign)`` — the campaign
    stats are a worker-local :class:`CampaignStats` (or None when the
    resilience layer is off) that the parent folds into its own ledger, so
    quarantines inside ``all -j N`` workers still reach the CLI exit code.
    """
    ctx, experiment_id, checkpoint_dir = payload
    from repro.experiments.registry import run_experiment
    if checkpoint_dir is not None:
        import os

        from repro.experiments.checkpoint import (
            CheckpointStore,
            campaign_fingerprint,
        )
        store = CheckpointStore.open(
            os.path.join(checkpoint_dir, experiment_id),
            campaign_fingerprint(experiment_id, ctx, instrumented=False),
        )
        ctx = ctx.with_(checkpoint=store)
    if (ctx.supervision is not None or ctx.checkpoint is not None
            or ctx.faults is not None):
        ctx = ctx.with_(campaign=CampaignStats())
    start = time.perf_counter()
    result = run_experiment(experiment_id, ctx)
    return experiment_id, result, time.perf_counter() - start, ctx.campaign


def run_experiments_parallel(
    experiment_ids: Sequence[str],
    ctx: ExperimentContext,
    jobs: int,
    checkpoint_dir: Optional[str] = None,
):
    """Run whole experiments across a process pool (``rcoal all -j N``).

    Yields ``(experiment_id, result, seconds, campaign)`` tuples in the
    order the ids were given — each experiment is internally
    deterministic, so the combined output is byte-identical to a serial
    ``rcoal all``. Workers run their experiment serially (``jobs=1``) to
    avoid nested pools; with ``checkpoint_dir`` each worker opens its own
    per-experiment checkpoint store under ``<dir>/<experiment_id>``.
    """
    worker_ctx = ctx.with_(telemetry=None, progress=False, jobs=1,
                           checkpoint=None, campaign=None, journal=None)
    with ProcessPoolExecutor(
        max_workers=max(1, min(jobs, len(experiment_ids)))
    ) as pool:
        futures = [
            pool.submit(_run_one_experiment,
                        (worker_ctx, experiment_id, checkpoint_dir))
            for experiment_id in experiment_ids
        ]
        done = 0
        try:
            for future in futures:
                yield future.result()
                done += 1
        except KeyboardInterrupt:
            _abort_pool(pool, futures)
            print(f"\n[interrupted: {done}/{len(experiment_ids)} "
                  f"experiments completed]", file=sys.stderr)
            raise
