"""Ablation: sensitivity to the memory-block size (R).

The paper's configuration fixes 64-byte blocks, so a 1 KB lookup table
spans R = 16 blocks. Sectored caches (Rhu et al., cited as related
bandwidth work) or different line sizes change R — 32-byte sectors double
it to 32, 128-byte lines halve it to 8 — and R controls both the leak's
granularity and the defense's strength. The Section V model supports any
R, so this ablation recomputes the Table II correlations across block
sizes, with a Monte-Carlo cross-check.

Trend to expect: smaller blocks (larger R) *weaken* the randomized
defenses at fixed M — with more blocks per lookup there are fewer
collisions, access counts concentrate near the thread count, and the
attacker's mimicry correlates better; larger blocks amplify the
randomness.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.analysis.model import rho_fss_rts, rho_rss_rts
from repro.analysis.montecarlo import empirical_rho
from repro.core.policies import make_policy
from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.utils import scaled_samples

__all__ = ["run", "BLOCK_CONFIGS"]

#: (block bytes, R = 1KB table / block bytes).
BLOCK_CONFIGS: Tuple[Tuple[int, int], ...] = ((128, 8), (64, 16), (32, 32))


def run(ctx: ExperimentContext = ExperimentContext(),
        block_configs: Sequence[Tuple[int, int]] = BLOCK_CONFIGS,
        num_subwarps: int = 8) -> ExperimentResult:
    mc_samples = scaled_samples(12000, 3000)
    rows = []
    metrics = {}
    for block_bytes, num_blocks in block_configs:
        theory_fss_rts = float(rho_fss_rts(32, num_blocks, num_subwarps))
        theory_rss_rts = float(rho_rss_rts(32, num_blocks, num_subwarps))
        mc = empirical_rho(
            make_policy("fss_rts", num_subwarps), num_blocks, mc_samples,
            ctx.stream(f"blocksize-{num_blocks}"),
        )
        rows.append((block_bytes, num_blocks, theory_fss_rts, mc,
                     theory_rss_rts))
        metrics[num_blocks] = {
            "fss_rts": theory_fss_rts,
            "fss_rts_mc": mc,
            "rss_rts": theory_rss_rts,
        }

    return ExperimentResult(
        experiment_id="ablation_blocksize",
        title=f"Defense strength vs memory-block size "
              f"(M={num_subwarps}, 1KB tables)",
        headers=["block bytes", "R blocks", "rho FSS+RTS (theory)",
                 "rho FSS+RTS (MC)", "rho RSS+RTS (theory)"],
        rows=rows,
        notes=[
            "paper configuration is the middle row (64B, R=16); smaller "
            "blocks (sectoring) weaken the randomized defenses at fixed "
            "M, larger blocks strengthen them",
        ],
        metrics=metrics,
    )
