"""Ablation: mutual-information leakage per mechanism.

The paper quantifies security as the attacker's achievable *correlation*.
Mutual information I(U; U_hat) is the model-free counterpart: it bounds
what any statistic could extract from the mechanism-aware estimates. This
ablation computes it per mechanism and num-subwarps (Monte Carlo over the
same victim/attacker protocol as the rho estimator), anchored by two exact
endpoints: the baseline leaks the full occupancy entropy H(N_{32,16}) and
the coalescing-off machine leaks exactly zero.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.analysis.leakage import (
    empirical_leakage_bits,
    occupancy_entropy_bits,
)
from repro.core.policies import make_policy
from repro.experiments.base import (
    MECHANISMS,
    ExperimentContext,
    ExperimentResult,
)
from repro.utils import scaled_samples

__all__ = ["run", "LEAKAGE_SWEEP"]

LEAKAGE_SWEEP: Tuple[int, ...] = (2, 4, 8, 16)


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep: Sequence[int] = LEAKAGE_SWEEP) -> ExperimentResult:
    mc_samples = scaled_samples(12000, 3000)
    full_entropy = occupancy_entropy_bits(32, 16)

    rows = []
    metrics = {"baseline_bits": full_entropy}
    for m in subwarp_sweep:
        row = [m]
        for mechanism in MECHANISMS:
            bits = empirical_leakage_bits(
                make_policy(mechanism, m), 16, mc_samples,
                ctx.stream(f"leakage-{mechanism}-{m}"),
            )
            row.append(bits)
            metrics.setdefault(mechanism, {})[m] = bits
        rows.append(tuple(row))

    return ExperimentResult(
        experiment_id="ablation_leakage",
        title="Mutual-information leakage I(U; U_hat) in bits per "
              "last-round load",
        headers=["num-subwarps"] + [f"bits {m.upper()}"
                                    for m in MECHANISMS],
        rows=rows,
        notes=[
            f"baseline machine leaks the full occupancy entropy "
            f"H(N_32,16) = {full_entropy:.3f} bits; coalescing-off leaks "
            f"0; FSS leaks its (per-M) full count entropy to Algorithm 1",
            "plug-in MI estimates carry positive bias at finite samples; "
            "compare columns, not absolute zeros",
        ],
        metrics=metrics,
    )
