"""Fig 15: security comparison of all four mechanisms.

Average correct-guess correlation (over all 16 key bytes) between the last-
round execution time and the access counts computed by each mechanism's
*corresponding* attack, across num-subwarps.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.policies import make_policy
from repro.experiments.base import (
    MECHANISMS,
    ExperimentContext,
    ExperimentResult,
    collect_records,
    run_corresponding_attack,
)

__all__ = ["run", "SECURITY_SWEEP"]

SECURITY_SWEEP: Tuple[int, ...] = (1, 2, 4, 8, 16)


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep: Sequence[int] = SECURITY_SWEEP) -> ExperimentResult:
    num_samples = ctx.sample_count()
    avg_corr: Dict[str, Dict[int, float]] = {m: {} for m in MECHANISMS}
    recovered: Dict[str, Dict[int, int]] = {m: {} for m in MECHANISMS}

    for mechanism in MECHANISMS:
        for m in subwarp_sweep:
            policy = make_policy(mechanism, m)
            server, records = collect_records(ctx, policy, num_samples)
            recovery = run_corresponding_attack(ctx, server, records,
                                                mechanism, m)
            avg_corr[mechanism][m] = recovery.average_correct_correlation
            recovered[mechanism][m] = recovery.num_correct

    rows = [
        (m,) + tuple(avg_corr[mech][m] for mech in MECHANISMS)
        for m in subwarp_sweep
    ]
    return ExperimentResult(
        experiment_id="fig15",
        title="Average correct-guess correlation vs corresponding attacks",
        headers=["num-subwarps"] + [mech.upper() for mech in MECHANISMS],
        rows=rows,
        notes=[
            "paper: FSS stays highly correlated (its attack reconstructs "
            "counts exactly); FSS+RTS/RSS/RSS+RTS drop sharply for M >= 2; "
            "RSS+RTS is best at M in {2,4}, FSS+RTS best at M in {8,16}",
        ],
        metrics={"avg_corr": avg_corr, "bytes_recovered": recovered,
                 "sweep": list(subwarp_sweep)},
    )
