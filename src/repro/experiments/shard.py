"""Coordinator-free sharded campaign execution (``rcoal shard DIR``).

N worker processes — launched separately, possibly on different hosts
sharing one campaign directory — cooperatively drain a campaign with no
scheduler and no coordinator. The only shared state is the filesystem,
and the only primitives are the ones the checkpoint layer already
guarantees crash-safe:

* **work items** are the fixed-boundary phase chunks of
  :func:`repro.experiments.checkpoint.shard_spans` — a pure function of
  ``(num_samples, chunk_samples)``, so every worker enumerates the
  identical list;
* a worker **claims** a chunk by atomically creating its lease file
  (``O_CREAT | O_EXCL``) in the phase directory — the lease body names
  the owner (worker id, host, pid) and a wall-clock deadline;
* while simulating, the worker **renews** the lease (rewrites the
  deadline atomically) and appends ``lease_heartbeat`` events to the run
  ledger; heartbeats ride the per-sample progress callback, so a worker
  hung *inside* a sample stops renewing exactly like a dead one;
* an expired lease (dead or hung worker) is **reclaimed** by any peer:
  rename the stale lease to a uniquely-named tombstone (only one of the
  racing renames can win), delete the tombstone, claim fresh. A torn or
  unparseable lease file is treated exactly like the ledger's torn tail:
  damaged ⇒ stale ⇒ reclaimable;
* a completed chunk is **committed** through the checkpoint store's
  atomic-write discipline, duplicate-tolerantly
  (:meth:`~repro.experiments.checkpoint.CheckpointStore.commit_chunk`),
  then the lease is **released** (unlinked, if still ours).

Why this is *correct* and not merely likely-correct: leases are an
efficiency device, never a correctness device. Every sample's result is
a pure function of ``(root_seed, stream name, sample index)``, so two
workers that ever simulate the same chunk — a stolen lease whose
original owner wakes up and finishes late, a TOCTOU window between a
staleness check and a steal — produce identical records, and the first
atomic commit wins while the second is a byte-preserving no-op. The
merged output of K workers with injected mid-lease kills is therefore
byte-identical to the serial run; the lease layer only decides how much
work gets done twice.

Losing a claim race (or finding every remaining chunk validly leased by
live peers) backs the worker off — capped exponential with jitter drawn
from the campaign's own seeded RNG (stream ``"shard#<worker>"``), so
even the backoff schedule replays deterministically per worker. The
wait is bounded: a peer that stops making progress stops heartbeating,
its lease expires after ``lease_seconds``, and the waiter reclaims it —
no scenario leaves the campaign wedged.

Multi-host requirements: the campaign directory must live on a shared
filesystem with POSIX ``O_EXCL`` create, atomic ``rename``, and
appends; hosts' wall clocks feed the lease deadlines, so keep skew well
under ``lease_seconds`` (NTP is plenty). See
``docs/robustness.md#distributed-execution``.
"""

from __future__ import annotations

import errno
import json
import os
import re
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.checkpoint import (
    ChunkResult,
    phase_label,
    shard_spans,
)
from repro.faults import EXIT_STATUS, InjectedFault, TornWriteError, \
    active_plan
from repro.telemetry import ProgressReporter, get_logger
from repro.telemetry.journal import RunJournal
from repro.utils import env_flag

__all__ = [
    "Lease",
    "LeaseManager",
    "ShardPolicy",
    "collect_records_sharded",
    "lease_name",
    "parse_lease",
    "LEASE_NAME",
]

log = get_logger(__name__)

#: Lease files encode their work item's span: ``lease-SSSSS-EEEEE.json``.
LEASE_NAME = re.compile(r"lease-(\d+)-(\d+)\.json")


def lease_name(start: int, end: int) -> str:
    """The lease file name for the inclusive sample span ``[start, end]``."""
    return f"lease-{start:05d}-{end:05d}.json"


@dataclass(frozen=True)
class ShardPolicy:
    """Knobs of one shard worker (the ``rcoal shard`` flags).

    Attached to an :class:`~repro.experiments.base.ExperimentContext`;
    when set, :func:`~repro.experiments.base.collect_records` routes
    every collection phase through :func:`collect_records_sharded`.
    """

    #: This worker's identity, recorded in lease files and ledger events.
    worker: str
    #: Seconds a lease stays valid without renewal. Peers reclaim a lease
    #: this long past its last renewal; crash recovery latency and the
    #: tolerated clock skew both scale with it.
    lease_seconds: float = 30.0
    #: Seconds between heartbeat renewals. None = ``lease_seconds / 3``,
    #: so a live worker always renews well before peers may steal.
    heartbeat_seconds: Optional[float] = None
    #: Work-item granularity in samples (fixed boundaries — see
    #: :func:`repro.experiments.checkpoint.shard_spans`).
    chunk_samples: int = 8
    #: Capped exponential backoff when a pass over the remaining work
    #: claims nothing (all chunks leased by live peers), in seconds:
    #: ``min(cap, base * 2**(round-1))``, jittered by the campaign RNG.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def heartbeat(self) -> float:
        if self.heartbeat_seconds is not None:
            return self.heartbeat_seconds
        return self.lease_seconds / 3.0

    def validate(self) -> "ShardPolicy":
        """Reject impossible lease timings loudly (exit 3), not with a
        wedged campaign: a non-positive deadline would make every lease
        stillborn-stale, and a heartbeat at or past the deadline would
        make every live worker look dead to its peers."""
        if self.lease_seconds <= 0:
            raise ConfigurationError(
                f"impossible lease deadline: --lease-seconds must be "
                f"positive, got {self.lease_seconds}"
            )
        if self.heartbeat() <= 0 or self.heartbeat() >= self.lease_seconds:
            raise ConfigurationError(
                f"impossible heartbeat interval "
                f"{self.heartbeat()}s: must be positive and shorter "
                f"than the {self.lease_seconds}s lease deadline"
            )
        if self.chunk_samples < 1:
            raise ConfigurationError(
                f"--chunk must be at least 1 sample, "
                f"got {self.chunk_samples}"
            )
        return self


@dataclass
class Lease:
    """One parsed lease file (or the report that it could not be parsed)."""

    path: Path
    start: int
    end: int
    owner: Optional[str] = None
    host: Optional[str] = None
    pid: Optional[int] = None
    deadline: Optional[float] = None
    created: Optional[float] = None
    renewed: Optional[float] = None
    renewals: int = 0
    #: True when the file held no valid JSON body — a torn write or a
    #: crash mid-create. Torn ⇒ stale ⇒ reclaimable, like the ledger tail.
    torn: bool = False

    def stale(self, now: Optional[float] = None) -> bool:
        if self.torn or self.deadline is None:
            return True
        return (time.time() if now is None else now) > self.deadline


def parse_lease(path: Path) -> Optional[Lease]:
    """Read one lease file; None if it vanished (released/stolen first).

    Any unreadable or unparseable body comes back as a ``torn`` lease —
    the damage-tolerance contract shared with the run ledger: a reader
    never crashes on a half-written file, it treats it as reclaimable.
    """
    match = LEASE_NAME.fullmatch(path.name)
    start, end = (int(match.group(1)), int(match.group(2))) if match \
        else (-1, -1)
    try:
        body = json.loads(path.read_bytes().decode("utf-8"))
        if not isinstance(body, dict):
            raise ValueError("lease body is not an object")
    except OSError:
        return None if not path.exists() else Lease(path, start, end,
                                                    torn=True)
    except (ValueError, UnicodeDecodeError):
        return Lease(path, start, end, torn=True)
    deadline = body.get("deadline")
    return Lease(
        path, start, end,
        owner=body.get("owner"),
        host=body.get("host"),
        pid=body.get("pid"),
        deadline=deadline if isinstance(deadline, (int, float)) else None,
        created=body.get("created"),
        renewed=body.get("renewed"),
        renewals=int(body.get("renewals", 0) or 0),
    )


class LeaseManager:
    """The lease protocol for one phase directory, from one worker's side.

    All mutations go through three filesystem primitives whose atomicity
    POSIX (and NFSv3+) guarantees: exclusive create (claim), rename
    (steal — at most one of N racing renames of the same name succeeds),
    and replace (renew). The ledger records every transition.
    """

    def __init__(self, phase_dir: Path, policy: ShardPolicy,
                 journal: RunJournal, phase: str):
        self.phase_dir = Path(phase_dir)
        self.policy = policy
        self.journal = journal
        self.phase = phase
        self._steal_counter = 0

    # -- lease body -----------------------------------------------------------

    def _body(self, renewals: int, created: float) -> bytes:
        import socket

        now = time.time()
        return (json.dumps({
            "owner": self.policy.worker,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "created": round(created, 6),
            "renewed": round(now, 6),
            "renewals": renewals,
            "deadline": round(now + self.policy.lease_seconds, 6),
        }, sort_keys=True) + "\n").encode("utf-8")

    def _write_new(self, path: Path, data: bytes) -> None:
        """Exclusive-create the lease file; the claim-race arbiter.

        An armed ``torn@lease`` fault writes half the body and raises —
        the crash-mid-create model. The damaged file stays behind (as it
        would after a real crash) and reads back as torn ⇒ stale, so any
        worker, including this one on its next pass, reclaims it.
        """
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        try:
            plan = active_plan()
            spec = plan.lease_write_torn() if plan is not None else None
            if spec is not None:
                os.write(fd, data[: max(1, len(data) // 2)])
                raise TornWriteError(
                    f"injected torn write {spec.describe()} while "
                    f"creating {path}"
                )
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)

    def _replace(self, path: Path, data: bytes) -> None:
        """Atomically replace a lease body (renewal / forced expiry)."""
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- protocol -------------------------------------------------------------

    def claim(self, start: int, end: int) -> Optional[Lease]:
        """Try to claim the span ``[start, end]``; None when we lost.

        Losing covers: a live peer holds it, we lost the create or the
        steal race, or our own lease write tore. A stale or torn lease
        is reclaimed first — tombstone-rename, then a fresh exclusive
        create, so two workers reclaiming the same corpse cannot both
        win.
        """
        path = self.phase_dir / lease_name(start, end)
        created = time.time()
        try:
            self._write_new(path, self._body(0, created))
        except FileExistsError:
            holder = parse_lease(path)
            if holder is None:
                return None  # vanished: released under us; next pass
            if not holder.stale():
                return None  # validly held by a live peer
            if not self._steal(path, holder):
                return None
            try:
                created = time.time()
                self._write_new(path, self._body(0, created))
            except FileExistsError:
                return None  # lost the re-create race to another thief
            except TornWriteError:
                return None
        except TornWriteError:
            return None
        lease = parse_lease(path)
        if lease is None or lease.owner != self.policy.worker:
            return None
        self.journal.append("lease_claim", phase=self.phase,
                            start=start, end=end,
                            worker=self.policy.worker,
                            deadline=lease.deadline)
        return lease

    def _steal(self, path: Path, holder: Lease) -> bool:
        """Reclaim a stale lease; True when this worker won the steal.

        The rename target is unique per (worker, attempt), so however
        many peers notice the same corpse, the filesystem hands the
        inode to exactly one of them; the losers see ENOENT and move on.
        """
        self._steal_counter += 1
        tombstone = path.with_name(
            f".{path.name}.stale-{self.policy.worker}"
            f"-{self._steal_counter}")
        try:
            os.rename(path, tombstone)
        except OSError as exc:
            if exc.errno in (errno.ENOENT, errno.ESTALE):
                return False
            raise
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        self.journal.append(
            "lease_steal", phase=self.phase,
            start=holder.start, end=holder.end,
            worker=self.policy.worker,
            previous_owner=holder.owner, torn=holder.torn,
            expired_for=(None if holder.deadline is None else
                         round(time.time() - holder.deadline, 3)))
        log.warning("reclaimed %s lease %d-%d from %s (%s)",
                    self.phase_dir.name, holder.start, holder.end,
                    holder.owner or "?",
                    "torn" if holder.torn else "expired")
        return True

    def renew(self, lease: Lease) -> None:
        """Extend our deadline and append the heartbeat to the ledger.

        Renewal is best-effort by design: if the lease was stolen out
        from under us (our file replaced or gone), we *keep working* —
        correctness never depended on holding the lease, and the commit
        path is duplicate-tolerant. The heartbeat event still lands, so
        the status plane shows this worker alive.
        """
        lease.renewals += 1
        current = parse_lease(lease.path)
        stolen = current is None or (not current.torn
                                     and current.owner
                                     != self.policy.worker)
        if not stolen:
            self._replace(lease.path,
                          self._body(lease.renewals,
                                     lease.created or time.time()))
            refreshed = parse_lease(lease.path)
            if refreshed is not None:
                lease.deadline = refreshed.deadline
        self.journal.append("lease_heartbeat", phase=self.phase,
                            start=lease.start, end=lease.end,
                            worker=self.policy.worker,
                            renewals=lease.renewals, stolen=stolen)

    def release(self, lease: Lease, reason: str = "done") -> None:
        """Drop our lease (only if still ours) and journal the release."""
        current = parse_lease(lease.path)
        if current is not None and not current.torn \
                and current.owner == self.policy.worker:
            try:
                os.unlink(lease.path)
            except OSError:
                pass
        self.journal.append("lease_release", phase=self.phase,
                            start=lease.start, end=lease.end,
                            worker=self.policy.worker, reason=reason)

    def expire_own(self, lease: Lease) -> None:
        """Force our own lease's deadline into the past (``steal@lease``):
        to every peer it now looks like a dead worker's leftovers, while
        we keep simulating — the double-commit rehearsal."""
        body = json.loads(self._body(lease.renewals,
                                     lease.created or time.time()))
        body["deadline"] = 0.0
        self._replace(lease.path,
                      (json.dumps(body, sort_keys=True) + "\n")
                      .encode("utf-8"))
        lease.deadline = 0.0


class _HeartbeatProgress:
    """Progress adapter that renews the lease as samples complete.

    Wraps the per-sample ``update()`` callback the simulation cores
    already invoke, so heartbeats cost a clock read per sample and stop
    the moment the worker stops finishing samples — hung and dead
    workers become indistinguishable to peers, which is the point.
    """

    def __init__(self, manager: LeaseManager, lease: Lease,
                 interval: float, reporter: ProgressReporter):
        self.manager = manager
        self.lease = lease
        self.interval = interval
        self.reporter = reporter
        self._last = time.monotonic()

    def update(self, n: int = 1) -> None:
        self.reporter.update(n)
        now = time.monotonic()
        if now - self._last >= self.interval:
            self._last = now
            self.manager.renew(self.lease)


def _covered(spans: List[Tuple[int, int]]) -> set:
    covered: set = set()
    for start, end in spans:
        covered.update(range(start, end + 1))
    return covered


def _act_out_lease_fault(manager: LeaseManager, lease: Lease) -> None:
    """Fire any armed ``@lease`` fault right after a successful claim."""
    plan = active_plan()
    spec = plan.lease_claim_fault() if plan is not None else None
    if spec is None:
        return
    if spec.kind == "steal":
        manager.expire_own(lease)
        log.warning("injected %s: expired own lease %d-%d, continuing",
                    spec.describe(), lease.start, lease.end)
        return
    if spec.kind == "exit":
        # The SIGKILL model: no cleanup, no release — the lease must be
        # reclaimed by peers after the deadline.
        os._exit(EXIT_STATUS)
    if spec.kind == "hang":
        # Block forever mid-lease; heartbeats stop with us.
        threading.Event().wait()
    manager.release(lease, reason="fault")
    raise InjectedFault(
        f"injected fault {spec.describe()} after claiming samples "
        f"{lease.start}-{lease.end}"
    )


def collect_records_sharded(ctx, policy, num_samples: int,
                            counts_only: bool = False,
                            retain_kernel_results: bool = False):
    """One shard worker's side of a collection phase.

    Drains the phase's fixed-boundary chunks cooperatively: claim,
    simulate through the same :func:`_simulate_chunk` every other path
    uses, commit duplicate-tolerantly, release; back off (capped
    exponential, campaign-RNG jitter) when everything left is validly
    leased by live peers; reclaim what the dead leave behind. Returns
    exactly what the serial path returns — the fold dedupes by sample
    index, so overlapping chunks (steals, pre-shard partial runs) can
    never double-count.
    """
    from repro.experiments.base import build_server
    from repro.experiments.runner import (
        _phase_journal,
        _simulate_chunk,
        _worker_context,
    )

    shard: ShardPolicy = ctx.shard.validate()
    store = ctx.checkpoint
    if store is None:
        raise ConfigurationError(
            "sharded collection requires a checkpoint store "
            "(rcoal shard always opens one)"
        )
    label = phase_label(ctx, policy, num_samples, counts_only,
                        retain_kernel_results)
    journal = _phase_journal(ctx)
    worker_ctx = _worker_context(ctx)
    faults = (ctx.faults.bind(num_samples, ctx.root_seed)
              if ctx.faults is not None else None)
    spans = shard_spans(num_samples, shard.chunk_samples)
    phase_dir = store.phase_dir(label, make=True)
    manager = LeaseManager(phase_dir, shard, journal, phase=label)
    jitter = ctx.stream(f"shard#{shard.worker}")
    from repro.utils import batched_mode, batched_timing_mode
    if counts_only:
        engine = ("batched" if faults is None and batched_mode(ctx.batched)
                  else "event")
    else:
        engine = ("batched_timing"
                  if batched_timing_mode(ctx.batched_timing) else "event")

    restored = len(_covered(store.completed_spans(label)))
    journal.append("phase_start", phase=label, policy=policy.describe(),
                   samples=num_samples, restored=restored, jobs=1,
                   mode="shard", engine=engine, counts_only=counts_only,
                   worker=shard.worker)
    if counts_only:
        journal.append("engine_select", phase=label, engine=engine)
    if restored:
        print(f"[resume: {min(restored, num_samples)}/{num_samples} "
              f"samples of {policy.describe()} already committed in "
              f"{store.describe()}]", file=sys.stderr)
    phase_started = time.perf_counter()
    reporter = ProgressReporter(
        num_samples, label=f"{policy.describe()} [{shard.worker}]",
        enabled=ctx.progress or env_flag("REPRO_PROGRESS"))

    idle_rounds = 0
    while True:
        done = _covered(store.completed_spans(label))
        todo = [(start, end) for start, end in spans
                if not set(range(start, end + 1)) <= done]
        if not todo:
            break
        progress = False
        for start, end in todo:
            if store.has_chunk(label, start, end):
                progress = True  # a peer finished it since the census
                continue
            lease = manager.claim(start, end)
            if lease is None:
                continue
            _act_out_lease_fault(manager, lease)
            if store.has_chunk(label, start, end):
                # Committed between the census and our claim; the lease
                # was pointless, not wrong.
                manager.release(lease, reason="already-committed")
                progress = True
                continue
            indices = tuple(range(start, end + 1))
            journal.append("chunk_dispatch", phase=label, start=start,
                           end=end, samples=len(indices), attempt=0,
                           worker=shard.worker)
            heartbeat = _HeartbeatProgress(manager, lease,
                                           shard.heartbeat(), reporter)
            chunk_started = time.perf_counter()
            try:
                records, _ = _simulate_chunk(
                    worker_ctx, policy, num_samples, indices, counts_only,
                    retain_kernel_results, trace_capacity=0, faults=faults,
                    attempt=0, progress=heartbeat, in_worker=True)
            except KeyboardInterrupt:
                # Satellite contract: an interrupted worker releases its
                # lease *before* exiting 130 — peers must never have to
                # wait out the deadline for a clean Ctrl-C.
                manager.release(lease, reason="interrupted")
                print(f"\n[interrupted: released lease {start}-{end} of "
                      f"{policy.describe()}; peers can claim it "
                      f"immediately]", file=sys.stderr)
                raise
            except BaseException as exc:
                manager.release(lease, reason=f"error: "
                                f"{type(exc).__name__}")
                raise
            committed = store.commit_chunk(
                label, ChunkResult(indices, records, None))
            journal.append(
                "chunk_done", phase=label, start=start, end=end,
                samples=len(indices), attempt=0, worker=shard.worker,
                committed=committed,
                seconds=round(time.perf_counter() - chunk_started, 6))
            manager.release(lease)
            progress = True
        if progress:
            idle_rounds = 0
            continue
        # Everything left is leased by peers that look alive. Back off;
        # if one of them is actually dead, its lease expires within
        # lease_seconds and the next pass reclaims it.
        idle_rounds += 1
        delay = min(shard.backoff_cap,
                    shard.backoff_base * (2 ** (idle_rounds - 1)))
        delay *= 0.5 + float(jitter.generator.random())
        log.info("all remaining chunks of %s leased by peers; backing "
                 "off %.3fs (round %d)", policy.describe(), delay,
                 idle_rounds)
        time.sleep(delay)
    reporter.finish()

    # Fold by sample index: chunks may overlap (a steal's double commit,
    # spans from a pre-shard run) but every copy of a sample is
    # identical, so first-wins in sorted-chunk order is deterministic.
    by_index = {}
    for chunk in store.load_chunks(label):
        for index, record in zip(chunk.indices, chunk.records):
            by_index.setdefault(index, record)
    missing = [i for i in range(num_samples) if i not in by_index]
    if missing:
        raise ExperimentError(
            f"sharded phase {label} ended with samples {missing[:8]} "
            f"uncommitted — the campaign directory was modified "
            f"underneath the workers"
        )
    records = [by_index[index] for index in range(num_samples)]

    journal.append(
        "phase_finish", phase=label, samples=num_samples,
        completed=len(records), restored=restored, quarantined=0,
        worker=shard.worker,
        seconds=round(time.perf_counter() - phase_started, 6))
    server = build_server(ctx, policy, counts_only=counts_only,
                          retain_kernel_results=retain_kernel_results,
                          telemetry=ctx.telemetry)
    return server, records
