"""Ablation: RSS sizing distribution — normal vs skewed (Fig 9 discussion).

The paper chooses the skewed (uniform-composition) distribution over the
normal one, asserting ("empirical results (not shown)") that normal-RSS
behaves like FSS on both axes. This ablation produces those unshown
numbers: per-M security (counts channel, corresponding attack that knows
the distribution) and performance for FSS, normal-RSS, and skewed-RSS.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.attack.estimator import AccessEstimator
from repro.attack.recovery import CorrelationTimingAttack
from repro.core.policies import RSSPolicy, make_policy
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    collect_records,
)

__all__ = ["run", "DIST_SWEEP"]

DIST_SWEEP: Tuple[int, ...] = (2, 4, 8)


def _variant_policy(variant: str, m: int):
    if variant == "fss":
        return make_policy("fss", m)
    return RSSPolicy(m, rts=True, distribution=variant)


def _attack(ctx: ExperimentContext, variant: str, m: int, records):
    model = _variant_policy(variant, m)
    rng = (ctx.stream(f"attacker-dist-{variant}-{m}")
           if model.is_randomized else None)
    attack = CorrelationTimingAttack(AccessEstimator(model, rng=rng))
    observed = np.array([r.last_round_byte_accesses for r in records]).T
    return attack.recover_key(
        [r.ciphertext_lines for r in records], observed,
        correct_key=None,
    )


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep: Sequence[int] = DIST_SWEEP) -> ExperimentResult:
    num_samples = ctx.sample_count(paper=80, fast=30)
    perf_samples = ctx.sample_count(paper=10, fast=5)

    _, base_records = collect_records(ctx, make_policy("baseline"),
                                      perf_samples)
    baseline_time = float(np.mean([r.total_time for r in base_records]))

    variants = ("fss", "normal", "skewed")
    rows = []
    metrics = {v: {} for v in variants}
    for m in subwarp_sweep:
        row = [m]
        for variant in variants:
            policy = _variant_policy(variant, m)
            server, records = collect_records(ctx, policy, num_samples,
                                              counts_only=True)
            observed = np.array(
                [r.last_round_byte_accesses for r in records]
            ).T
            model = _variant_policy(variant, m)
            attack = CorrelationTimingAttack(AccessEstimator(
                model,
                rng=(ctx.stream(f"attacker-dist-{variant}-{m}")
                     if model.is_randomized else None),
            ))
            recovery = attack.recover_key(
                [r.ciphertext_lines for r in records], observed,
                correct_key=server.last_round_key,
            )
            _, perf_records = collect_records(ctx, policy, perf_samples)
            norm_time = float(
                np.mean([r.total_time for r in perf_records])
            ) / baseline_time
            corr = recovery.average_correct_correlation
            row.extend([corr, norm_time])
            metrics[variant][m] = {"corr": corr, "time": norm_time}
        rows.append(tuple(row))

    return ExperimentResult(
        experiment_id="ablation_rss_dist",
        title="RSS sizing-distribution ablation: FSS vs normal-RSS(+RTS) "
              "vs skewed-RSS(+RTS)",
        headers=["num-subwarps",
                 "corr FSS", "time FSS",
                 "corr normal", "time normal",
                 "corr skewed", "time skewed"],
        rows=rows,
        notes=[
            "paper Section IV-B: normal-RSS behaves like FSS on security "
            "and performance; the skewed distribution is chosen because "
            "its size diversity both hardens mimicry and preserves "
            "coalescing through occasional large subwarps",
        ],
        metrics=metrics,
    )
