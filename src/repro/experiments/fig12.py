"""Fig 12: FSS+RTS against the FSS+RTS attack.

The mimicking attacker reproduces the mechanism but not the victim's
private per-launch thread permutation, so the correct guess no longer
stands out as num-subwarps grows.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.experiments.scatter import SCATTER_SWEEP, run_scatter_experiment

__all__ = ["run"]


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep=SCATTER_SWEEP) -> ExperimentResult:
    return run_scatter_experiment(
        ctx,
        experiment_id="fig12",
        policy_name="fss_rts",
        title="FSS+RTS mechanism against the FSS+RTS attack",
        paper_note="paper: recovery gets difficult as num-subwarps grows; "
                   "random thread allocation is hard to match even for an "
                   "attacker who implements it",
        subwarp_sweep=subwarp_sweep,
)
