"""Registry of experiment runners, keyed by paper table/figure id."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.experiments import (
    ablation_addrmap,
    ablation_blocksize,
    ablation_energy,
    ablation_inference,
    ablation_leakage,
    ablation_noise,
    ablation_rss_dist,
    ablation_samples,
    ablation_scheduling,
    ablation_selective,
    attribute,
    fig05, fig06, fig07, fig08, fig09,
    fig12, fig13, fig14, fig15, fig16, fig17, fig18,
    table2,
)
from repro.experiments.base import ExperimentContext, ExperimentResult

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

Runner = Callable[..., ExperimentResult]

EXPERIMENTS: Dict[str, Runner] = {
    "table2": table2.run,
    "fig05": fig05.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    # Extensions: the paper's Section VII directions and unshown ablations.
    "attribute": attribute.run,
    "ablation_selective": ablation_selective.run,
    "ablation_rss_dist": ablation_rss_dist.run,
    "ablation_inference": ablation_inference.run,
    "ablation_samples": ablation_samples.run,
    "ablation_noise": ablation_noise.run,
    "ablation_energy": ablation_energy.run,
    "ablation_blocksize": ablation_blocksize.run,
    "ablation_leakage": ablation_leakage.run,
    "ablation_scheduling": ablation_scheduling.run,
    "ablation_addrmap": ablation_addrmap.run,
}


def get_experiment(experiment_id: str) -> Runner:
    """Look up one experiment runner by id (e.g. "fig06")."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(experiment_id: str,
                   ctx: ExperimentContext = ExperimentContext()
                   ) -> ExperimentResult:
    """Run one experiment under a context."""
    return get_experiment(experiment_id)(ctx)
