"""Fig 14: RSS+RTS against the RSS+RTS attack.

Randomness in both sizing and thread allocation; the hardest mechanism to
mimic for num-subwarps in {2, 4}.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.experiments.scatter import SCATTER_SWEEP, run_scatter_experiment

__all__ = ["run"]


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep=SCATTER_SWEEP) -> ExperimentResult:
    return run_scatter_experiment(
        ctx,
        experiment_id="fig14",
        policy_name="rss_rts",
        title="RSS+RTS mechanism against the RSS+RTS attack",
        paper_note="paper: recovery of the correct key byte is difficult "
                   "for num-subwarps > 2",
        subwarp_sweep=subwarp_sweep,
)
