"""Fig 9: RSS subwarp-size distributions (normal vs skewed), M = 4.

Histograms of the subwarp sizes drawn over 1000 plaintexts. The normal
variant clusters around 32/M = 8; the skewed variant (uniform over
compositions) is right-skewed — most subwarps small, occasionally one very
large — which both hides the sizes and preserves coalescing opportunity.
"""

from __future__ import annotations

from collections import Counter

from repro.core.sizing import normal_sizes, skewed_sizes
from repro.experiments.base import ExperimentContext, ExperimentResult

__all__ = ["run", "NUM_DRAWS", "NUM_SUBWARPS"]

NUM_DRAWS = 1000
NUM_SUBWARPS = 4


def run(ctx: ExperimentContext = ExperimentContext()) -> ExperimentResult:
    warp_size = 32
    rng_normal = ctx.stream("fig09-normal")
    rng_skewed = ctx.stream("fig09-skewed")

    normal_counts: Counter = Counter()
    skewed_counts: Counter = Counter()
    for _ in range(NUM_DRAWS):
        normal_counts.update(normal_sizes(warp_size, NUM_SUBWARPS,
                                          rng_normal))
        skewed_counts.update(skewed_sizes(warp_size, NUM_SUBWARPS,
                                          rng_skewed))

    max_size = warp_size - NUM_SUBWARPS + 1
    rows = [(size, normal_counts.get(size, 0), skewed_counts.get(size, 0))
            for size in range(1, max_size + 1)]

    def mean(counter: Counter) -> float:
        total = sum(counter.values())
        return sum(size * count for size, count in counter.items()) / total

    return ExperimentResult(
        experiment_id="fig09",
        title=f"RSS subwarp-size distributions, num-subwarps={NUM_SUBWARPS}, "
              f"{NUM_DRAWS} plaintexts",
        headers=["subwarp size", "normal draws", "skewed draws"],
        rows=rows,
        notes=[
            f"normal mean size {mean(normal_counts):.2f} (paper: close to "
            f"32/M = {warp_size / NUM_SUBWARPS:.0f}); skewed mean "
            f"{mean(skewed_counts):.2f} with a long right tail",
            "paper: the skewed distribution makes all size combinations "
            "equally likely with no empty subwarp",
        ],
        metrics={
            "normal_histogram": dict(normal_counts),
            "skewed_histogram": dict(skewed_counts),
        },
    )
