"""Fig 18: case study with 1024-line plaintexts (32 warps).

Scalability of the defenses to large plaintexts.

(a) Security: to remove warp-scheduling noise, the paper correlates the
corresponding attack's estimated last-round accesses with the last-round
accesses *observed during encryption* (not time). We use the counts-only
server path for this — identical counts, no timing simulation.
(b) Performance: execution time normalized to num-subwarps = 1, from full
timing simulations with a reduced sample count (means need few samples).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.policies import make_policy
from repro.experiments.base import (
    MECHANISMS,
    ExperimentContext,
    ExperimentResult,
    collect_records,
    run_corresponding_attack,
)

__all__ = ["run", "CASE_STUDY_LINES", "CASE_SWEEP"]

CASE_STUDY_LINES = 1024
CASE_SWEEP: Tuple[int, ...] = (1, 2, 4, 8)

_PERF_PAPER_SAMPLES = 10


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep: Sequence[int] = CASE_SWEEP) -> ExperimentResult:
    ctx = ctx.with_(lines=CASE_STUDY_LINES)
    security_samples = ctx.sample_count(paper=100, fast=25)
    # Timing runs only need a stable mean: cap them well below the
    # security sample count even under explicit --samples overrides
    # (each 32-warp launch is ~10^5 simulated accesses).
    perf_samples = max(2, min(security_samples // 3, _PERF_PAPER_SAMPLES))

    avg_corr: Dict[str, Dict[int, float]] = {m: {} for m in MECHANISMS}
    norm_time: Dict[str, Dict[int, float]] = {m: {} for m in MECHANISMS}

    # (b) performance baseline at M = 1.
    perf_ctx = ctx.with_(samples=perf_samples)
    _, base_records = collect_records(perf_ctx, make_policy("baseline"),
                                      perf_samples)
    baseline_time = float(np.mean([r.total_time for r in base_records]))

    for mechanism in MECHANISMS:
        for m in subwarp_sweep:
            policy = make_policy(mechanism, m)

            # (a) counts-only security run. The observable is the per-byte
            # observed last-round access count (the paper removes timing /
            # scheduling noise by correlating estimated vs observed
            # last-round accesses directly).
            sec_ctx = ctx.with_(samples=security_samples)
            server, records = collect_records(
                sec_ctx, policy, security_samples, counts_only=True
            )
            observed = np.array(
                [r.last_round_byte_accesses for r in records]
            ).T  # (16, samples)
            recovery = run_corresponding_attack(
                sec_ctx, server, records, mechanism, m, observable=observed
            )
            avg_corr[mechanism][m] = recovery.average_correct_correlation

            # (b) timing run.
            _, perf_records = collect_records(perf_ctx, policy, perf_samples)
            norm_time[mechanism][m] = float(
                np.mean([r.total_time for r in perf_records])
            ) / baseline_time

    rows = []
    for m in subwarp_sweep:
        rows.append(
            (m,)
            + tuple(avg_corr[mech][m] for mech in MECHANISMS)
            + tuple(norm_time[mech][m] for mech in MECHANISMS)
        )
    headers = (
        ["num-subwarps"]
        + [f"corr {mech.upper()}" for mech in MECHANISMS]
        + [f"time {mech.upper()}" for mech in MECHANISMS]
    )
    return ExperimentResult(
        experiment_id="fig18",
        title=f"Case study: plaintexts with {CASE_STUDY_LINES} lines "
              f"(32 warps)",
        headers=headers,
        rows=rows,
        notes=[
            "paper 18a: average correlation decreases for FSS+RTS/RSS/"
            "RSS+RTS for num-subwarps > 1 (FSS stays at 1.0 — its attack "
            "reconstructs counts exactly)",
            "paper 18b: RTS is time-neutral; RSS-based mechanisms are "
            "faster than FSS-based; RSS+RTS degrades 29-76% for M in "
            "{2,4,8}",
        ],
        metrics={"avg_corr": avg_corr, "normalized_time": norm_time,
                 "sweep": list(subwarp_sweep)},
    )
