"""Leakage attribution: where the last-round timing channel leaks from.

The attacks in the paper treat the last-round execution time as an opaque
scalar. This experiment opens it up: it runs instrumented encryptions,
joins the traced round windows with the per-access interconnect and DRAM
events (stable launch-local access uids), and attributes every cycle of
the attacked window to the access — or the compute slice — that advanced
its completion frontier (:mod:`repro.analysis.attribution`).

The resulting table shows, per policy and warp, how the attacked window's
cycles split between serialized memory accesses (the signal the attacker
reads), compute, row-buffer misses, and accesses fully hidden under
memory-level parallelism — i.e. *which* coalesced accesses actually leak
and how the RSS+RTS defense redistributes them. Attribution reconciles by
construction: per-window contributions sum exactly to the round-window
cycles the golden tests pin.

Runs at >= 128 plaintext lines (4 warps) so the per-warp breakdown is
non-trivial even under the default context.
"""

from __future__ import annotations

from repro.analysis.attribution import attribute_rounds, summarize_by_warp
from repro.core.policies import make_policy
from repro.experiments.base import ExperimentContext, ExperimentResult, \
    collect_records
from repro.telemetry import Telemetry

__all__ = ["run"]

#: Ring capacity sized for the full instrumented batch: ~40k events per
#: 4-warp launch times a handful of samples; eviction would abort the
#: attribution join, so leave ample headroom.
_TRACE_CAPACITY = 2_000_000

_POLICIES = (("baseline", 1), ("rss_rts", 8))


def run(ctx: ExperimentContext = ExperimentContext()) -> ExperimentResult:
    num_samples = ctx.sample_count(paper=3, fast=1)
    lines = max(ctx.lines, 128)
    board = ctx.telemetry.board if ctx.telemetry is not None else None

    rows = []
    metrics: dict = {"samples": num_samples, "lines": lines,
                     "policies": {}}
    for name, subwarps in _POLICIES:
        policy = make_policy(name, subwarps)
        telemetry = Telemetry(trace_capacity=_TRACE_CAPACITY, board=board)
        policy_ctx = ctx.with_(telemetry=telemetry, lines=lines,
                               samples=num_samples)
        _, records = collect_records(policy_ctx, policy, num_samples)

        attributions = attribute_rounds(telemetry.tracer)
        last_round = max(a.round_index for a in attributions)
        attacked = [a for a in attributions if a.round_index == last_round]
        per_warp = summarize_by_warp(attacked)

        label = policy.describe()
        for warp_id in sorted(per_warp):
            agg = per_warp[warp_id]
            rows.append((
                f"{label} w{warp_id}",
                round(agg["mean_cycles"], 1),
                round(agg["mean_access_cycles"], 1),
                round(agg["mean_compute_cycles"], 1),
                round(agg["mean_row_miss_cycles"], 1),
                round(agg["mean_accesses"], 1),
                round(agg["mean_hidden_accesses"], 1),
            ))
        metrics["policies"][label] = {
            "last_round": last_round,
            "windows": len(attacked),
            "mean_window_cycles": (sum(a.duration for a in attacked)
                                   / len(attacked)),
            "attributed_cycles": sum(a.attributed for a in attacked),
            "window_cycles": sum(a.duration for a in attacked),
            "per_warp": {str(w): per_warp[w] for w in sorted(per_warp)},
            "mean_last_round_time": (sum(r.last_round_time
                                         for r in records)
                                     / len(records)),
        }

    return ExperimentResult(
        experiment_id="attribute",
        title="Last-round leakage attribution (cycles per warp, by cause)",
        headers=["policy/warp", "window cyc", "access cyc", "compute cyc",
                 "row-miss cyc", "accesses", "hidden"],
        rows=rows,
        notes=[
            "window cyc = mean attacked-round window per launch; access/"
            "compute cyc partition it by what advanced the completion "
            "frontier (attribution sums reconcile with the window "
            "exactly)",
            "hidden = accesses contributing 0 cycles (fully overlapped "
            "by memory-level parallelism): they cost bandwidth but leak "
            "no time",
            f"instrumented run over {num_samples} sample(s) at {lines} "
            f"plaintext lines; see docs/attacks.md#leakage-attribution",
        ],
        metrics=metrics,
    )
