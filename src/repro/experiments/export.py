"""Exporting experiment results (CSV / JSON) for external plotting."""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Union

from repro.experiments.base import ExperimentResult
from repro.utils import atomic_write_text

__all__ = ["to_csv", "to_json", "write_csv", "write_json"]


def _jsonable(value):
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def to_csv(result: ExperimentResult) -> str:
    """The result's rows as CSV text (header row included)."""
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow([_jsonable(v) for v in row])
    return buffer.getvalue()


def to_json(result: ExperimentResult) -> str:
    """Rows + notes as a JSON document (metrics omitted: they may hold
    non-serializable series; use the Python API for those)."""
    document = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [[_jsonable(v) for v in row] for row in result.rows],
        "notes": list(result.notes),
    }
    return json.dumps(document, indent=2)


def write_csv(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write the result as CSV, atomically; returns the path written."""
    return atomic_write_text(Path(path), to_csv(result))


def write_json(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write the result as JSON, atomically; returns the path written."""
    return atomic_write_text(Path(path), to_json(result))
