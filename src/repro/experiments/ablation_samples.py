"""Ablation: empirical samples-to-success vs the Eq 4 / Table II prediction.

Table II's S column claims the *number of samples* needed for a successful
attack scales as 1/rho^2, normalized to the baseline. This experiment
measures it: for each machine, sweep the sample count N and record the
fraction of independent trials in which key byte 0 is recovered (on the
clean per-byte counts channel, where rho equals the theoretical value).
The N at which recovery crosses 50% should scale between machines roughly
like their normalized S.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.model import rho_fss_rts
from repro.attack.estimator import AccessEstimator
from repro.attack.recovery import CorrelationTimingAttack
from repro.core.policies import make_policy
from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionServer

__all__ = ["run", "SAMPLE_GRID"]

SAMPLE_GRID: Tuple[int, ...] = (4, 8, 16, 32, 64, 128)
_MACHINES: Tuple[Tuple[str, int], ...] = (("baseline", 1), ("fss_rts", 2))


def _success_curve(ctx: ExperimentContext, mechanism: str, m: int,
                   trials: int, grid: Sequence[int]) -> Dict[int, float]:
    """P(byte-0 recovery) per sample count, over independent trials."""
    key = ctx.secret_key()
    max_n = max(grid)
    curve = {n: 0 for n in grid}
    for trial in range(trials):
        policy = make_policy(mechanism, m)
        victim = EncryptionServer(
            key, policy, counts_only=True,
            rng=(ctx.stream(f"curve-v-{mechanism}-{m}-{trial}")
                 if policy.is_randomized else None),
        )
        plaintexts = random_plaintexts(
            max_n, ctx.lines, ctx.stream(f"curve-pt-{trial}")
        )
        records = victim.encrypt_batch(plaintexts)
        ciphertexts = [r.ciphertext_lines for r in records]
        observed = np.array(
            [r.last_round_byte_accesses[0] for r in records], dtype=float
        )
        model = make_policy(mechanism, m)
        estimator = AccessEstimator(
            model,
            rng=(ctx.stream(f"curve-a-{mechanism}-{m}-{trial}")
                 if model.is_randomized else None),
        )
        attack = CorrelationTimingAttack(estimator)
        correct = victim.last_round_key[0]
        for n in grid:
            estimator.reset()  # re-prepare on the truncated prefix
            result = attack.recover_byte(ciphertexts[:n], observed[:n], 0,
                                         correct_value=correct)
            curve[n] += result.succeeded
    return {n: hits / trials for n, hits in curve.items()}


def crossing_point(curve: Dict[int, float],
                   threshold: float = 0.5) -> Optional[int]:
    """Smallest swept N with success probability >= threshold."""
    for n in sorted(curve):
        if curve[n] >= threshold:
            return n
    return None


def run(ctx: ExperimentContext = ExperimentContext(),
        grid: Sequence[int] = SAMPLE_GRID) -> ExperimentResult:
    trials = ctx.sample_count(paper=20, fast=8)

    curves = {}
    for mechanism, m in _MACHINES:
        curves[(mechanism, m)] = _success_curve(ctx, mechanism, m,
                                                trials, grid)

    rows: List[Tuple] = []
    for n in grid:
        rows.append((n,) + tuple(curves[machine][n]
                                 for machine in _MACHINES))

    base_cross = crossing_point(curves[("baseline", 1)])
    defended_cross = crossing_point(curves[("fss_rts", 2)])
    theory_ratio = 1.0 / float(rho_fss_rts(32, 16, 2)) ** 2
    measured_ratio = (defended_cross / base_cross
                      if base_cross and defended_cross else math.inf)

    return ExperimentResult(
        experiment_id="ablation_samples",
        title="Samples-to-success scaling vs the Table II prediction "
              "(byte-0 recovery, counts channel)",
        headers=["samples N"] + [f"{mech} M={m}" for mech, m in _MACHINES],
        rows=rows,
        notes=[
            f"50%-success crossing: baseline at N={base_cross}, "
            f"FSS+RTS(M=2) at N={defended_cross} -> measured ratio "
            f"{measured_ratio:.1f}x vs Table II's {theory_ratio:.1f}x "
            f"(swept on a power-of-two grid)",
            f"{trials} independent trials per point",
        ],
        metrics={
            "curves": {f"{mech}-{m}": curve
                       for (mech, m), curve in curves.items()},
            "base_crossing": base_cross,
            "defended_crossing": defended_cross,
            "theory_ratio": theory_ratio,
            "measured_ratio": measured_ratio,
        },
    )
