"""Fig 13: RSS against the RSS attack.

The attacker mimics the skewed subwarp sizing but the victim redraws sizes
per launch; for num-subwarps > 2 the correct guess's correlation is no
longer the maximum.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.experiments.scatter import SCATTER_SWEEP, run_scatter_experiment

__all__ = ["run"]


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep=SCATTER_SWEEP) -> ExperimentResult:
    return run_scatter_experiment(
        ctx,
        experiment_id="fig13",
        policy_name="rss",
        title="RSS mechanism against the RSS attack",
        paper_note="paper: for num-subwarps > 2 the correct key byte no "
                   "longer has the highest correlation",
        subwarp_sweep=subwarp_sweep,
)
