"""Repeatable performance benchmarks for the simulator substrate.

``rcoal bench`` times representative workloads and writes the numbers
to a committed ``BENCH_<n>.json`` so every PR leaves a perf trajectory
to regress against:

* ``timing_kernel`` — exact-cycle kernel simulation (the dominant cost
  of every figure): paper-shaped 32-line launches under ``rss_rts``,
  timed under *both* engines — the wavefront-batched core (the
  default; ms/launch and simulated cycles per wall second, the
  ROADMAP's ``sim.cycles / wall-second`` metric) and the per-event
  engine (``event_ms_per_launch``), with the speedup and a
  record-equality check (``cycles_identical``) on record;
* ``profiler_overhead`` — the same launches rerun with telemetry and
  span profiling enabled, so the observer-effect cost is on record
  (an unflagged run pays none of it: no telemetry object exists);
  instrumented runs execute on the event engine, so the ratio is
  taken against the event-engine baseline;
* ``counts_sweep`` — counts-only collection at Fig 18 scale (wide
  plaintexts, no timing engine), timed under *both* engines: the
  batched structure-of-arrays core (the default; ``ms_per_sample``)
  and the per-launch event path (``event_ms_per_sample``), with the
  speedup and a counts-equality check recorded;
* ``shard_overhead`` — the counts workload drained through the
  ``rcoal shard`` lease protocol with 1-sample chunks (the worst-case
  per-work-item toll: lease create/renew/release plus ledger appends),
  and a 2-worker same-host wall clock — an honest coordination-cost
  number, not a speedup claim (one CPU, GIL-serialized);
* ``fig07`` — one complete experiment harness end-to-end (collection
  for every mechanism in the subwarp sweep plus the corresponding
  attacks), the unit of ``rcoal all`` throughput. With ``--jobs N`` the
  same experiment is also run through the process-parallel runner and
  the serial/parallel speedup recorded.

Wall-clock numbers are machine-dependent; the JSON embeds enough host
metadata (CPU count, Python version) to compare like with like. Use
``--repeat`` to take the best of R runs when the machine is noisy.
"""

from __future__ import annotations

import json
import os
import platform
import re
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from repro.core.policies import make_policy
from repro.experiments.base import ExperimentContext, collect_records
from repro.telemetry import get_logger

__all__ = ["check_bench_floors", "default_bench_path", "run_bench",
           "write_bench"]

log = get_logger(__name__)

#: Workload sizing: big enough to dominate process/pool startup, small
#: enough that the full bench suite stays in CI-friendly territory.
TIMING_LAUNCHES = 8
COUNTS_SAMPLES = 4


def default_bench_path(directory: str = ".") -> str:
    """The next free ``BENCH_<n>.json`` in ``directory``.

    PR *n* commits ``BENCH_<n>.json``; scanning for the highest existing
    index keeps the sequence going without anyone tracking state.
    """
    highest = -1
    for name in os.listdir(directory or "."):
        match = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if match:
            highest = max(highest, int(match.group(1)))
    return os.path.join(directory, f"BENCH_{highest + 1}.json")


def _best_of(fn: Callable[[], object], repeat: int) -> Tuple[float, object]:
    """Run ``fn`` ``repeat`` times; return (best wall seconds, last value)."""
    best = float("inf")
    value: object = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_bench(jobs: int = 1, samples: int = 12, lines: int = 256,
              repeat: int = 1, seed: int = 2018,
              profile: bool = False) -> Dict[str, object]:
    """Time the benchmark workloads; returns the report as a dict."""
    report: Dict[str, object] = {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
        # Everything a fair report-to-report comparison depends on: the
        # sizing knobs, whether the fig07 harness ran instrumented, and
        # the sample-scaling environment the host had set.
        "config": {"jobs": jobs, "samples": samples, "lines": lines,
                   "repeat": repeat, "seed": seed, "profile": profile,
                   "env": {
                       "repro_fast": os.environ.get("REPRO_FAST") or None,
                       "repro_samples":
                           os.environ.get("REPRO_SAMPLES") or None,
                   }},
        "workloads": {},
    }
    workloads: Dict[str, Dict[str, object]] = report["workloads"]

    # -- full-timing kernel simulation -----------------------------------
    ctx = ExperimentContext(root_seed=seed, samples=TIMING_LAUNCHES)
    policy = make_policy("rss_rts", 8)
    log.info("bench: timing_kernel (%d launches, batched)", TIMING_LAUNCHES)
    seconds, collected = _best_of(
        lambda: collect_records(ctx.with_(batched_timing=True), policy,
                                TIMING_LAUNCHES), repeat
    )
    _, records = collected
    simulated_cycles = sum(r.total_time for r in records)
    log.info("bench: timing_kernel (%d launches, event engine)",
             TIMING_LAUNCHES)
    event_seconds, collected = _best_of(
        lambda: collect_records(ctx.with_(batched_timing=False), policy,
                                TIMING_LAUNCHES), repeat
    )
    _, event_records = collected
    workloads["timing_kernel"] = {
        "description": "exact-cycle simulation, 32-line rss_rts launches: "
                       "wavefront-batched core (default) vs the per-event "
                       "engine",
        "launches": TIMING_LAUNCHES,
        "seconds": round(seconds, 4),
        "ms_per_launch": round(seconds / TIMING_LAUNCHES * 1e3, 2),
        "sim_cycles_per_second": round(simulated_cycles / seconds),
        "event_seconds": round(event_seconds, 4),
        "event_ms_per_launch": round(event_seconds / TIMING_LAUNCHES * 1e3,
                                     2),
        "speedup_vs_event": round(event_seconds / seconds, 2),
        # Dataclass equality across every record: ciphertexts, access
        # counts and every cycle number must agree, or the speedup is a
        # different machine, not a faster one.
        "cycles_identical": records == event_records,
    }

    # -- profiler observer-effect overhead -------------------------------
    # The same launches with full telemetry + span profiling on, so every
    # report records what observation costs (and CI can flag growth). An
    # instrumented run always executes on the event engine (the batched
    # core covers uninstrumented launches only), so the profiling-OFF
    # baseline is the *event-engine* timing_kernel number — the ratio
    # measures observation cost, not engine selection.
    from repro.telemetry import Telemetry

    def _profiled_kernel():
        pctx = ExperimentContext(root_seed=seed, samples=TIMING_LAUNCHES,
                                 telemetry=Telemetry(profile=True))
        return collect_records(pctx, policy, TIMING_LAUNCHES)

    log.info("bench: profiler_overhead (%d launches)", TIMING_LAUNCHES)
    on_seconds, _ = _best_of(_profiled_kernel, repeat)
    workloads["profiler_overhead"] = {
        "description": "timing_kernel rerun with telemetry + span "
                       "profiling enabled (observer-effect cost vs the "
                       "event engine it instruments; results stay "
                       "bit-identical)",
        "launches": TIMING_LAUNCHES,
        "seconds": round(on_seconds, 4),
        "seconds_off": round(event_seconds, 4),
        "overhead_ratio": round(on_seconds / event_seconds, 2),
    }

    # -- counts-only fast path (Fig 18 scale), both engines --------------
    ctx = ExperimentContext(root_seed=seed, samples=COUNTS_SAMPLES,
                            lines=lines)
    log.info("bench: counts_sweep (%d samples x %d lines, batched)",
             COUNTS_SAMPLES, lines)
    seconds, collected = _best_of(
        lambda: collect_records(ctx.with_(batched=True), policy,
                                COUNTS_SAMPLES, counts_only=True), repeat
    )
    _, batched_records = collected
    log.info("bench: counts_sweep (%d samples x %d lines, event engine)",
             COUNTS_SAMPLES, lines)
    event_seconds, collected = _best_of(
        lambda: collect_records(ctx.with_(batched=False), policy,
                                COUNTS_SAMPLES, counts_only=True), repeat
    )
    _, event_records = collected
    workloads["counts_sweep"] = {
        "description": f"counts-only collection, {lines}-line plaintexts "
                       "(batched structure-of-arrays core)",
        "samples": COUNTS_SAMPLES,
        "lines": lines,
        "seconds": round(seconds, 4),
        "ms_per_sample": round(seconds / COUNTS_SAMPLES * 1e3, 2),
        "event_seconds": round(event_seconds, 4),
        "event_ms_per_sample": round(event_seconds / COUNTS_SAMPLES * 1e3,
                                     2),
        "speedup_vs_event": round(event_seconds / seconds, 2),
        # Dataclass equality across every record: the engines must agree
        # on ciphertexts and every access count, or the speedup is moot.
        "counts_identical": batched_records == event_records,
    }

    # -- run-ledger (events.jsonl) overhead ------------------------------
    # Two numbers: raw fsync'd append throughput (every ledger write is
    # flush + fsync, so this is disk-bound by design), and the same
    # counts collection as above rerun with a live journal so the
    # phase-event cost relative to the unledgered run (counts_sweep's
    # batched `seconds`) is on record. A fresh temp dir per call keeps
    # repeats from appending to (or resuming) each other's ledgers.
    import tempfile

    from repro.telemetry.journal import RunJournal

    appends = 512
    log.info("bench: journal_overhead (%d appends)", appends)

    def _append_burst():
        with tempfile.TemporaryDirectory() as tmp:
            journal = RunJournal(os.path.join(tmp, "events.jsonl"))
            for index in range(appends):
                journal.append("bench_tick", index=index)

    append_seconds, _ = _best_of(_append_burst, repeat)

    def _ledgered_sweep():
        with tempfile.TemporaryDirectory() as tmp:
            journal = RunJournal(os.path.join(tmp, "events.jsonl"))
            return collect_records(
                ctx.with_(batched=True, journal=journal), policy,
                COUNTS_SAMPLES, counts_only=True)

    ledger_seconds, _ = _best_of(_ledgered_sweep, repeat)
    workloads["journal_overhead"] = {
        "description": "run-ledger cost: fsync'd append throughput, and "
                       "counts_sweep rerun with phase events journaled "
                       "(vs its unledgered seconds)",
        "appends": appends,
        "append_seconds": round(append_seconds, 4),
        "appends_per_second": round(appends / append_seconds),
        "seconds": round(ledger_seconds, 4),
        "seconds_off": round(seconds, 4),
        "overhead_ratio": round(ledger_seconds / seconds, 2),
    }
    counts_seconds = seconds

    # -- sharded execution overhead (rcoal shard) ------------------------
    # The same counts collection drained through the lease protocol:
    # 1-sample chunks maximize the per-chunk toll (lease create + fsync,
    # ledger claim/dispatch/done/release appends, chunk commit, lease
    # unlink), so `overhead_ratio` is the worst-case price of crash
    # tolerance per work item. The 2-worker number runs two in-process
    # worker threads against one campaign dir; on this 1-CPU-bound,
    # GIL-serialized simulator it measures *coordination* cost, not
    # speedup — real shard scaling needs separate processes (ideally
    # hosts), which is exactly what the chaos-shard CI job exercises.
    from repro.experiments.checkpoint import (
        CheckpointStore,
        campaign_fingerprint,
    )
    from repro.experiments.shard import ShardPolicy

    def _shard_worker(tmp: str, name: str):
        store = CheckpointStore.open(
            os.path.join(tmp, "run"),
            campaign_fingerprint("bench-shard", ctx, instrumented=False))
        sctx = ctx.with_(batched=True, checkpoint=store,
                         shard=ShardPolicy(worker=name,
                                           lease_seconds=30.0,
                                           chunk_samples=1))
        return collect_records(sctx, policy, COUNTS_SAMPLES,
                               counts_only=True)

    log.info("bench: shard_overhead (%d samples, 1-sample chunks)",
             COUNTS_SAMPLES)

    def _shard_solo():
        with tempfile.TemporaryDirectory() as tmp:
            return _shard_worker(tmp, "bench-w1")

    shard_seconds, collected = _best_of(_shard_solo, repeat)
    _, shard_records = collected

    def _shard_pair():
        import threading
        with tempfile.TemporaryDirectory() as tmp:
            results: Dict[str, object] = {}

            def drain(name: str) -> None:
                results[name] = _shard_worker(tmp, name)[1]

            threads = [threading.Thread(target=drain, args=(name,))
                       for name in ("bench-w1", "bench-w2")]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return results

    log.info("bench: shard_overhead (2 worker threads, shared dir)")
    pair_seconds, pair_results = _best_of(_shard_pair, repeat)
    workloads["shard_overhead"] = {
        "description": "counts_sweep drained via the shard lease "
                       "protocol, 1-sample chunks (worst-case lease + "
                       "heartbeat + commit toll per work item); the "
                       "2-worker wall clock is same-host threads on a "
                       "GIL-serialized simulator — coordination cost, "
                       "not a speedup claim",
        "samples": COUNTS_SAMPLES,
        "chunks": COUNTS_SAMPLES,
        "seconds": round(shard_seconds, 4),
        "seconds_off": round(counts_seconds, 4),
        "overhead_ratio": round(shard_seconds / counts_seconds, 2),
        "lease_ms_per_chunk": round(
            max(0.0, shard_seconds - counts_seconds)
            / COUNTS_SAMPLES * 1e3, 2),
        "workers2_seconds": round(pair_seconds, 4),
        "records_identical": (
            shard_records == batched_records
            and all(result == batched_records
                    for result in pair_results.values())),
    }

    # -- one full experiment harness -------------------------------------
    from repro.experiments.registry import run_experiment
    serial_ctx = ExperimentContext(
        root_seed=seed, samples=samples,
        telemetry=Telemetry(profile=True) if profile else None)
    log.info("bench: fig07 (samples=%d, serial)", samples)
    serial_seconds, _ = _best_of(
        lambda: run_experiment("fig07", serial_ctx), repeat
    )
    workloads["fig07"] = {
        "description": "full fig07 harness (collection + attacks), serial",
        "samples": samples,
        "seconds": round(serial_seconds, 4),
    }

    if jobs > 1:
        parallel_ctx = serial_ctx.with_(jobs=jobs)
        log.info("bench: fig07 (samples=%d, jobs=%d)", samples, jobs)
        parallel_seconds, _ = _best_of(
            lambda: run_experiment("fig07", parallel_ctx), repeat
        )
        workloads["fig07_parallel"] = {
            "description": "full fig07 harness via the process-pool runner",
            "samples": samples,
            "jobs": jobs,
            "seconds": round(parallel_seconds, 4),
            "speedup_vs_serial": round(serial_seconds / parallel_seconds, 2),
        }

    return report


def check_bench_floors(report: Dict[str, object],
                       floors_path: str) -> list:
    """Compare a bench report against committed throughput floors.

    ``floors_path`` holds ``{"floors": {"<workload>.<key>": {"min": x}
    or {"max": y}}}`` — ``min`` for throughput-style numbers (simulated
    cycles per second), ``max`` for cost-style numbers (ms per sample).
    Floors are deliberately *generous* (several-fold slack against the
    committed BENCH numbers): wall clocks vary across hosts and CI
    runners, and the gate exists to catch order-of-magnitude regressions
    — an accidentally-disabled fast path, a quadratic loop — not 10%
    noise. Trend tracking stays the BENCH_<n>.json series' job.

    Returns a list of human-readable violations (empty = all clear).
    A floor naming a workload the report didn't run is itself a
    violation: a gate that silently skips is no gate.
    """
    with open(floors_path, "r", encoding="utf-8") as handle:
        floors = json.load(handle)
    workloads = report.get("workloads", {})
    violations = []
    for path, bounds in sorted(floors.get("floors", {}).items()):
        workload, _, key = path.partition(".")
        data = workloads.get(workload, {})
        value = data.get(key)
        if value is None:
            violations.append(
                f"{path}: not present in this bench report "
                f"(workload missing or key renamed)"
            )
            continue
        minimum = bounds.get("min")
        if minimum is not None and value < minimum:
            violations.append(
                f"{path}: {value} fell below the floor {minimum}"
            )
        maximum = bounds.get("max")
        if maximum is not None and value > maximum:
            violations.append(
                f"{path}: {value} exceeded the ceiling {maximum}"
            )
        if bounds.get("expect") is not None \
                and value != bounds["expect"]:
            violations.append(
                f"{path}: {value!r} != expected {bounds['expect']!r}"
            )
    return violations


def write_bench(report: Dict[str, object], path: Optional[str] = None) -> str:
    """Write a bench report as pretty JSON; returns the path."""
    target = path or default_bench_path()
    from repro.utils import atomic_write_json
    atomic_write_json(target, report, indent=2, sort_keys=False)
    return target


def render_report(report: Dict[str, object]) -> str:
    """Human-readable one-line-per-workload summary."""
    lines = []
    for name, data in report["workloads"].items():
        parts = [f"{name}: {data['seconds']}s"]
        for key in ("ms_per_launch", "ms_per_sample",
                    "sim_cycles_per_second", "speedup_vs_serial",
                    "event_ms_per_launch", "event_ms_per_sample",
                    "speedup_vs_event", "counts_identical",
                    "cycles_identical", "overhead_ratio",
                    "appends_per_second", "lease_ms_per_chunk",
                    "workers2_seconds", "records_identical"):
            if key in data:
                parts.append(f"{key}={data[key]}")
        lines.append("  ".join(parts))
    return "\n".join(lines)
