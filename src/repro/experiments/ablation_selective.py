"""Ablation: selective RCoal (Section VII future work).

Protecting only the last round should keep the last round exactly as hard
to attack (same randomized coalescing there) while recovering most of the
execution-time overhead (rounds 1-9 coalesce at full efficiency).

Security is evaluated on the clean per-byte counts channel against the
corresponding attack, performance on the timing simulator.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.policies import make_policy
from repro.core.selective import SelectiveRCoalPolicy
from repro.experiments.base import (
    ExperimentContext,
    ExperimentResult,
    collect_records,
    run_corresponding_attack,
)

__all__ = ["run", "ABLATION_SWEEP"]

ABLATION_SWEEP: Tuple[int, ...] = (4, 8, 16)
_BASE_MECHANISM = "rss_rts"


def _measure(ctx: ExperimentContext, policy, mechanism: str, m: int,
             num_samples: int, perf_samples: int):
    server, records = collect_records(ctx, policy, num_samples,
                                      counts_only=True)
    observed = np.array([r.last_round_byte_accesses for r in records]).T
    recovery = run_corresponding_attack(ctx, server, records, mechanism, m,
                                        observable=observed)
    _, perf_records = collect_records(ctx, policy, perf_samples)
    mean_time = float(np.mean([r.total_time for r in perf_records]))
    mean_accesses = float(np.mean([r.total_accesses for r in records]))
    return recovery.average_correct_correlation, mean_time, mean_accesses


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep: Sequence[int] = ABLATION_SWEEP) -> ExperimentResult:
    num_samples = ctx.sample_count(paper=80, fast=30)
    perf_samples = ctx.sample_count(paper=10, fast=5)

    _, base_records = collect_records(ctx, make_policy("baseline"),
                                      perf_samples)
    baseline_time = float(np.mean([r.total_time for r in base_records]))

    rows = []
    metrics = {"full": {}, "selective": {}}
    for m in subwarp_sweep:
        full_corr, full_time, full_acc = _measure(
            ctx, make_policy(_BASE_MECHANISM, m), _BASE_MECHANISM, m,
            num_samples, perf_samples,
        )
        sel_policy = SelectiveRCoalPolicy(make_policy(_BASE_MECHANISM, m))
        sel_corr, sel_time, sel_acc = _measure(
            ctx, sel_policy, _BASE_MECHANISM, m, num_samples, perf_samples,
        )
        rows.append((
            m,
            full_corr, full_time / baseline_time, full_acc,
            sel_corr, sel_time / baseline_time, sel_acc,
        ))
        metrics["full"][m] = {"corr": full_corr,
                              "time": full_time / baseline_time}
        metrics["selective"][m] = {"corr": sel_corr,
                                   "time": sel_time / baseline_time}

    return ExperimentResult(
        experiment_id="ablation_selective",
        title=f"Selective RCoal ({_BASE_MECHANISM}, last round only) vs "
              f"full-kernel RCoal",
        headers=["num-subwarps",
                 "corr full", "time full", "accesses full",
                 "corr selective", "time selective", "accesses selective"],
        rows=rows,
        notes=[
            "paper Section VII: restricting RCoal to the vulnerable code "
            "would 'enhance the performance further' at unchanged last-"
            "round protection; this ablation implements that design",
            "expected shape: selective keeps the attack correlation at the "
            "full defense's level while its execution time returns most of "
            "the way to 1.0",
        ],
        metrics=metrics,
    )
