"""Shared experiment machinery.

Every experiment follows the paper's measurement protocol:

1. generate N random plaintexts (100 of 32 lines by default — the paper's
   sample budget; Fig 18 uses 1024 lines);
2. stand up an :class:`~repro.workloads.server.EncryptionServer` with the
   mechanism under test (the victim draws from the "victim" RNG stream);
3. optionally run the **corresponding attack**: an estimator whose model
   policy mirrors the defense, drawing from the independent "attacker"
   stream;
4. tabulate.

``ExperimentContext`` carries seed and sample-size knobs; sample counts
default to the paper's and honor ``REPRO_SAMPLES`` / ``REPRO_FAST``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attack.estimator import AccessEstimator
from repro.attack.recovery import CorrelationTimingAttack, KeyRecovery
from repro.core.policies import CoalescingPolicy, make_policy
from repro.experiments.reporting import format_table
from repro.gpu.config import GPUConfig
from repro.rng import RngStream
from repro.telemetry import (
    ProgressReporter,
    SpanProfiler,
    Telemetry,
    get_logger,
)
from repro.utils import (batched_mode, batched_timing_mode,
                         env_flag, scaled_samples)
from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionRecord, EncryptionServer

__all__ = [
    "ExperimentContext",
    "ExperimentResult",
    "MECHANISMS",
    "build_server",
    "collect_records",
    "corresponding_attack",
    "run_corresponding_attack",
    "victim_stream_name",
]

#: The four defense mechanisms compared throughout Section VI, paper order.
MECHANISMS: Tuple[str, ...] = ("fss", "fss_rts", "rss", "rss_rts")

log = get_logger(__name__)


@dataclass(frozen=True)
class ExperimentContext:
    """Knobs shared by all experiments."""

    root_seed: int = 2018
    #: Plaintext samples; None = the paper's count (scaled by env vars).
    samples: Optional[int] = None
    #: Plaintext size in 16-byte lines.
    lines: int = 32
    #: Optional GPU configuration override.
    config: Optional[GPUConfig] = None
    #: Optional observability sink (metrics + event tracing) threaded into
    #: every server the experiment stands up via :func:`collect_records`.
    telemetry: Optional[Telemetry] = None
    #: Per-sample ETA reporting on stderr (also enabled by REPRO_PROGRESS).
    progress: bool = False
    #: Worker processes for sample collection (1 = in-process serial; 0 =
    #: one per CPU). Parallel runs are bit-identical to serial because all
    #: per-sample randomness is derived from (root_seed, stream, sample).
    jobs: int = 1
    #: Collection-engine selection for counts-only phases: True forces the
    #: batched structure-of-arrays core, False forces the per-launch event
    #: path, None (default) resolves via REPRO_BATCHED and then to the
    #: batched core (counts are checksum-identical either way; timed
    #: collection always uses the event engine).
    batched: Optional[bool] = None
    #: Exact-timing engine selection for timed phases: True forces the
    #: wavefront-batched core, False forces the per-event engine, None
    #: (default) resolves via REPRO_BATCHED_TIMING and then to the
    #: batched core. Either way the KernelResult is identical; launches
    #: the core does not cover fall back to the event engine.
    batched_timing: Optional[bool] = None
    #: Optional worker supervision (deadlines, retries, quarantine) — a
    #: ``repro.experiments.runner.SupervisionPolicy``. None (the default)
    #: means unsupervised: failures propagate, nothing is retried, and
    #: collection takes the exact pre-supervision code path.
    supervision: Optional[object] = None
    #: Optional deterministic fault plan (``repro.faults.FaultPlan``) fired
    #: at sample boundaries — testing/chaos only.
    faults: Optional[object] = None
    #: Optional campaign checkpoint store
    #: (``repro.experiments.checkpoint.CheckpointStore``) for --resume.
    checkpoint: Optional[object] = None
    #: Mutable incident ledger (``repro.experiments.runner.CampaignStats``)
    #: the resilient runner reports retries/quarantines into; read by the
    #: CLI after the run for the exit code and the stderr summary.
    campaign: Optional[object] = None
    #: Optional persistent run ledger (``repro.telemetry.journal
    #: .RunJournal``): phase/chunk/engine events append to the campaign
    #: directory's ``events.jsonl``. None (the default) records nothing;
    #: resilient runs fall back to their checkpoint store's journal.
    journal: Optional[object] = None
    #: Optional shard-worker policy (``repro.experiments.shard
    #: .ShardPolicy``) for coordinator-free multi-process draining
    #: (``rcoal shard``). When set (together with ``checkpoint``), every
    #: collection phase routes through the lease-claiming shard loop.
    shard: Optional[object] = None

    def sample_count(self, paper: int = 100, fast: int = 40) -> int:
        if self.samples is not None:
            return self.samples
        return scaled_samples(paper, fast)

    def stream(self, name: str) -> RngStream:
        return RngStream(self.root_seed, name)

    def sample_stream(self, name: str, index: int) -> RngStream:
        """The stream for sample ``index`` of per-sample family ``name``.

        Derived directly from ``(root_seed, name, index)`` rather than by
        advancing one sequential stream, so any worker can reproduce any
        sample's draws without replaying the samples before it — the
        keystone of the parallel runner's bit-identical fan-out.
        """
        return RngStream(self.root_seed, f"{name}#sample{index}")

    def effective_jobs(self) -> int:
        """``jobs`` with 0 resolved to the machine's CPU count."""
        if self.jobs == 0:
            return os.cpu_count() or 1
        return max(1, self.jobs)

    def secret_key(self) -> bytes:
        """The victim's AES key for this experiment run."""
        return bytes(self.stream("key").random_bytes(16))

    def with_(self, **kwargs) -> "ExperimentContext":
        return replace(self, **kwargs)


@dataclass
class ExperimentResult:
    """A regenerated table/figure: headers + rows + commentary."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Tuple]
    notes: List[str] = field(default_factory=list)
    #: Free-form metrics for programmatic consumers (tests, fig17 reuse).
    metrics: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} ==",
                 format_table(self.headers, self.rows)]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)


def victim_stream_name(policy: CoalescingPolicy) -> str:
    """The per-sample stream family the victim draws from under a policy."""
    return f"victim-{policy.describe()}"


def build_server(
    ctx: ExperimentContext,
    policy: CoalescingPolicy,
    counts_only: bool = False,
    retain_kernel_results: bool = False,
    telemetry=None,
) -> EncryptionServer:
    """Stand up the experiment's victim server (shared by serial/parallel).

    The server's instance stream is never consumed during collection —
    every launch passes an explicit per-sample stream — but randomized
    policies still get one so ad-hoc ``encrypt`` calls keep working.
    """
    return EncryptionServer(
        ctx.secret_key(), policy, config=ctx.config,
        rng=(ctx.stream(victim_stream_name(policy))
             if policy.is_randomized else None),
        counts_only=counts_only,
        retain_kernel_results=retain_kernel_results,
        telemetry=telemetry,
        batched_timing=ctx.batched_timing,
    )


def collect_records(
    ctx: ExperimentContext,
    policy: CoalescingPolicy,
    num_samples: int,
    counts_only: bool = False,
    retain_kernel_results: bool = False,
) -> Tuple[EncryptionServer, List[EncryptionRecord]]:
    """Encrypt the experiment's shared plaintext batch under ``policy``.

    The plaintext batch and the key depend only on the context seed, so
    every mechanism in a comparison sees identical inputs; the victim's
    per-launch draws come from a per-(policy, sample) stream derived from
    ``(root_seed, stream name, sample index)``. Because no sample's draws
    depend on the samples before it, a ``ctx.jobs > 1`` context fans the
    batch out across worker processes with bit-identical results.
    """
    if ctx.shard is not None:
        from repro.experiments.shard import collect_records_sharded
        return collect_records_sharded(
            ctx, policy, num_samples,
            counts_only=counts_only,
            retain_kernel_results=retain_kernel_results,
        )
    if (ctx.supervision is not None or ctx.checkpoint is not None
            or ctx.faults is not None):
        from repro.experiments.runner import collect_records_resilient
        return collect_records_resilient(
            ctx, policy, num_samples,
            counts_only=counts_only,
            retain_kernel_results=retain_kernel_results,
        )
    if ctx.effective_jobs() > 1 and num_samples > 1:
        from repro.experiments.runner import collect_records_parallel
        return collect_records_parallel(
            ctx, policy, num_samples,
            counts_only=counts_only,
            retain_kernel_results=retain_kernel_results,
        )
    profiler = (ctx.telemetry.profiler if ctx.telemetry is not None
                and ctx.telemetry.enabled else SpanProfiler.disabled())
    batched = counts_only and batched_mode(ctx.batched)
    journal = label = None
    if ctx.journal is not None and ctx.journal.enabled:
        from repro.experiments.checkpoint import phase_label
        journal = ctx.journal
        label = phase_label(ctx, policy, num_samples, counts_only,
                            retain_kernel_results)
        if counts_only:
            engine = "batched" if batched else "event"
        else:
            engine = ("batched_timing"
                      if batched_timing_mode(ctx.batched_timing)
                      else "event")
        journal.append("phase_start", phase=label,
                       policy=policy.describe(), samples=num_samples,
                       jobs=1, mode="serial", engine=engine,
                       counts_only=counts_only)
        if counts_only:
            journal.append("engine_select", phase=label, engine=engine)
    phase_started = time.perf_counter()
    with profiler.span("serial.workload"):
        plaintexts = random_plaintexts(num_samples, ctx.lines,
                                       ctx.stream("workload"))
    server = build_server(ctx, policy, counts_only=counts_only,
                          retain_kernel_results=retain_kernel_results,
                          telemetry=ctx.telemetry)
    log.info("collecting %d samples under %s%s", num_samples,
             policy.describe(), " (counts only)" if counts_only else "")
    reporter = ProgressReporter(
        num_samples, label=policy.describe(),
        enabled=ctx.progress or env_flag("REPRO_PROGRESS"),
        board=ctx.telemetry.board if ctx.telemetry is not None else None,
    )
    stream_name = victim_stream_name(policy)
    if batched:
        from repro.gpu.batched import BatchedCountsCore
        core = BatchedCountsCore(server)
        with profiler.span("serial.simulate"):
            records = core.encrypt_batch(
                plaintexts,
                [ctx.sample_stream(stream_name, index)
                 for index in range(num_samples)],
                on_record=lambda record: reporter.update(),
            )
        reporter.finish()
    else:
        records = []
        with profiler.span("serial.simulate"):
            for index, plaintext in enumerate(plaintexts):
                records.append(server.encrypt(
                    plaintext, rng=ctx.sample_stream(stream_name, index)
                ))
                reporter.update()
        reporter.finish()
    if journal is not None:
        journal.append(
            "phase_finish", phase=label, samples=num_samples,
            completed=len(records),
            seconds=round(time.perf_counter() - phase_started, 6))
    return server, records


def corresponding_attack(ctx: ExperimentContext, policy_name: str,
                         num_subwarps: int,
                         warp_size: int = 32) -> AccessEstimator:
    """The attack matching a defense (Section IV-E).

    The attacker knows the mechanism and its parameters and mimics it with
    *their own* random draws (independent "attacker" stream). ``baseline``
    and ``nocoal`` victims are attacked with the baseline model.
    """
    model_name = policy_name if policy_name in MECHANISMS else "baseline"
    model = make_policy(model_name, num_subwarps, warp_size)
    rng = (ctx.stream(f"attacker-{model.describe()}")
           if model.is_randomized else None)
    return AccessEstimator(model, rng=rng, warp_size=warp_size)


def run_corresponding_attack(
    ctx: ExperimentContext,
    server: EncryptionServer,
    records: Sequence[EncryptionRecord],
    policy_name: str,
    num_subwarps: int,
    observable: Optional[Sequence[float]] = None,
) -> KeyRecovery:
    """Full 16-byte recovery attempt against collected records.

    ``observable`` defaults to the per-sample last-round execution time
    (the paper's strong attacker); pass e.g. observed last-round access
    counts for the Fig 18 methodology.
    """
    ciphertexts = [r.ciphertext_lines for r in records]
    if observable is None:
        observable = [r.last_round_time for r in records]
    estimator = corresponding_attack(
        ctx, policy_name, num_subwarps, server.gpu.config.warp_size
    )
    attack = CorrelationTimingAttack(estimator)
    return attack.recover_key(ciphertexts, observable,
                              correct_key=server.last_round_key)
