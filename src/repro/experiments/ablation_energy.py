"""Ablation: energy overhead of the defenses.

The paper motivates coalescing with bandwidth *and* energy efficiency and
reports the data-movement increase of each mechanism (Fig 16a). This
ablation runs the GPUWattch-style energy model over the same sweep,
separating dynamic (data-movement-driven) energy from static
(runtime-driven) energy — the two ways a defense costs joules.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.policies import make_policy
from repro.experiments.base import (
    MECHANISMS,
    ExperimentContext,
    ExperimentResult,
    collect_records,
)
from repro.gpu.energy import EnergyModel

__all__ = ["run", "ENERGY_SWEEP"]

ENERGY_SWEEP: Tuple[int, ...] = (2, 8, 32)


def _mean_energy(ctx: ExperimentContext, policy, num_samples: int,
                 model: EnergyModel) -> Tuple[float, float]:
    """Average per-launch (total, dynamic) energy under a policy."""
    _, records = collect_records(ctx, policy, num_samples,
                                 retain_kernel_results=True)
    breakdowns = [model.evaluate(r.kernel_result) for r in records]
    return (
        float(np.mean([b.total_nj for b in breakdowns])),
        float(np.mean([b.dynamic_nj for b in breakdowns])),
    )


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep: Sequence[int] = ENERGY_SWEEP) -> ExperimentResult:
    num_samples = ctx.sample_count(paper=8, fast=4)
    model = EnergyModel()

    base_total, base_dynamic = _mean_energy(
        ctx, make_policy("baseline"), num_samples, model
    )

    rows = []
    metrics = {}
    for m in subwarp_sweep:
        row = [m]
        for mechanism in MECHANISMS:
            total, dynamic = _mean_energy(
                ctx, make_policy(mechanism, m), num_samples, model
            )
            row.append(total / base_total)
            metrics.setdefault(mechanism, {})[m] = {
                "total": total / base_total,
                "dynamic": dynamic / base_dynamic,
            }
        rows.append(tuple(row))

    return ExperimentResult(
        experiment_id="ablation_energy",
        title="Energy overhead of the defenses (normalized to baseline)",
        headers=["num-subwarps"] + [f"energy {m.upper()}"
                                    for m in MECHANISMS],
        rows=rows,
        notes=[
            "dynamic energy tracks the Fig 16a data-movement curves; "
            "static energy tracks Fig 16b execution time — both grow "
            "with num-subwarps, RSS-based mechanisms stay cheapest",
        ],
        metrics=metrics,
    )
