"""Table II: theoretical security analysis, with Monte-Carlo cross-check.

Closed-form rho (exact rational arithmetic, Section V-B) for FSS, FSS+RTS,
and RSS+RTS at N = 32 threads, R = 16 memory blocks, alongside a Monte-Carlo
estimate of the same quantity from simulated victim/attacker draws, and the
normalized samples-to-success S = 1/rho^2.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.analysis.montecarlo import empirical_rho
from repro.analysis.security import security_table
from repro.core.policies import make_policy
from repro.experiments.base import ExperimentContext, ExperimentResult
from repro.utils import scaled_samples

__all__ = ["run", "TABLE2_SWEEP"]

TABLE2_SWEEP: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


def run(ctx: ExperimentContext = ExperimentContext(),
        subwarp_sweep: Sequence[int] = TABLE2_SWEEP) -> ExperimentResult:
    mc_samples = scaled_samples(20000, 4000)
    rows = []
    theory = {r.num_subwarps: r
              for r in security_table(subwarp_counts=subwarp_sweep)}

    for m in subwarp_sweep:
        row = theory[m]
        mc_fss_rts = empirical_rho(
            make_policy("fss_rts", m), 16, mc_samples,
            ctx.stream(f"table2-fssrts-{m}"),
        )
        mc_rss_rts = empirical_rho(
            make_policy("rss_rts", m), 16, mc_samples,
            ctx.stream(f"table2-rssrts-{m}"),
        )
        rows.append((
            m,
            row.rho_fss,
            row.rho_fss_rts, mc_fss_rts,
            row.rho_rss_rts, mc_rss_rts,
            row.s_fss, row.s_fss_rts, row.s_rss_rts,
        ))

    return ExperimentResult(
        experiment_id="table2",
        title="Theoretical security analysis (N=32, R=16)",
        headers=["M", "rho FSS",
                 "rho FSS+RTS", "MC FSS+RTS",
                 "rho RSS+RTS", "MC RSS+RTS",
                 "S FSS", "S FSS+RTS", "S RSS+RTS"],
        rows=rows,
        notes=[
            "paper Table II: rho (FSS+RTS, RSS+RTS) = (0.41, 0.20), "
            "(0.20, 0.15), (0.09, 0.11), (0.03, 0.05) for M = 2, 4, 8, 16; "
            "S = 6/25, 24/42, 115/78, 961/349",
            "MC columns: Monte-Carlo estimate of the same correlation from "
            f"{mc_samples} simulated victim/attacker draws",
        ],
        metrics={"theory": {m: (theory[m].rho_fss, theory[m].rho_fss_rts,
                                theory[m].rho_rss_rts)
                            for m in subwarp_sweep}},
    )
