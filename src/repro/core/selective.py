"""Selective RCoal: randomize only the vulnerable rounds (Section VII).

The paper's first future-work direction: full RCoal randomizes coalescing
for the entire kernel, paying the subwarp overhead on all ten AES rounds
even though the attack reads only the last round. With software identifying
the vulnerable code and hardware able to swap the PRT's sid table between
rounds, the defense can run the efficient single-subwarp mapping everywhere
except the protected rounds.

:class:`SelectiveRCoalPolicy` wraps any base policy and a set of protected
round indices; its draws produce :class:`SelectivePartition` objects whose
``assignment`` is a :class:`~repro.gpu.engine.RoundAwareSidMap` the engine
resolves per instruction. The ablation experiment
(:mod:`repro.experiments.ablation_selective`) quantifies the recovered
performance at unchanged last-round security.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro.aes.key_schedule import NUM_ROUNDS
from repro.core.policies import CoalescingPolicy
from repro.core.subwarp import SubwarpPartition
from repro.errors import ConfigurationError
from repro.gpu.engine import RoundAwareSidMap
from repro.rng import RngStream

__all__ = ["SelectivePartition", "SelectiveRCoalPolicy"]


@dataclass(frozen=True)
class SelectivePartition:
    """A per-launch draw of a selective policy.

    ``protected`` applies during the protected rounds; ``unprotected``
    (the baseline single-subwarp mapping) everywhere else, including
    instructions outside round windows.
    """

    protected: SubwarpPartition
    unprotected: SubwarpPartition
    protected_rounds: FrozenSet[int]

    @property
    def assignment(self) -> RoundAwareSidMap:
        """Engine-consumable sid map (resolved per instruction round)."""
        return RoundAwareSidMap(
            per_round={r: self.protected.assignment
                       for r in self.protected_rounds},
            default=self.unprotected.assignment,
        )

    def assignment_for_round(self, round_index: Optional[int]):
        if round_index in self.protected_rounds:
            return self.protected.assignment
        return self.unprotected.assignment

    @property
    def sizes(self):
        """Sizes of the protected draw (the security-relevant grouping)."""
        return self.protected.sizes


class SelectiveRCoalPolicy(CoalescingPolicy):
    """Apply a base RCoal policy only during the protected rounds.

    Parameters
    ----------
    base:
        Any coalescing policy (FSS/RSS, with or without RTS).
    protected_rounds:
        AES round indices to protect; defaults to the last round only —
        the round the correlation attack reads (Section II-C).
    """

    def __init__(self, base: CoalescingPolicy,
                 protected_rounds: Iterable[int] = (NUM_ROUNDS,)):
        super().__init__(base.num_subwarps, base.warp_size)
        rounds = frozenset(int(r) for r in protected_rounds)
        if not rounds:
            raise ConfigurationError(
                "selective RCoal needs at least one protected round"
            )
        if any(not 1 <= r <= NUM_ROUNDS for r in rounds):
            raise ConfigurationError(
                f"protected rounds must lie in [1, {NUM_ROUNDS}]: "
                f"{sorted(rounds)}"
            )
        self.base = base
        self.protected_rounds = rounds
        self.name = f"selective_{base.name}"

    @property
    def is_randomized(self) -> bool:
        return self.base.is_randomized

    def draw(self, rng: Optional[RngStream] = None) -> SelectivePartition:
        return SelectivePartition(
            protected=self.base.draw(rng),
            unprotected=SubwarpPartition.single(self.warp_size),
            protected_rounds=self.protected_rounds,
        )

    def describe(self) -> str:
        rounds = ",".join(str(r) for r in sorted(self.protected_rounds))
        return f"{self.name}(M={self.num_subwarps}, rounds={rounds})"
