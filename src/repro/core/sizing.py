"""Subwarp sizing schemes (Section IV-A/B, Fig 9).

* :func:`fixed_sizes` — FSS: M equal groups.
* :func:`skewed_sizes` — RSS's preferred distribution: uniform over **all
  compositions** of N into M positive parts ("all possible subwarp size
  combinations equally likely and no subwarp is empty", Section IV-B). Its
  marginals are heavily right-skewed — most parts are small and one part
  tends to be large — which is what improves RSS's performance over FSS.
* :func:`normal_sizes` — RSS's normal variant: sizes drawn from a normal
  distribution centred on N/M, then repaired to a valid partition. The paper
  finds this behaves like FSS and keeps the skewed scheme; both are provided.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.rng import RngStream

__all__ = ["fixed_sizes", "skewed_sizes", "normal_sizes"]


def _check_args(warp_size: int, num_subwarps: int) -> None:
    if warp_size <= 0:
        raise ConfigurationError(f"warp size must be positive: {warp_size}")
    if not 1 <= num_subwarps <= warp_size:
        raise ConfigurationError(
            f"num_subwarps must be in [1, {warp_size}]: {num_subwarps}"
        )


def fixed_sizes(warp_size: int, num_subwarps: int) -> Tuple[int, ...]:
    """FSS sizes: as equal as possible (exactly equal when M divides N)."""
    _check_args(warp_size, num_subwarps)
    base, remainder = divmod(warp_size, num_subwarps)
    return tuple(base + (1 if i < remainder else 0)
                 for i in range(num_subwarps))


def skewed_sizes(warp_size: int, num_subwarps: int,
                 rng: RngStream) -> Tuple[int, ...]:
    """A uniformly random composition of ``warp_size`` into positive parts.

    Sampled by the stars-and-bars bijection: choose ``M-1`` distinct cut
    points among the ``N-1`` gaps between threads. Every composition —
    ordered size vector — is equally likely, so no subwarp is ever empty and
    extreme splits like (1, 1, 1, 29) are as probable as (8, 8, 8, 8).
    """
    _check_args(warp_size, num_subwarps)
    if num_subwarps == 1:
        return (warp_size,)
    cuts = sorted(rng.choice_without_replacement(warp_size - 1,
                                                 num_subwarps - 1) + 1)
    bounds = [0] + [int(c) for c in cuts] + [warp_size]
    return tuple(bounds[i + 1] - bounds[i] for i in range(num_subwarps))


def normal_sizes(warp_size: int, num_subwarps: int, rng: RngStream,
                 std_fraction: float = 0.25) -> Tuple[int, ...]:
    """Sizes from a normal distribution around N/M, repaired to validity.

    Draws M values from Normal(N/M, std_fraction * N/M), rounds them,
    clamps each to at least 1, then redistributes the surplus/deficit one
    thread at a time (taking from the largest / giving to the smallest) so
    the sizes sum to N with no empty subwarp.
    """
    _check_args(warp_size, num_subwarps)
    if num_subwarps == 1:
        return (warp_size,)
    mean = warp_size / num_subwarps
    draws = rng.normal(mean, std_fraction * mean, size=num_subwarps)
    sizes: List[int] = [max(1, int(round(d))) for d in draws]

    # Repair to the exact total, preserving the shape of the draw.
    delta = warp_size - sum(sizes)
    while delta > 0:
        sizes[sizes.index(min(sizes))] += 1
        delta -= 1
    while delta < 0:
        largest = sizes.index(max(sizes))
        if sizes[largest] <= 1:
            raise ConfigurationError(
                "cannot repair normal size draw without emptying a subwarp"
            )
        sizes[largest] -= 1
        delta += 1
    return tuple(sizes)
