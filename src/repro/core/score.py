"""RCoal_Score: the security/performance trade-off metric (Equation 7).

``RCoal_Score = S^a / execution_time^b`` where

* ``S`` is the security strength — the square of the inverse of the average
  attack correlation (proportional to the samples needed for a successful
  attack, Equation 4);
* ``execution_time`` is normalized to the baseline machine;
* exponents ``a`` and ``b`` let a hardware engineer weight security vs
  performance. The paper studies a security-oriented design (a=1, b=1) and a
  performance-oriented design (a=1, b=20).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["security_strength", "rcoal_score"]


def security_strength(average_correlation: float) -> float:
    """S = 1 / rho^2 — proportional to samples needed for a key recovery.

    A zero correlation means the attack never succeeds; ``inf`` is returned.
    """
    if not -1.0 <= average_correlation <= 1.0:
        raise ConfigurationError(
            f"correlation must lie in [-1, 1]: {average_correlation}"
        )
    if average_correlation == 0.0:
        return math.inf
    return 1.0 / (average_correlation ** 2)


def rcoal_score(average_correlation: float, normalized_time: float,
                a: float = 1.0, b: float = 1.0) -> float:
    """Equation 7, from an attack correlation and a normalized exec time."""
    if normalized_time <= 0:
        raise ConfigurationError(
            f"normalized execution time must be positive: {normalized_time}"
        )
    strength = security_strength(average_correlation)
    if math.isinf(strength):
        return math.inf
    return (strength ** a) / (normalized_time ** b)
