"""Thread→subwarp assignment schemes (Section IV-C).

Given subwarp sizes, an assignment decides *which* threads land in each
subwarp:

* :func:`in_order_assignment` — the hardware default: consecutive thread
  blocks ("subwarp-ids are allotted in order", Section IV-D);
* :func:`random_assignment` — RTS: a uniformly random permutation of threads
  over the subwarp slots.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.subwarp import SubwarpPartition
from repro.rng import RngStream

__all__ = ["in_order_assignment", "random_assignment"]


def in_order_assignment(sizes: Sequence[int]) -> SubwarpPartition:
    """Consecutive threads fill subwarp 0, then subwarp 1, and so on."""
    assignment: List[int] = []
    for sid, size in enumerate(sizes):
        assignment.extend([sid] * size)
    return SubwarpPartition(sizes=tuple(sizes), assignment=tuple(assignment))


def random_assignment(sizes: Sequence[int], rng: RngStream
                      ) -> SubwarpPartition:
    """RTS: threads are shuffled uniformly over the subwarp slots."""
    ordered = in_order_assignment(sizes)
    permutation = rng.permutation(ordered.warp_size)
    assignment = [0] * ordered.warp_size
    for slot, tid in enumerate(permutation):
        assignment[int(tid)] = ordered.assignment[slot]
    return SubwarpPartition(sizes=tuple(sizes), assignment=tuple(assignment))
