"""The subwarp partition datatype.

A :class:`SubwarpPartition` is the complete description of how one warp's
threads are grouped for coalescing during one kernel launch: the subwarp
sizes and the thread→subwarp assignment. It is what a coalescing policy
draws and what gets loaded into the PRT's sid fields (Fig 11).

Invariants (enforced at construction, matching Section IV-B's requirement
that "no subwarp is empty"):

* every subwarp size is positive;
* sizes sum to the warp size;
* the assignment maps each thread to a valid subwarp, with exactly
  ``sizes[s]`` threads mapped to subwarp ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

__all__ = ["SubwarpPartition"]


@dataclass(frozen=True)
class SubwarpPartition:
    """An immutable thread→subwarp grouping for one warp."""

    #: Number of threads in each subwarp; ``len(sizes)`` is num_subwarps.
    sizes: Tuple[int, ...]
    #: ``assignment[tid]`` is the subwarp id (sid) of thread ``tid``.
    assignment: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ConfigurationError("a partition needs at least one subwarp")
        if any(size <= 0 for size in self.sizes):
            raise ConfigurationError(
                f"subwarp sizes must be positive: {self.sizes}"
            )
        if sum(self.sizes) != len(self.assignment):
            raise ConfigurationError(
                f"sizes sum to {sum(self.sizes)} but assignment covers "
                f"{len(self.assignment)} threads"
            )
        counts: Dict[int, int] = {}
        for sid in self.assignment:
            if not 0 <= sid < len(self.sizes):
                raise ConfigurationError(f"invalid subwarp id {sid}")
            counts[sid] = counts.get(sid, 0) + 1
        for sid, size in enumerate(self.sizes):
            if counts.get(sid, 0) != size:
                raise ConfigurationError(
                    f"subwarp {sid} declared size {size} but "
                    f"{counts.get(sid, 0)} threads are assigned to it"
                )

    @property
    def num_subwarps(self) -> int:
        return len(self.sizes)

    @property
    def warp_size(self) -> int:
        return len(self.assignment)

    def threads_of(self, sid: int) -> Tuple[int, ...]:
        """The thread ids belonging to subwarp ``sid``, in thread order."""
        return tuple(tid for tid, s in enumerate(self.assignment) if s == sid)

    def groups(self) -> List[Tuple[int, ...]]:
        """All subwarps as thread-id tuples, ordered by sid."""
        return [self.threads_of(sid) for sid in range(self.num_subwarps)]

    @staticmethod
    def single(warp_size: int) -> "SubwarpPartition":
        """The baseline machine: one subwarp holding the whole warp."""
        return SubwarpPartition(
            sizes=(warp_size,), assignment=(0,) * warp_size
        )

    @staticmethod
    def per_thread(warp_size: int) -> "SubwarpPartition":
        """Coalescing effectively disabled: one subwarp per thread."""
        return SubwarpPartition(
            sizes=(1,) * warp_size,
            assignment=tuple(range(warp_size)),
        )
