"""Coalescing policies: the six machine configurations of the paper.

A policy encapsulates one choice along the RCoal design axes and produces,
per warp per kernel launch, the :class:`~repro.core.subwarp.SubwarpPartition`
that the hardware loads into its PRT sid fields:

====================  ===========================  =======================
name                  sizing                       assignment
====================  ===========================  =======================
``baseline``          one subwarp (M = 1)          in order
``nocoal``            one subwarp per thread       in order
``fss``               M equal groups               in order
``fss_rts``           M equal groups               random (RTS)
``rss``               random composition (skewed)  in order
``rss_rts``           random composition (skewed)  random (RTS)
====================  ===========================  =======================

Randomized policies draw fresh sizes/assignments per launch — the paper's
"set at the beginning of the application execution" — from the RNG stream
passed in by the caller, which the encryption server keeps separate from any
attacker stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

from repro.core.assignment import in_order_assignment, random_assignment
from repro.core.sizing import fixed_sizes, normal_sizes, skewed_sizes
from repro.core.subwarp import SubwarpPartition
from repro.errors import ConfigurationError
from repro.rng import RngStream

__all__ = [
    "CoalescingPolicy",
    "BaselinePolicy",
    "NoCoalescingPolicy",
    "FSSPolicy",
    "RSSPolicy",
    "make_policy",
    "POLICY_NAMES",
]


class CoalescingPolicy(ABC):
    """Produces per-launch subwarp partitions for warps."""

    #: Short machine-readable policy name ("fss_rts", ...).
    name: str = "abstract"

    def __init__(self, num_subwarps: int, warp_size: int = 32):
        if not 1 <= num_subwarps <= warp_size:
            raise ConfigurationError(
                f"num_subwarps must be in [1, {warp_size}]: {num_subwarps}"
            )
        self.num_subwarps = num_subwarps
        self.warp_size = warp_size

    @property
    def is_randomized(self) -> bool:
        """True when draws differ between launches (needs an RNG)."""
        return True

    @abstractmethod
    def draw(self, rng: Optional[RngStream]) -> SubwarpPartition:
        """Draw the partition used for one warp in one kernel launch."""

    def sid_map(self, rng: Optional[RngStream]) -> Tuple[int, ...]:
        """Convenience: the per-thread sid vector of a fresh draw."""
        return self.draw(rng).assignment

    def describe(self) -> str:
        return f"{self.name}(M={self.num_subwarps})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


class BaselinePolicy(CoalescingPolicy):
    """The unprotected machine: the whole warp is one subwarp."""

    name = "baseline"

    def __init__(self, num_subwarps: int = 1, warp_size: int = 32):
        if num_subwarps != 1:
            raise ConfigurationError("the baseline has exactly one subwarp")
        super().__init__(1, warp_size)

    @property
    def is_randomized(self) -> bool:
        return False

    def draw(self, rng: Optional[RngStream] = None) -> SubwarpPartition:
        return SubwarpPartition.single(self.warp_size)


class NoCoalescingPolicy(CoalescingPolicy):
    """Coalescing disabled: every thread is its own subwarp (Section III)."""

    name = "nocoal"

    def __init__(self, num_subwarps: Optional[int] = None, warp_size: int = 32):
        if num_subwarps is not None and num_subwarps != warp_size:
            raise ConfigurationError(
                "disabling coalescing means one subwarp per thread"
            )
        super().__init__(warp_size, warp_size)

    @property
    def is_randomized(self) -> bool:
        return False

    def draw(self, rng: Optional[RngStream] = None) -> SubwarpPartition:
        return SubwarpPartition.per_thread(self.warp_size)


class FSSPolicy(CoalescingPolicy):
    """Fixed-sized subwarps, optionally with random threading (RTS)."""

    def __init__(self, num_subwarps: int, warp_size: int = 32,
                 rts: bool = False):
        super().__init__(num_subwarps, warp_size)
        self.rts = rts
        self.name = "fss_rts" if rts else "fss"

    @property
    def is_randomized(self) -> bool:
        return self.rts

    def draw(self, rng: Optional[RngStream] = None) -> SubwarpPartition:
        sizes = fixed_sizes(self.warp_size, self.num_subwarps)
        if not self.rts:
            return in_order_assignment(sizes)
        if rng is None:
            raise ConfigurationError("FSS+RTS draws require an RNG stream")
        return random_assignment(sizes, rng)


class RSSPolicy(CoalescingPolicy):
    """Random-sized subwarps, optionally with random threading (RTS)."""

    def __init__(self, num_subwarps: int, warp_size: int = 32,
                 rts: bool = False, distribution: str = "skewed"):
        super().__init__(num_subwarps, warp_size)
        if distribution not in ("skewed", "normal"):
            raise ConfigurationError(
                f"unknown RSS size distribution: {distribution!r}"
            )
        self.rts = rts
        self.distribution = distribution
        self.name = "rss_rts" if rts else "rss"

    def draw(self, rng: Optional[RngStream] = None) -> SubwarpPartition:
        if rng is None:
            raise ConfigurationError("RSS draws require an RNG stream")
        if self.distribution == "skewed":
            sizes = skewed_sizes(self.warp_size, self.num_subwarps, rng)
        else:
            sizes = normal_sizes(self.warp_size, self.num_subwarps, rng)
        if self.rts:
            return random_assignment(sizes, rng)
        return in_order_assignment(sizes)

    def describe(self) -> str:
        return f"{self.name}(M={self.num_subwarps}, {self.distribution})"


#: All policy names accepted by :func:`make_policy`, in paper order.
POLICY_NAMES: Tuple[str, ...] = (
    "baseline", "nocoal", "fss", "fss_rts", "rss", "rss_rts",
)


def make_policy(name: str, num_subwarps: int = 1, warp_size: int = 32,
                **kwargs) -> CoalescingPolicy:
    """Build a policy by name (see module docstring for the table)."""
    factories: Dict[str, object] = {
        "baseline": lambda: BaselinePolicy(warp_size=warp_size),
        "nocoal": lambda: NoCoalescingPolicy(warp_size=warp_size),
        "fss": lambda: FSSPolicy(num_subwarps, warp_size, rts=False),
        "fss_rts": lambda: FSSPolicy(num_subwarps, warp_size, rts=True),
        "rss": lambda: RSSPolicy(num_subwarps, warp_size, rts=False,
                                 **kwargs),
        "rss_rts": lambda: RSSPolicy(num_subwarps, warp_size, rts=True,
                                     **kwargs),
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
        ) from None
    return factory()  # type: ignore[operator]
