"""RCoalGPU: a GPU simulator with a coalescing policy attached.

This is the integration point between the contribution and the substrate:
at each kernel launch the policy draws one subwarp partition per warp (the
hardware sets the PRT sid fields once per launch, Fig 11), and the
discrete-event engine executes the launch with those maps.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.policies import CoalescingPolicy
from repro.core.subwarp import SubwarpPartition
from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.gpu.engine import GPUSimulator, KernelResult
from repro.gpu.warp import WarpProgram
from repro.rng import RngStream

__all__ = ["RCoalGPU", "LaunchOutcome"]


class LaunchOutcome:
    """A kernel result plus the partitions the policy drew for it."""

    def __init__(self, result: KernelResult,
                 partitions: Dict[int, SubwarpPartition]):
        self.result = result
        self.partitions = partitions


class RCoalGPU:
    """A simulated GPU protected by an RCoal coalescing policy.

    Parameters
    ----------
    policy:
        The coalescing policy (defense mechanism) the hardware implements.
    config:
        Machine description; defaults to the paper's Table I machine.
    """

    def __init__(self, policy: CoalescingPolicy,
                 config: Optional[GPUConfig] = None,
                 address_map=None, telemetry=None,
                 batched_timing=None):
        self.policy = policy
        self.simulator = GPUSimulator(config, address_map=address_map,
                                      telemetry=telemetry,
                                      batched_timing=batched_timing)
        if policy.warp_size != self.simulator.config.warp_size:
            raise ConfigurationError(
                f"policy warp size {policy.warp_size} != machine warp size "
                f"{self.simulator.config.warp_size}"
            )

    @property
    def config(self) -> GPUConfig:
        return self.simulator.config

    @property
    def telemetry(self):
        """The simulator's telemetry sink (the disabled null object when
        uninstrumented); the counts-only fast path records through it."""
        return self.simulator.telemetry

    @property
    def address_map(self):
        return self.simulator.address_map

    def draw_partitions(self, warp_ids: Sequence[int],
                        rng: Optional[RngStream]
                        ) -> Dict[int, SubwarpPartition]:
        """Draw one subwarp partition per warp for a launch."""
        return {warp_id: self.policy.draw(rng) for warp_id in warp_ids}

    def launch(self, programs: Sequence[WarpProgram],
               rng: Optional[RngStream] = None) -> LaunchOutcome:
        """Run one kernel launch under the policy.

        ``rng`` is the *victim's* random stream; randomized policies draw
        their per-launch partitions from it.
        """
        partitions = self.draw_partitions(
            [p.warp_id for p in programs], rng
        )
        sid_maps = {warp_id: partition.assignment
                    for warp_id, partition in partitions.items()}
        result = self.simulator.run(programs, sid_maps)
        return LaunchOutcome(result, partitions)
