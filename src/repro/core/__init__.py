"""RCoal — the paper's contribution: randomized subwarp coalescing.

Three composable randomization axes (Section IV):

* **FSS** (fixed-sized subwarps) — coalesce in M equal groups, M secret;
* **RSS** (random-sized subwarps) — per-launch random group sizes, drawn
  from the skewed distribution (uniform over all compositions of the warp
  into M non-empty parts) or the normal variant of Fig 9;
* **RTS** (random-threaded subwarps) — random thread→subwarp assignment,
  composable with either sizing scheme.

A :class:`~repro.core.policies.CoalescingPolicy` turns an axis combination
into the per-thread subwarp-id map the hardware (Fig 11) loads at kernel
launch; :class:`~repro.core.rcoal.RCoalGPU` wires a policy into the GPU
simulator. :func:`~repro.core.score.rcoal_score` implements the paper's
security/performance trade-off metric (Equation 7).
"""

from repro.core.assignment import in_order_assignment, random_assignment
from repro.core.policies import (
    BaselinePolicy,
    CoalescingPolicy,
    FSSPolicy,
    NoCoalescingPolicy,
    RSSPolicy,
    make_policy,
    POLICY_NAMES,
)
from repro.core.rcoal import RCoalGPU
from repro.core.score import rcoal_score, security_strength
from repro.core.selective import SelectivePartition, SelectiveRCoalPolicy
from repro.core.sizing import fixed_sizes, normal_sizes, skewed_sizes
from repro.core.subwarp import SubwarpPartition

__all__ = [
    "SubwarpPartition",
    "fixed_sizes",
    "skewed_sizes",
    "normal_sizes",
    "in_order_assignment",
    "random_assignment",
    "CoalescingPolicy",
    "BaselinePolicy",
    "NoCoalescingPolicy",
    "FSSPolicy",
    "RSSPolicy",
    "make_policy",
    "POLICY_NAMES",
    "RCoalGPU",
    "rcoal_score",
    "security_strength",
    "SelectiveRCoalPolicy",
    "SelectivePartition",
]
