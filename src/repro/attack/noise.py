"""Measurement-noise modelling for the remote attacker.

Section II-C assumes a strong attacker reading the clean last-round time;
Section V-C notes the realistic attacker sees the noisy *total* time and
needs far more samples (Jiang et al. used one million on real hardware).
This module bridges the two: inject calibrated Gaussian noise into an
observable and predict/measure the resulting sample-count inflation.

The attenuation is textbook: adding independent noise of variance
``sigma_n^2`` to an observable with signal variance ``sigma_s^2`` scales
any correlation by ``sqrt(sigma_s^2 / (sigma_s^2 + sigma_n^2))``, and the
required samples by the inverse square (Eq 4).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import AttackError
from repro.rng import RngStream

__all__ = [
    "add_gaussian_noise",
    "correlation_attenuation",
    "sample_inflation",
]


def add_gaussian_noise(observable: Sequence[float], noise_ratio: float,
                       rng: RngStream) -> np.ndarray:
    """The observable plus Gaussian noise of ``noise_ratio`` times its
    standard deviation (noise_ratio 0 = clean channel)."""
    if noise_ratio < 0:
        raise AttackError(f"noise ratio must be >= 0: {noise_ratio}")
    values = np.asarray(observable, dtype=np.float64)
    if values.size < 2:
        raise AttackError("need at least two observations")
    sigma = float(values.std())
    if noise_ratio == 0 or sigma == 0:
        return values.copy()
    return values + rng.normal(0.0, noise_ratio * sigma, size=values.size)


def correlation_attenuation(noise_ratio: float) -> float:
    """Factor by which noise of ``noise_ratio`` x signal-sigma scales any
    correlation against the observable: 1 / sqrt(1 + ratio^2)."""
    if noise_ratio < 0:
        raise AttackError(f"noise ratio must be >= 0: {noise_ratio}")
    return 1.0 / math.sqrt(1.0 + noise_ratio * noise_ratio)


def sample_inflation(noise_ratio: float) -> float:
    """Multiplier on the samples needed for success (Eq 4 with the
    attenuated correlation): 1 + ratio^2."""
    attenuated = correlation_attenuation(noise_ratio)
    return 1.0 / (attenuated * attenuated)
