"""Algorithm 1 of the paper, implemented verbatim.

The FSS attack's per-sample access computation: for a guessed value of the
j-th last-round key byte and a known ``num_subwarps``, partition the
plaintext lines into consecutive groups, histogram each group's memory
blocks (``T4^-1[cipher ^ k] >> 4``), and sum the non-empty block counts over
groups.

This is kept as a faithful, loop-level transcription so the vectorized
:class:`~repro.attack.estimator.AccessEstimator` (with an FSS model policy)
can be property-tested against it.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.aes.sbox import INV_SBOX
from repro.aes.tables import NUM_TABLE_BLOCKS
from repro.errors import ConfigurationError

__all__ = ["fss_attack_last_round_accesses"]


def fss_attack_last_round_accesses(
    cipher_lines: Sequence[bytes],
    byte_index: int,
    guess: int,
    num_subwarps: int,
) -> int:
    """Last-round coalesced accesses per Algorithm 1.

    Parameters
    ----------
    cipher_lines:
        The ciphertext lines of one plaintext sample (Algorithm 1's
        ``cipher``; ``LEN = len(cipher_lines)``).
    byte_index:
        The targeted key byte ``j``.
    guess:
        The guessed key-byte value ``k_j``.
    num_subwarps:
        The (known or guessed) number of subwarps.
    """
    total_lines = len(cipher_lines)
    if total_lines == 0:
        raise ConfigurationError("Algorithm 1 needs at least one line")
    if num_subwarps < 1 or num_subwarps > total_lines:
        raise ConfigurationError(
            f"num_subwarps must be in [1, {total_lines}]: {num_subwarps}"
        )
    if total_lines % num_subwarps != 0:
        raise ConfigurationError(
            "Algorithm 1 assumes num_subwarps divides the line count"
        )
    if not 0 <= guess < 256:
        raise ConfigurationError(f"guess must be a byte value: {guess}")

    mem_accesses_subwarp: List[int] = [0] * num_subwarps
    lines_per_group = total_lines // num_subwarps

    for grp in range(num_subwarps):
        holder = [0] * NUM_TABLE_BLOCKS
        for line in range(grp * lines_per_group, (grp + 1) * lines_per_group):
            index = INV_SBOX[cipher_lines[line][byte_index] ^ guess]
            holder[index >> 4] += 1
        for block in range(NUM_TABLE_BLOCKS):
            if holder[block] != 0:
                mem_accesses_subwarp[grp] += 1

    last_round_mem_accesses = 0
    for grp in range(num_subwarps):
        if mem_accesses_subwarp[grp] != 0:
            last_round_mem_accesses += mem_accesses_subwarp[grp]
    return last_round_mem_accesses
