"""Samples-to-success estimation (Equation 4).

How many timing samples does a correlation attack need to succeed with
probability ``alpha``, given the achievable correlation ``rho``? The paper
follows Mangard's derivation:

    S = 3 + 8 * (Z_alpha / ln((1 + rho) / (1 - rho)))^2  ~=  2 Z_alpha^2 / rho^2

With alpha = 0.99, ``2 Z^2`` is ~10.8 ("approximately 11" in the paper).
"""

from __future__ import annotations

import math

from scipy.stats import norm

from repro.errors import AnalysisError

__all__ = ["z_quantile", "samples_needed", "samples_needed_exact"]


def z_quantile(alpha: float) -> float:
    """Standard-normal quantile of the attack success probability."""
    if not 0.0 < alpha < 1.0:
        raise AnalysisError(f"alpha must be in (0, 1): {alpha}")
    return float(norm.ppf(alpha))


def samples_needed(rho: float, alpha: float = 0.99) -> float:
    """The approximation 2 * Z_alpha^2 / rho^2 (right side of Eq 4)."""
    if not -1.0 <= rho <= 1.0:
        raise AnalysisError(f"correlation must be in [-1, 1]: {rho}")
    if rho == 0.0:
        return math.inf
    z = z_quantile(alpha)
    return 2.0 * z * z / (rho * rho)


def samples_needed_exact(rho: float, alpha: float = 0.99) -> float:
    """The full Fisher-transform expression (left side of Eq 4)."""
    if not -1.0 <= rho <= 1.0:
        raise AnalysisError(f"correlation must be in [-1, 1]: {rho}")
    if abs(rho) >= 1.0:
        return 3.0  # perfect correlation: the minimum the formula allows
    if rho == 0.0:
        return math.inf
    z = z_quantile(alpha)
    fisher = math.log((1.0 + rho) / (1.0 - rho))
    return 3.0 + 8.0 * (z / fisher) ** 2
