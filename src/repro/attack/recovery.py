"""Key recovery: correlating guessed accesses with observed timing.

Implements Fig 4's second step and the paper's success metrics. For each
last-round key byte, the attack builds the 256 x N access matrix (via an
:class:`~repro.attack.estimator.AccessEstimator`), correlates each row with
the observable (last-round execution time, or observed last-round access
counts in the Fig 18 methodology), and declares the argmax row the key byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.attack.correlation import rowwise_pearson
from repro.attack.estimator import AccessEstimator
from repro.errors import ConfigurationError

__all__ = ["ByteRecovery", "KeyRecovery", "CorrelationTimingAttack"]

KEY_BYTES = 16


@dataclass
class ByteRecovery:
    """Outcome of attacking one last-round key byte."""

    byte_index: int
    #: Pearson correlation of each of the 256 guesses with the observable.
    correlations: np.ndarray
    #: The attack's answer: the guess with maximum correlation.
    best_guess: int
    #: Ground truth (for evaluation; the real attacker does not know it).
    correct_value: Optional[int] = None

    @property
    def succeeded(self) -> bool:
        if self.correct_value is None:
            raise ConfigurationError("no ground truth recorded")
        return self.best_guess == self.correct_value

    @property
    def correct_correlation(self) -> float:
        """Correlation achieved by the *correct* guess (Figs 7b/15/18a)."""
        if self.correct_value is None:
            raise ConfigurationError("no ground truth recorded")
        return float(self.correlations[self.correct_value])

    @property
    def correct_rank(self) -> int:
        """Rank (0 = best) of the correct guess among all 256."""
        if self.correct_value is None:
            raise ConfigurationError("no ground truth recorded")
        order = np.argsort(-self.correlations, kind="stable")
        return int(np.nonzero(order == self.correct_value)[0][0])

    @property
    def margin(self) -> float:
        """Correct guess's correlation minus the best wrong guess's."""
        if self.correct_value is None:
            raise ConfigurationError("no ground truth recorded")
        others = np.delete(self.correlations, self.correct_value)
        return float(self.correlations[self.correct_value] - others.max())


@dataclass
class KeyRecovery:
    """Outcome of attacking all 16 last-round key bytes."""

    bytes_: List[ByteRecovery]

    @property
    def recovered_key(self) -> bytes:
        """The attacker's full last-round key answer."""
        return bytes(b.best_guess for b in self.bytes_)

    @property
    def num_correct(self) -> int:
        return sum(1 for b in self.bytes_ if b.succeeded)

    @property
    def success(self) -> bool:
        """True when all 16 bytes were recovered."""
        return self.num_correct == KEY_BYTES

    @property
    def average_correct_correlation(self) -> float:
        """Average of the correct-guess correlations across bytes.

        This is the security metric plotted in Figs 7b, 15, and 18a.
        """
        return float(np.mean([b.correct_correlation for b in self.bytes_]))

    @property
    def average_rank(self) -> float:
        return float(np.mean([b.correct_rank for b in self.bytes_]))


class CorrelationTimingAttack:
    """The full correlation timing attack for a given machine model.

    Parameters
    ----------
    estimator:
        Access estimator embodying the attacker's model of the defense
        (baseline / FSS / FSS+RTS / RSS / RSS+RTS mimicry).
    """

    def __init__(self, estimator: AccessEstimator):
        self.estimator = estimator

    def recover_byte(
        self,
        ciphertexts: Sequence[Sequence[bytes]],
        observable: Sequence[float],
        byte_index: int,
        correct_value: Optional[int] = None,
    ) -> ByteRecovery:
        """Attack one key byte given per-sample observables."""
        matrix = self.estimator.access_matrix(ciphertexts, byte_index)
        correlations = rowwise_pearson(matrix, observable)
        best_guess = int(np.argmax(correlations))
        return ByteRecovery(
            byte_index=byte_index,
            correlations=correlations,
            best_guess=best_guess,
            correct_value=correct_value,
        )

    def recover_key(
        self,
        ciphertexts: Sequence[Sequence[bytes]],
        observable,
        correct_key: Optional[bytes] = None,
    ) -> KeyRecovery:
        """Attack all 16 last-round key bytes.

        ``observable`` is either one per-sample vector of shape
        ``(num_samples,)`` shared by every byte (e.g. last-round execution
        time), or a ``(16, num_samples)`` array with one observable row per
        byte position (e.g. per-instruction access counts, the Fig 18a
        methodology).

        The estimator's model draws are prepared once and shared across
        bytes, mirroring an attacker running one modelling pass per sample.
        """
        if correct_key is not None and len(correct_key) != KEY_BYTES:
            raise ConfigurationError(
                f"ground-truth key must be {KEY_BYTES} bytes"
            )
        observable = np.asarray(observable, dtype=np.float64)
        if observable.ndim == 2 and observable.shape[0] != KEY_BYTES:
            raise ConfigurationError(
                f"per-byte observables need {KEY_BYTES} rows, got "
                f"{observable.shape[0]}"
            )
        self.estimator.prepare(ciphertexts)
        recoveries = []
        for byte_index in range(KEY_BYTES):
            correct = (correct_key[byte_index]
                       if correct_key is not None else None)
            row = (observable[byte_index] if observable.ndim == 2
                   else observable)
            recoveries.append(self.recover_byte(
                ciphertexts, row, byte_index, correct
            ))
        return KeyRecovery(recoveries)
