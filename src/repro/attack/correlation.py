"""Pearson correlation utilities.

The attack's decision statistic is the Pearson correlation between a
guess's estimated access counts and the measured execution times across
plaintext samples. Degenerate inputs (zero variance on either side —
e.g. the M = 32 machine, where every sample generates exactly 32 accesses)
are defined to have correlation 0, matching the paper's reading that the
correlation "drops to 0".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InsufficientSamplesError

__all__ = ["pearson", "rowwise_pearson"]


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation of two equal-length sample vectors."""
    xs = np.asarray(x, dtype=np.float64)
    ys = np.asarray(y, dtype=np.float64)
    if xs.shape != ys.shape:
        raise InsufficientSamplesError(
            f"sample vectors differ in shape: {xs.shape} vs {ys.shape}"
        )
    if xs.size < 2:
        raise InsufficientSamplesError(
            f"need at least 2 samples, got {xs.size}"
        )
    xc = xs - xs.mean()
    yc = ys - ys.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0.0:
        return 0.0
    return float((xc * yc).sum() / denom)


def rowwise_pearson(matrix: np.ndarray, y: Sequence[float]) -> np.ndarray:
    """Pearson correlation of each matrix row against ``y``.

    ``matrix`` has shape (guesses, samples); the result has shape
    (guesses,). Rows (or ``y``) with zero variance yield correlation 0.
    """
    m = np.asarray(matrix, dtype=np.float64)
    ys = np.asarray(y, dtype=np.float64)
    if m.ndim != 2:
        raise InsufficientSamplesError("matrix must be 2-D (guesses x samples)")
    if m.shape[1] != ys.shape[0]:
        raise InsufficientSamplesError(
            f"matrix has {m.shape[1]} samples but y has {ys.shape[0]}"
        )
    if m.shape[1] < 2:
        raise InsufficientSamplesError(
            f"need at least 2 samples, got {m.shape[1]}"
        )
    mc = m - m.mean(axis=1, keepdims=True)
    yc = ys - ys.mean()
    y_norm = np.sqrt((yc * yc).sum())
    row_norms = np.sqrt((mc * mc).sum(axis=1))
    denom = row_norms * y_norm
    numer = mc @ yc
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.where(denom > 0, numer / np.where(denom == 0, 1, denom), 0.0)
    return corr
