"""The attacker's coalesced-access estimator.

This generalizes Fig 4's first step to every defense. For key byte ``j``
and guess ``m``, the table-lookup index of each thread (line) is
``t = InvSBox[c_j ^ m]`` (Equation 3) and its memory block is ``t >> 4``.
The attacker then *models the machine* to turn per-thread blocks into an
access count: threads are grouped per warp into subwarps according to the
attacker's **model policy** — exactly one subwarp for the baseline attack,
the known in-order partition for the FSS attack, or freshly drawn
RSS-sizes/RTS-permutations for the corresponding attacks of Section IV-E —
and each subwarp contributes its number of distinct blocks.

One model draw is made per plaintext sample per warp (mirroring the
victim's per-launch draw) and shared across all 256 guesses and 16 byte
positions: redrawing per guess would only add attacker-side noise without
information.

The hot path is fully vectorized with no per-guess sorting: group
membership is fixed once per batch (``prepare`` sorts lines by group and
records run boundaries), so every guess only needs a gather through the
inverse S-box, one OR-``reduceat`` per group to build a per-group bitmask
of touched blocks, and a popcount table lookup — batched across all 256
guesses at once.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.aes.sbox import INV_SBOX
from repro.aes.tables import ENTRIES_PER_BLOCK, NUM_TABLE_BLOCKS
from repro.core.policies import CoalescingPolicy
from repro.errors import ConfigurationError
from repro.rng import RngStream

__all__ = ["AccessEstimator"]

_INV_SBOX_ARR = np.array(INV_SBOX, dtype=np.uint8)
_BLOCK_SHIFT = ENTRIES_PER_BLOCK.bit_length() - 1  # 16 entries -> shift 4

#: bit b set in a group's mask <=> the group touched table block b.
_BLOCK_BIT = np.left_shift(1, np.arange(NUM_TABLE_BLOCKS), dtype=np.int32)


def _popcount_table(num_bits: int) -> np.ndarray:
    table = np.array([0], dtype=np.uint8)
    for _ in range(num_bits):
        table = np.concatenate([table, table + 1])
    return table


_POPCOUNT = _popcount_table(NUM_TABLE_BLOCKS)


class AccessEstimator:
    """Estimates last-round coalesced accesses for all key-byte guesses.

    Parameters
    ----------
    model_policy:
        The attacker's model of the machine's coalescing behaviour.
    rng:
        The *attacker's* random stream, used when the model policy is
        randomized (RSS/RTS mimicry). Independent of the victim's stream.
    warp_size:
        Threads per warp.
    """

    def __init__(self, model_policy: CoalescingPolicy,
                 rng: Optional[RngStream] = None, warp_size: int = 32):
        if model_policy.is_randomized and rng is None:
            raise ConfigurationError(
                f"model policy {model_policy.describe()} is randomized; "
                "the attacker needs their own RNG stream"
            )
        self.model_policy = model_policy
        self.warp_size = warp_size
        self._rng = rng
        self._labels: Optional[np.ndarray] = None
        self._num_samples = 0
        self._num_lines = 0
        self._order: Optional[np.ndarray] = None
        self._run_starts: Optional[np.ndarray] = None
        self._sample_starts: Optional[np.ndarray] = None

    # -- sample registration ----------------------------------------------

    def prepare(self, ciphertexts: Sequence[Sequence[bytes]]) -> None:
        """Fix the attacker's model draws for a batch of samples.

        ``ciphertexts[n]`` is the list of 16-byte ciphertext lines of sample
        ``n``. This precomputes one group label per (sample, line): the
        label encodes (sample, warp, modelled subwarp id) so that distinct
        (label, block) pairs are exactly the modelled coalesced accesses.
        """
        if not ciphertexts:
            raise ConfigurationError("no samples to prepare")
        num_lines = len(ciphertexts[0])
        if num_lines == 0:
            raise ConfigurationError("samples must contain at least one line")
        if any(len(sample) != num_lines for sample in ciphertexts):
            raise ConfigurationError("samples must all have the same length")

        num_warps = (num_lines + self.warp_size - 1) // self.warp_size
        group_stride = num_warps * self.warp_size  # >= warps * max subwarps
        labels = np.empty((len(ciphertexts), num_lines), dtype=np.int64)
        for n in range(len(ciphertexts)):
            for w in range(num_warps):
                partition = self.model_policy.draw(self._rng)
                start = w * self.warp_size
                stop = min(start + self.warp_size, num_lines)
                for line in range(start, stop):
                    sid = partition.assignment[line - start]
                    labels[n, line] = (
                        n * group_stride + w * self.warp_size + sid
                    )
        self._labels = labels
        self._num_samples = len(ciphertexts)
        self._num_lines = num_lines
        self._group_stride = group_stride

        # Group membership is guess-independent, so the expensive part of
        # distinct-(group, block) counting — bringing each group's lines
        # together — happens once here, not per guess: lines sorted by
        # label, the start of each label run, and the start of each
        # sample's run of runs (labels are sample-major by construction).
        flat_labels = labels.reshape(-1)
        order = np.argsort(flat_labels, kind="stable")
        sorted_labels = flat_labels[order]
        boundary = np.empty(sorted_labels.shape, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_labels[1:], sorted_labels[:-1],
                     out=boundary[1:])
        run_starts = np.flatnonzero(boundary)
        run_samples = sorted_labels[run_starts] // group_stride
        sample_boundary = np.empty(run_samples.shape, dtype=bool)
        sample_boundary[0] = True
        np.not_equal(run_samples[1:], run_samples[:-1],
                     out=sample_boundary[1:])
        self._order = order
        self._run_starts = run_starts
        self._sample_starts = np.flatnonzero(sample_boundary)

    def reset(self) -> None:
        """Forget the prepared batch (e.g. before attacking a new or
        truncated sample set). Randomized models will draw fresh
        partitions on the next :meth:`prepare`."""
        self._labels = None
        self._num_samples = 0
        self._num_lines = 0
        self._order = None
        self._run_starts = None
        self._sample_starts = None

    # -- estimation -----------------------------------------------------------

    def access_matrix(self, ciphertexts: Sequence[Sequence[bytes]],
                      byte_index: int) -> np.ndarray:
        """Fig 4b's memory access matrix for one key byte.

        Returns an array of shape (256, num_samples): entry ``[m, n]`` is
        the modelled number of last-round coalesced accesses that byte
        ``byte_index``'s T4 load generates for sample ``n`` if the key byte
        were ``m``. Call :meth:`prepare` first (or this method will, using
        the given ciphertexts).
        """
        if not 0 <= byte_index < 16:
            raise ConfigurationError(
                f"key byte index must be in [0, 16): {byte_index}"
            )
        if self._labels is None:
            self.prepare(ciphertexts)
        assert self._labels is not None
        if (len(ciphertexts) != self._num_samples
                or len(ciphertexts[0]) != self._num_lines):
            raise ConfigurationError(
                "ciphertexts do not match the prepared batch; call prepare()"
            )

        cipher_bytes = np.empty((self._num_samples, self._num_lines),
                                dtype=np.uint8)
        for n, sample in enumerate(ciphertexts):
            for line, block in enumerate(sample):
                cipher_bytes[n, line] = block[byte_index]

        # Gather once into group-sorted order; then per guess the distinct
        # blocks of a group are the set bits of an OR over its run. Guesses
        # are processed in chunks to bound the (guesses x lines) working
        # set for large batches.
        cb_sorted = cipher_bytes.reshape(-1)[self._order]
        matrix = np.empty((256, self._num_samples), dtype=np.int32)
        guesses = np.arange(256, dtype=np.uint8)
        chunk = max(1, (1 << 24) // max(1, cb_sorted.size))
        for g0 in range(0, 256, chunk):
            gs = guesses[g0:g0 + chunk]
            indices = _INV_SBOX_ARR[cb_sorted[None, :] ^ gs[:, None]]
            bits = _BLOCK_BIT[indices >> _BLOCK_SHIFT]
            masks = np.bitwise_or.reduceat(bits, self._run_starts, axis=1)
            counts = _POPCOUNT[masks].astype(np.int32, copy=False)
            matrix[g0:g0 + chunk] = np.add.reduceat(
                counts, self._sample_starts, axis=1)
        return matrix

    def estimate_sample(self, cipher_lines: Sequence[bytes], byte_index: int,
                        guess: int) -> int:
        """Single-sample, single-guess estimate (reference path for tests).

        Draws a fresh model partition per warp, so randomized model
        policies give an *independent* estimate here; use
        :meth:`access_matrix` for batch attacks.
        """
        num_lines = len(cipher_lines)
        accesses = 0
        for start in range(0, num_lines, self.warp_size):
            warp_lines = cipher_lines[start:start + self.warp_size]
            partition = self.model_policy.draw(self._rng)
            seen = set()
            for tid, line in enumerate(warp_lines):
                index = INV_SBOX[line[byte_index] ^ guess]
                seen.add((partition.assignment[tid],
                          index >> _BLOCK_SHIFT))
            accesses += len(seen)
        return accesses
