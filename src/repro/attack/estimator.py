"""The attacker's coalesced-access estimator.

This generalizes Fig 4's first step to every defense. For key byte ``j``
and guess ``m``, the table-lookup index of each thread (line) is
``t = InvSBox[c_j ^ m]`` (Equation 3) and its memory block is ``t >> 4``.
The attacker then *models the machine* to turn per-thread blocks into an
access count: threads are grouped per warp into subwarps according to the
attacker's **model policy** — exactly one subwarp for the baseline attack,
the known in-order partition for the FSS attack, or freshly drawn
RSS-sizes/RTS-permutations for the corresponding attacks of Section IV-E —
and each subwarp contributes its number of distinct blocks.

One model draw is made per plaintext sample per warp (mirroring the
victim's per-launch draw) and shared across all 256 guesses and 16 byte
positions: redrawing per guess would only add attacker-side noise without
information.

The hot path is fully vectorized: for each guess the (sample, group, block)
triples are packed into integers and counted per sample via one
``np.unique``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.aes.sbox import INV_SBOX
from repro.aes.tables import ENTRIES_PER_BLOCK, NUM_TABLE_BLOCKS
from repro.core.policies import CoalescingPolicy
from repro.errors import ConfigurationError
from repro.rng import RngStream

__all__ = ["AccessEstimator"]

_INV_SBOX_ARR = np.array(INV_SBOX, dtype=np.uint8)
_BLOCK_SHIFT = ENTRIES_PER_BLOCK.bit_length() - 1  # 16 entries -> shift 4


class AccessEstimator:
    """Estimates last-round coalesced accesses for all key-byte guesses.

    Parameters
    ----------
    model_policy:
        The attacker's model of the machine's coalescing behaviour.
    rng:
        The *attacker's* random stream, used when the model policy is
        randomized (RSS/RTS mimicry). Independent of the victim's stream.
    warp_size:
        Threads per warp.
    """

    def __init__(self, model_policy: CoalescingPolicy,
                 rng: Optional[RngStream] = None, warp_size: int = 32):
        if model_policy.is_randomized and rng is None:
            raise ConfigurationError(
                f"model policy {model_policy.describe()} is randomized; "
                "the attacker needs their own RNG stream"
            )
        self.model_policy = model_policy
        self.warp_size = warp_size
        self._rng = rng
        self._labels: Optional[np.ndarray] = None
        self._num_samples = 0
        self._num_lines = 0

    # -- sample registration ----------------------------------------------

    def prepare(self, ciphertexts: Sequence[Sequence[bytes]]) -> None:
        """Fix the attacker's model draws for a batch of samples.

        ``ciphertexts[n]`` is the list of 16-byte ciphertext lines of sample
        ``n``. This precomputes one group label per (sample, line): the
        label encodes (sample, warp, modelled subwarp id) so that distinct
        (label, block) pairs are exactly the modelled coalesced accesses.
        """
        if not ciphertexts:
            raise ConfigurationError("no samples to prepare")
        num_lines = len(ciphertexts[0])
        if num_lines == 0:
            raise ConfigurationError("samples must contain at least one line")
        if any(len(sample) != num_lines for sample in ciphertexts):
            raise ConfigurationError("samples must all have the same length")

        num_warps = (num_lines + self.warp_size - 1) // self.warp_size
        group_stride = num_warps * self.warp_size  # >= warps * max subwarps
        labels = np.empty((len(ciphertexts), num_lines), dtype=np.int64)
        for n in range(len(ciphertexts)):
            for w in range(num_warps):
                partition = self.model_policy.draw(self._rng)
                start = w * self.warp_size
                stop = min(start + self.warp_size, num_lines)
                for line in range(start, stop):
                    sid = partition.assignment[line - start]
                    labels[n, line] = (
                        n * group_stride + w * self.warp_size + sid
                    )
        self._labels = labels
        self._num_samples = len(ciphertexts)
        self._num_lines = num_lines
        self._group_stride = group_stride

    def reset(self) -> None:
        """Forget the prepared batch (e.g. before attacking a new or
        truncated sample set). Randomized models will draw fresh
        partitions on the next :meth:`prepare`."""
        self._labels = None
        self._num_samples = 0
        self._num_lines = 0

    # -- estimation -----------------------------------------------------------

    def access_matrix(self, ciphertexts: Sequence[Sequence[bytes]],
                      byte_index: int) -> np.ndarray:
        """Fig 4b's memory access matrix for one key byte.

        Returns an array of shape (256, num_samples): entry ``[m, n]`` is
        the modelled number of last-round coalesced accesses that byte
        ``byte_index``'s T4 load generates for sample ``n`` if the key byte
        were ``m``. Call :meth:`prepare` first (or this method will, using
        the given ciphertexts).
        """
        if not 0 <= byte_index < 16:
            raise ConfigurationError(
                f"key byte index must be in [0, 16): {byte_index}"
            )
        if self._labels is None:
            self.prepare(ciphertexts)
        assert self._labels is not None
        if (len(ciphertexts) != self._num_samples
                or len(ciphertexts[0]) != self._num_lines):
            raise ConfigurationError(
                "ciphertexts do not match the prepared batch; call prepare()"
            )

        cipher_bytes = np.empty((self._num_samples, self._num_lines),
                                dtype=np.uint8)
        for n, sample in enumerate(ciphertexts):
            for line, block in enumerate(sample):
                cipher_bytes[n, line] = block[byte_index]

        matrix = np.empty((256, self._num_samples), dtype=np.int32)
        scaled_labels = self._labels * NUM_TABLE_BLOCKS
        sample_stride = self._group_stride * NUM_TABLE_BLOCKS
        for guess in range(256):
            indices = _INV_SBOX_ARR[cipher_bytes ^ np.uint8(guess)]
            blocks = (indices >> _BLOCK_SHIFT).astype(np.int64)
            combined = scaled_labels + blocks
            unique = np.unique(combined)
            matrix[guess] = np.bincount(unique // sample_stride,
                                        minlength=self._num_samples)
        return matrix

    def estimate_sample(self, cipher_lines: Sequence[bytes], byte_index: int,
                        guess: int) -> int:
        """Single-sample, single-guess estimate (reference path for tests).

        Draws a fresh model partition per warp, so randomized model
        policies give an *independent* estimate here; use
        :meth:`access_matrix` for batch attacks.
        """
        num_lines = len(cipher_lines)
        accesses = 0
        for start in range(0, num_lines, self.warp_size):
            warp_lines = cipher_lines[start:start + self.warp_size]
            partition = self.model_policy.draw(self._rng)
            seen = set()
            for tid, line in enumerate(warp_lines):
                index = INV_SBOX[line[byte_index] ^ guess]
                seen.add((partition.assignment[tid],
                          index >> _BLOCK_SHIFT))
            accesses += len(seen)
        return accesses
