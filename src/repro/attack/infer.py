"""Inferring the machine's num-subwarps from execution time.

The FSS attack (Section IV-A) presumes the attacker can learn the secret
``num_subwarps``: "the calculation can be done based on the significant
execution time differences across num-subwarp values (Fig 7)... by
repeatedly measuring the execution time for encryption of a plaintext, an
attacker can determine which num-subwarp is used by the remote GPU server."

:class:`SubwarpCountInferrer` implements exactly that: a calibration phase
profiles the expected mean execution time per candidate M (on the
attacker's own replica — here, the simulator with a *different* key, since
mean time over random plaintexts is key-independent), and classification
assigns an observed timing sample set to the nearest calibrated mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.policies import make_policy
from repro.errors import AttackError, ConfigurationError
from repro.gpu.config import GPUConfig
from repro.rng import RngStream
from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionServer

__all__ = ["CalibrationProfile", "SubwarpCountInferrer"]


@dataclass(frozen=True)
class CalibrationProfile:
    """Mean execution time per candidate num-subwarps value."""

    mechanism: str
    mean_time: Dict[int, float]

    def classify(self, observed_times: Sequence[float]) -> int:
        """The candidate M whose calibrated mean is nearest the
        observed mean time."""
        if len(observed_times) == 0:
            raise AttackError("need at least one timing observation")
        observed = float(np.mean(observed_times))
        return min(self.mean_time,
                   key=lambda m: abs(self.mean_time[m] - observed))

    def margin(self, observed_times: Sequence[float]) -> float:
        """Distance gap between the best and second-best candidate,
        normalized by the best candidate's mean (confidence proxy)."""
        observed = float(np.mean(observed_times))
        distances = sorted(abs(mean - observed)
                           for mean in self.mean_time.values())
        if len(distances) < 2:
            return float("inf")
        best = min(self.mean_time.values())
        return (distances[1] - distances[0]) / best


class SubwarpCountInferrer:
    """Calibrate-and-classify estimation of a victim's num-subwarps.

    Parameters
    ----------
    mechanism:
        The defense family the attacker assumes ("fss", "rss", ...). Mean
        time separates M values for all of them (Fig 16).
    candidates:
        The M values to calibrate.
    config:
        GPU configuration of the attacker's replica.
    """

    def __init__(self, mechanism: str = "fss",
                 candidates: Sequence[int] = (1, 2, 4, 8, 16, 32),
                 config: Optional[GPUConfig] = None):
        if not candidates:
            raise ConfigurationError("need at least one candidate M")
        self.mechanism = mechanism
        self.candidates = tuple(candidates)
        self.config = config

    def calibrate(self, rng: RngStream, samples: int = 10,
                  lines: int = 32) -> CalibrationProfile:
        """Profile the attacker's replica for each candidate M.

        The attacker does not know the victim's key; mean execution time
        over random plaintexts is key-independent, so any key works.
        """
        key = bytes(rng.child("calibration-key").random_bytes(16))
        plaintexts = random_plaintexts(samples, lines,
                                       rng.child("calibration-pt"))
        means: Dict[int, float] = {}
        for m in self.candidates:
            policy = make_policy(self.mechanism, m)
            server = EncryptionServer(
                key, policy, config=self.config,
                rng=rng.child(f"calibration-{m}")
                if policy.is_randomized else None,
            )
            records = server.encrypt_batch(plaintexts)
            means[m] = float(np.mean([r.total_time for r in records]))
        return CalibrationProfile(self.mechanism, means)
