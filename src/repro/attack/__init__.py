"""Correlation timing attacks on the (defended) GPU AES server.

The package implements the paper's attack family:

* the **baseline attack** of Jiang et al. (Section II-C): model the machine
  as one subwarp per warp, estimate last-round coalesced accesses per key
  byte guess from ciphertexts, and correlate with measured timing;
* the **FSS attack** (Algorithm 1): same, but the attacker knows
  ``num_subwarps`` and sums per-subwarp access counts;
* the **corresponding attacks** for the randomized defenses (Section IV-E):
  the attacker knows the mechanism and *mimics* it — drawing their own RSS
  sizes / RTS permutations — but cannot reproduce the victim's private draws.

All of these are instances of one estimator,
:class:`~repro.attack.estimator.AccessEstimator`, parameterized by the
*attacker's model policy*; :class:`~repro.attack.recovery.CorrelationTimingAttack`
turns estimates plus observations into per-byte correlations and key bytes.
"""

from repro.attack.correlation import pearson, rowwise_pearson
from repro.attack.estimator import AccessEstimator
from repro.attack.algorithm1 import fss_attack_last_round_accesses
from repro.attack.recovery import (
    ByteRecovery,
    CorrelationTimingAttack,
    KeyRecovery,
)
from repro.attack.infer import CalibrationProfile, SubwarpCountInferrer
from repro.attack.noise import (
    add_gaussian_noise,
    correlation_attenuation,
    sample_inflation,
)
from repro.attack.samples import samples_needed, samples_needed_exact

__all__ = [
    "pearson",
    "rowwise_pearson",
    "AccessEstimator",
    "fss_attack_last_round_accesses",
    "ByteRecovery",
    "KeyRecovery",
    "CorrelationTimingAttack",
    "samples_needed",
    "samples_needed_exact",
    "SubwarpCountInferrer",
    "CalibrationProfile",
    "add_gaussian_noise",
    "correlation_attenuation",
    "sample_inflation",
]
