"""Wall-clock span profiling for the experiment runner (axis 2 of
``rcoal profile``).

A :class:`SpanProfiler` aggregates named ``perf_counter_ns`` spans —
"runner.submit", "worker.simulate", "runner.merge", … — so a run can be
decomposed into pickle / spin-up / compute / merge components without a
sampling profiler. It follows the same null-object discipline as
:class:`~repro.telemetry.core.Telemetry`: the shared
:meth:`SpanProfiler.disabled` singleton records nothing, every
instrumentation site pays one attribute check, and a profiling-off run is
bit-identical to an unprofiled one (``tests/integration/
test_profile_effect.py``).

Workers record into private profilers that ride back inside their chunk
telemetry; the parent folds them in chunk order via :meth:`merge`, exactly
like ``MetricsRegistry.merge``. Aggregates are deterministic in *shape*
(span names and counts merge identically on every run) while the
nanosecond totals are, of course, wall-clock measurements.

Raw spans (a bounded sample) are kept alongside the aggregates so the
``rcoal profile --chrome`` export can show the wall timeline as a fourth
trace process next to the simulated sm/interconnect/dram lanes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

__all__ = ["SpanProfiler", "PID_WALL"]

#: Chrome-trace process id for wall-clock spans (sim lanes use 0/1/2).
PID_WALL = 3

#: Raw spans kept per profiler for timeline export; aggregates are exact
#: regardless of this bound.
_MAX_RAW_SPANS = 4096


class _Span:
    """Context manager timing one named span (allocation-light)."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "SpanProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self._start = 0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.record(self._name,
                              time.perf_counter_ns() - self._start,
                              start_ns=self._start)


class _NoopSpan:
    """Shared no-op context manager for the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class SpanProfiler:
    """Aggregated wall-clock spans with worker merge support."""

    __slots__ = ("enabled", "_totals", "_raw", "_origin_ns", "_lanes")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: name -> [count, total_ns, max_ns]
        self._totals: Dict[str, List[int]] = {}
        #: (lane, name, start_ns relative to origin, dur_ns), bounded.
        self._raw: List[Tuple[int, str, int, int]] = []
        self._origin_ns = time.perf_counter_ns()
        #: Lanes merged in so far (parent = 0, workers 1..n in merge order).
        self._lanes = 0

    @classmethod
    def disabled(cls) -> "SpanProfiler":
        """The shared null object: ``span()`` is a no-op."""
        return _DISABLED

    # -- recording ------------------------------------------------------------

    def span(self, name: str):
        """Context manager timing one occurrence of span ``name``."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name)

    def record(self, name: str, dur_ns: int,
               start_ns: Optional[int] = None) -> None:
        """Record one finished span directly (``span()`` calls this)."""
        if not self.enabled:
            return
        entry = self._totals.get(name)
        if entry is None:
            self._totals[name] = [1, dur_ns, dur_ns]
        else:
            entry[0] += 1
            entry[1] += dur_ns
            if dur_ns > entry[2]:
                entry[2] = dur_ns
        if len(self._raw) < _MAX_RAW_SPANS:
            offset = (start_ns - self._origin_ns) if start_ns is not None \
                else 0
            self._raw.append((0, name, max(0, offset), dur_ns))

    # -- merging --------------------------------------------------------------

    def merge(self, other: Optional["SpanProfiler"]) -> "SpanProfiler":
        """Fold a worker's spans into this profiler, in chunk order.

        Counts and totals sum (like ``Counter.merge_from``); maxima take
        the max. The merged aggregate *shape* — span names and counts — is
        deterministic across reruns, which the merge-determinism test
        pins; only the nanosecond values are wall-clock. Merging ``None``
        or a disabled profiler is a no-op.
        """
        if other is None or not other.enabled or other is self:
            return self
        for name, (count, total, peak) in other._totals.items():
            entry = self._totals.get(name)
            if entry is None:
                self._totals[name] = [count, total, peak]
            else:
                entry[0] += count
                entry[1] += total
                if peak > entry[2]:
                    entry[2] = peak
        self._lanes += 1
        lane = self._lanes
        room = _MAX_RAW_SPANS - len(self._raw)
        if room > 0:
            self._raw.extend((lane, name, start, dur)
                             for _, name, start, dur in other._raw[:room])
        return self

    # -- inspection / export --------------------------------------------------

    def __len__(self) -> int:
        return len(self._totals)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Aggregates as plain dicts, sorted by name (stable-JSON-able)."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._totals):
            count, total, peak = self._totals[name]
            out[name] = {
                "count": count,
                "total_ms": round(total / 1e6, 3),
                "mean_ms": round(total / count / 1e6, 3) if count else 0.0,
                "max_ms": round(peak / 1e6, 3),
            }
        return out

    def render_table(self) -> str:
        """Human-readable span table, widest total first."""
        snap = self.snapshot()
        if not snap:
            return "(no wall-clock spans recorded)"
        rows = sorted(snap.items(), key=lambda kv: -kv[1]["total_ms"])
        width = max(len(name) for name, _ in rows)
        lines = [f"{'span'.ljust(width)}  {'count':>6}  {'total ms':>10}  "
                 f"{'mean ms':>9}  {'max ms':>9}"]
        for name, data in rows:
            lines.append(f"{name.ljust(width)}  {data['count']:>6}  "
                         f"{data['total_ms']:>10.3f}  "
                         f"{data['mean_ms']:>9.3f}  "
                         f"{data['max_ms']:>9.3f}")
        return "\n".join(lines)

    def to_chrome_events(self) -> List[dict]:
        """Raw spans as Chrome trace_event dicts on the wall process.

        Timestamps are microseconds from the profiler's origin; lanes
        (parent = 0, merged workers 1..n) map to Chrome thread ids.
        """
        events: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": PID_WALL, "tid": 0,
            "args": {"name": "wall-clock"},
        }]
        events.extend({
            "name": name, "cat": "wall", "ph": "X",
            "ts": start // 1000, "dur": max(1, dur // 1000),
            "pid": PID_WALL, "tid": lane,
        } for lane, name, start, dur in self._raw)
        return events

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"SpanProfiler({state}, {len(self._totals)} spans)"


#: Module-level singleton backing :meth:`SpanProfiler.disabled`.
_DISABLED = SpanProfiler(enabled=False)
