"""Structured logging helpers for the simulator stack.

Every module logs under the ``repro`` namespace (``repro.gpu.engine``,
``repro.experiments`` ...), obtained via :func:`get_logger`, so one call to
:func:`configure_logging` — wired to the CLI's ``-v/--verbose`` flag —
controls the whole package. Logging stays silent by default: the root
``repro`` logger gets a ``NullHandler`` so library users see nothing unless
they (or the CLI) opt in.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "configure_logging", "LOGGER_ROOT"]

LOGGER_ROOT = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"

logging.getLogger(LOGGER_ROOT).addHandler(logging.NullHandler())


class _CliHandler(logging.Handler):
    """The CLI's stderr handler.

    Resolves ``sys.stderr`` at emit time (unless pinned to an explicit
    stream), so stderr redirection/capture after configuration — pytest,
    subprocess plumbing — keeps working instead of writing to a stale,
    possibly closed, file object.
    """

    _repro_cli_handler = True

    def __init__(self, stream=None):
        super().__init__()
        self._stream = stream

    def set_stream(self, stream) -> None:
        self._stream = stream

    def emit(self, record: logging.LogRecord) -> None:
        try:
            stream = self._stream if self._stream is not None \
                else sys.stderr
            stream.write(self.format(record) + "\n")
            stream.flush()
        except Exception:  # pragma: no cover - mirrors logging's contract
            self.handleError(record)


def get_logger(name: str) -> logging.Logger:
    """A logger under the package namespace.

    ``get_logger("gpu.engine")`` and ``get_logger("repro.gpu.engine")``
    return the same logger; modules typically call
    ``log = get_logger(__name__)``.
    """
    if name == LOGGER_ROOT:
        return logging.getLogger(LOGGER_ROOT)
    if name.startswith(LOGGER_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_ROOT}.{name}")


def configure_logging(verbosity: int = 0,
                      stream=None) -> logging.Logger:
    """Attach a stderr handler to the package root at a verbosity level.

    ``verbosity`` maps 0 → WARNING, 1 → INFO, >=2 → DEBUG. Idempotent:
    repeated calls reconfigure the existing handler instead of stacking
    duplicates (so tests and REPL reuse are safe).
    """
    level = (logging.WARNING if verbosity <= 0
             else logging.INFO if verbosity == 1
             else logging.DEBUG)
    root = logging.getLogger(LOGGER_ROOT)
    root.setLevel(level)

    handler: Optional[_CliHandler] = None
    for existing in root.handlers:
        if getattr(existing, "_repro_cli_handler", False):
            handler = existing
            break
    if handler is None:
        handler = _CliHandler(stream)
        handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
        root.addHandler(handler)
    elif stream is not None:
        handler.set_stream(stream)
    handler.setLevel(level)
    return root
