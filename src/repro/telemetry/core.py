"""The :class:`Telemetry` facade handed through the simulator stack.

One ``Telemetry`` object bundles the metrics registry and the event tracer
for a run (an experiment, a server lifetime, a single launch — whatever the
caller scopes it to). Components receive it as an optional constructor
argument; the default is the shared :meth:`Telemetry.disabled` null object,
whose ``enabled`` flag is False, so every instrumentation site in the hot
path reduces to a single attribute check and simulation results are
bit-identical with telemetry off (no observer effect — enforced by
``tests/integration/test_observer_effect.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import SpanProfiler
from repro.telemetry.progress import ProgressBoard
from repro.telemetry.tracer import Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Metrics + tracing for one instrumented simulation scope."""

    __slots__ = ("enabled", "metrics", "tracer", "board", "profiler")

    def __init__(self, enabled: bool = True,
                 trace_capacity: int = 500_000,
                 board: Optional[ProgressBoard] = None,
                 profile: bool = False):
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(trace_capacity)
        #: Optional live progress fan-in, read by the ``--serve`` sink.
        #: Reporters publish here when the experiment context carries an
        #: instrumented telemetry whose board is set.
        self.board = board
        #: Wall-clock span profiling (``--profile``). Off by default: the
        #: runner's span sites pay one attribute check, nothing records.
        self.profiler = SpanProfiler(enabled=profile and enabled)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared null object (``enabled`` is False, nothing records)."""
        return _DISABLED

    @staticmethod
    def ensure(telemetry: Optional["Telemetry"]) -> "Telemetry":
        """Normalize an optional constructor argument."""
        return telemetry if telemetry is not None else _DISABLED

    def merge(self, other: Optional["Telemetry"]) -> "Telemetry":
        """Fold a worker's telemetry into this one (metrics + trace).

        Workers must be merged in sample-chunk order for the result to
        equal a serial run's telemetry; see ``MetricsRegistry.merge`` and
        ``Tracer.merge``. Merging ``None`` or a disabled sink is a no-op.
        """
        if other is None or not other.enabled:
            return self
        if self is _DISABLED:
            raise ConfigurationError(
                "cannot merge telemetry into the shared disabled null object"
            )
        self.metrics.merge(other.metrics)
        self.tracer.merge(other.tracer)
        # getattr: telemetry pickled by pre-profiler checkpoints has no
        # profiler slot; resumed chunks merge cleanly as "no spans".
        self.profiler.merge(getattr(other, "profiler", None))
        return self

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"Telemetry({state}, {len(self.metrics)} metrics, "
                f"{len(self.tracer)} events)")


#: Module-level singleton backing :meth:`Telemetry.disabled`. Guarded by
#: ``enabled`` checks at every instrumentation site, its registries never
#: accumulate state even though it is shared across simulators.
_DISABLED = Telemetry(enabled=False, trace_capacity=1)
