"""Structured simulator metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments that
instrumentation sites create lazily (``registry.counter("dram.row_hits")``)
and experiment tooling reads back as a snapshot dict / JSON blob / rendered
table. Everything here is zero-dependency and allocation-light: recording a
value is an integer add, so the instruments are safe to leave in the
simulator's hot path behind an ``enabled`` check.

Conventions
-----------
* Names are dotted paths grouped by subsystem (``dram.``, ``icnt.``,
  ``coalescer.``, ``warp.``, ``sim.``).
* Counters only go up; gauges track a last value plus a high-water mark;
  histograms use fixed bucket upper bounds fixed at creation (hardware
  counters do not resize), with one overflow bin past the last bound.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS", "stable_json"]

#: Power-of-two bounds covering 1 cycle .. ~1M cycles; the default shape
#: for latency/occupancy histograms.
DEFAULT_BUCKETS: Tuple[int, ...] = tuple(2 ** i for i in range(21))


def _stable(value):
    """Normalize floats to 10 significant digits, recursively."""
    if isinstance(value, float):
        return float(f"{value:.10g}")
    if isinstance(value, dict):
        return {key: _stable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_stable(item) for item in value]
    return value


def stable_json(obj, indent: Optional[int] = 2) -> str:
    """JSON text that diffs cleanly across runs and ``-j`` settings.

    Keys are sorted and floats are rounded to 10 significant digits before
    serialization, so two snapshots of the same logical state — serial vs
    merged-from-workers, or re-run on another platform — are byte-equal.
    The committed metrics baselines (``rcoal metrics --check``) and the
    ``--serve`` JSON endpoints both rely on this.
    """
    return json.dumps(_stable(obj), indent=indent, sort_keys=True)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        """Fold another counter's events into this one (parallel workers)."""
        self.value += other.value

    def to_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time level with a high-water mark (e.g. queue depth)."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, delta: Union[int, float]) -> None:
        self.set(self.value + delta)

    def merge_from(self, other: "Gauge") -> None:
        """Fold a later worker's gauge into this one.

        Merging in worker (sample-chunk) order reproduces the serial
        semantics: the merged last value is the *other*'s last value and
        the peak is the maximum over both.
        """
        self.value = other.value
        if other.peak > self.peak:
            self.peak = other.peak

    def to_dict(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value, "peak": self.peak}


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``buckets`` are ascending inclusive upper bounds; an observation lands
    in the first bucket whose bound is >= the value, or in the implicit
    overflow bin. Count / sum / min / max are tracked exactly, so the mean
    is exact even though the distribution shape is bucketed.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str,
                 buckets: Sequence[Union[int, float]] = DEFAULT_BUCKETS):
        bounds = tuple(buckets)
        if not bounds:
            raise ConfigurationError(
                f"histogram {name} needs at least one bucket bound"
            )
        if any(b >= n for b, n in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name} bounds must be strictly increasing"
            )
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min: Optional[Union[int, float]] = None
        self.max: Optional[Union[int, float]] = None

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        # Linear scan: bucket lists are short (~20) and typical values
        # land early; bisect would add an import for no measured win.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def observe_many(self, value: Union[int, float], times: int) -> None:
        """Record ``value`` ``times`` times with one bucket scan.

        State-identical to ``times`` :meth:`observe` calls — the batched
        collection core feeds precomputed value/multiplicity pairs through
        here so its snapshots equal a per-instruction loop's.
        """
        if times <= 0:
            return
        self.count += times
        self.sum += value * times
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += times
                return
        self.counts[-1] += times

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> Union[int, float]:
        """Approximate q-quantile (0..1) from bucket upper bounds."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0
        target = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target and bucket_count:
                if i < len(self.buckets):
                    return self.buckets[i]
                return self.max if self.max is not None else 0
        return self.max if self.max is not None else 0

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        if other.buckets != self.buckets:
            raise ConfigurationError(
                f"histogram {self.name}: cannot merge differing bucket "
                f"bounds {other.buckets} into {self.buckets}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A flat, lazily populated namespace of named instruments."""

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def _get(self, name: str, kind: type, factory) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: Sequence[Union[int, float]] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    # -- merging --------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's instruments into this one, in place.

        The workhorse of the parallel experiment runner: each worker
        records into a private registry and the parent merges them back in
        worker (sample-chunk) order, so the merged result equals what one
        serial run would have recorded — counters sum, histograms add
        bucket-wise, and gauges keep the last merged value with the
        all-time peak. Returns ``self`` for chaining.
        """
        for name, theirs in other._instruments.items():
            mine = self._instruments.get(name)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = Histogram(name, theirs.buckets)
                elif isinstance(theirs, Gauge):
                    mine = Gauge(name)
                else:
                    mine = Counter(name)
                self._instruments[name] = mine
            elif type(mine) is not type(theirs):
                raise ConfigurationError(
                    f"metric {name!r} is a {type(mine).__name__} here but "
                    f"a {type(theirs).__name__} in the merged registry"
                )
            mine.merge_from(theirs)
        return self

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instruments as plain dicts, sorted by name.

        Callable from another thread while instrumentation records (the
        ``--serve`` sink polls live): lazily-created instruments can grow
        the dict mid-iteration, which is retried rather than locked.
        """
        for _ in range(16):
            try:
                names = sorted(self._instruments)
                break
            except RuntimeError:  # dict grew during iteration; retry
                continue
        return {name: self._instruments[name].to_dict() for name in names}

    def to_json(self, indent: int = 2) -> str:
        return stable_json(self.snapshot(), indent=indent)

    def render_table(self) -> str:
        """Human-readable snapshot (the ``rcoal metrics`` output)."""
        rows: List[Tuple[str, str]] = []
        for name, data in self.snapshot().items():
            if data["type"] == "counter":
                rows.append((name, str(data["value"])))
            elif data["type"] == "gauge":
                rows.append((name, f"{data['value']} (peak {data['peak']})"))
            else:
                rows.append((
                    name,
                    f"count={data['count']} mean={data['mean']:.1f} "
                    f"min={data['min']} max={data['max']}",
                ))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name.ljust(width)}  {value}"
                         for name, value in rows)
