"""Persistent run ledger: an append-only ``events.jsonl`` per campaign.

Per-run telemetry (metrics, traces, spans) lives in memory and dies with
the process; a *campaign* — checkpointed, resumed, possibly fanned out
across worker processes — needs a durable record of what happened across
all of them. :class:`RunJournal` provides it: one JSON object per line,
appended with the same crash-safety discipline the checkpoint store
uses, just adapted to an append-only log:

* every append opens the file in append mode, writes **one complete
  line**, flushes, and fsyncs — an event is either fully on disk or not
  recorded at all under normal operation;
* a crash (or an injected ``torn@events.jsonl`` fault) can still leave a
  torn final line with no newline; :func:`read_journal` tolerates it by
  skipping any unparseable line, and the next append first terminates a
  torn tail with a newline so the damage stays confined to that one
  line;
* events carry a wall-clock ``ts`` and the writing ``pid``, so a ledger
  shared by a parent and its ``all -j N`` workers interleaves into
  per-process lanes instead of garbage — appends in append mode are
  atomic at the single-``write`` level for these small lines.

A ``seq`` is assigned **at read time** as the 1-based index of each
complete line, mirroring the ``/trace?since=`` cursor contract: a client
that saw ``next_since = N`` asks for ``since=N`` and receives only lines
``N+1..``. Because the file is append-only, a line's seq never changes
(ledger compaction rewrites the file and documents the cursor reset).

The journal is consulted on the hot path only through its ``enabled``
flag; :meth:`RunJournal.disabled` is the null object every emission site
defaults to, so an unledgered run pays one attribute check per phase —
not per sample — and produces byte-identical output.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.telemetry.log import get_logger

__all__ = [
    "JOURNAL_NAME",
    "LEASE_KINDS",
    "RunJournal",
    "events_since",
    "last_event",
    "read_journal",
    "worker_id",
]

log = get_logger(__name__)

#: File name of the ledger inside a campaign/checkpoint directory.
JOURNAL_NAME = "events.jsonl"

#: Lease-protocol events shard workers (``rcoal shard``) append: claims,
#: heartbeat renewals, stale-lease steals, and releases. Every one
#: carries a ``worker`` field (see :func:`worker_id`), so the manifest
#: can fold the ledger into per-worker lanes even after the lease files
#: themselves are gone.
LEASE_KINDS = frozenset({
    "lease_claim", "lease_heartbeat", "lease_steal", "lease_release",
})


def worker_id() -> str:
    """A shard worker's default identity: ``<host>-<pid>``.

    Hostname and pid together stay unique across the multi-host
    shared-directory deployments ``rcoal shard`` targets; operators and
    tests can pin a stable, human-readable name via ``--worker`` instead.
    """
    import socket

    return f"{socket.gethostname()}-{os.getpid()}"


class RunJournal:
    """Append-only, crash-safe event ledger for one campaign directory.

    Holds only a path and a flag, so it pickles trivially — but workers
    never get one: :func:`repro.experiments.runner._worker_context`
    strips it, and per-experiment ``all -j N`` workers open their own
    against their own run directory.
    """

    def __init__(self, path: Union[str, Path], enabled: bool = True):
        self.path = Path(path)
        self.enabled = enabled
        self._lock = threading.Lock()
        self._tail_checked = False

    @classmethod
    def disabled(cls) -> "RunJournal":
        """The null object: every ``append`` is a no-op."""
        return cls(os.devnull, enabled=False)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"RunJournal({str(self.path)!r}, {state})"

    # Pickle without the (unpicklable) lock; a copy re-creates its own.
    def __getstate__(self) -> dict:
        return {"path": self.path, "enabled": self.enabled}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self.enabled = state["enabled"]
        self._lock = threading.Lock()
        self._tail_checked = False

    def append(self, kind: str, **fields) -> None:
        """Record one event; a no-op when the journal is disabled.

        The event is ``{"kind", "ts", "pid", **fields}`` serialized as a
        single compact JSON line, flushed and fsynced before returning.
        An active ``torn@<name>`` fault plan (``repro.faults``) tears the
        write mid-line — half the bytes, no newline — and raises, the
        same crash model the atomic writer is tested under.
        """
        if not self.enabled:
            return
        event = {"kind": kind, "ts": round(time.time(), 6),
                 "pid": os.getpid()}
        event.update(fields)
        data = (json.dumps(event, sort_keys=True, separators=(",", ":"))
                + "\n").encode("utf-8")
        from repro.faults import active_plan

        plan = active_plan()
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "ab") as handle:
                if not self._tail_checked:
                    self._repair_torn_tail(handle)
                    self._tail_checked = True
                if plan is not None:
                    spec = plan.torn_write_fires(self.path.name)
                    if spec is not None:
                        from repro.faults import TornWriteError

                        handle.write(data[: max(1, len(data) // 2)])
                        handle.flush()
                        # The tail is torn now — make this instance's
                        # next append re-check it, like the fresh
                        # instance a real post-crash process would be.
                        self._tail_checked = False
                        raise TornWriteError(
                            f"injected torn write {spec.describe()} while "
                            f"appending to {self.path}"
                        )
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())

    def _repair_torn_tail(self, handle) -> None:
        """Terminate a torn final line so this append starts fresh.

        ``handle`` is the journal open in append mode, positioned at the
        end. If the last byte on disk is not a newline, a previous writer
        died mid-line; writing one newline confines the damage to that
        single (unparseable, hence skipped) line.
        """
        if handle.tell() == 0:
            return
        with open(self.path, "rb") as reader:
            reader.seek(-1, os.SEEK_END)
            if reader.read(1) != b"\n":
                handle.write(b"\n")
                log.warning("repaired torn tail line in %s", self.path)

    def read(self) -> List[dict]:
        """This journal's complete events (see :func:`read_journal`)."""
        return read_journal(self.path)


def read_journal(path: Union[str, Path]) -> List[dict]:
    """All complete events of a ledger, each stamped with its ``seq``.

    ``seq`` is the 1-based complete-line index — the cursor currency of
    ``events_since`` and the ``/campaign`` endpoint. Unparseable lines
    (a torn tail, or garbage from a foreign writer) are skipped without
    consuming a seq, so cursors count exactly the events a reader can
    see. A missing file is an empty ledger, not an error.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError:
        return []
    events: List[dict] = []
    lines = data.split(b"\n")
    # A final element is b"" when the file ends with a newline; anything
    # else is a torn tail, which the parse below rejects anyway.
    for raw in lines:
        if not raw.strip():
            continue
        try:
            event = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            log.debug("skipping unparseable ledger line in %s", path)
            continue
        if not isinstance(event, dict):
            continue
        event["seq"] = len(events) + 1
        events.append(event)
    return events


def events_since(path: Union[str, Path], since: int = 0,
                 limit: int = 0) -> dict:
    """Incremental ledger read with the ``/trace?since=`` cursor contract.

    Returns ``{"events", "next_since", "dropped", "recorded"}`` — events
    with ``seq > since`` oldest-first, the cursor for the next poll, how
    many qualifying events ``limit`` trimmed, and the total on record.
    """
    events = read_journal(path)
    recorded = len(events)
    fresh = [event for event in events if event["seq"] > since]
    dropped = 0
    if limit and len(fresh) > limit:
        dropped = len(fresh) - limit
        fresh = fresh[-limit:]
    next_since = fresh[-1]["seq"] if fresh else min(since, recorded)
    return {"events": fresh, "next_since": next_since,
            "dropped": dropped, "recorded": recorded}


def last_event(path: Union[str, Path],
               kinds: Optional[set] = None) -> Optional[dict]:
    """The newest complete (optionally kind-filtered) event, or None.

    Reads only the file's final chunk, so health polls against a long
    ledger stay O(1).
    """
    path = Path(path)
    try:
        size = os.path.getsize(path)
    except OSError:
        return None
    with open(path, "rb") as handle:
        handle.seek(max(0, size - 65536))
        data = handle.read()
    lines = data.split(b"\n")
    # The first line may be a mid-line fragment when we seeked into the
    # middle of the file; iterating from the end never reaches it unless
    # it parses cleanly anyway.
    for raw in reversed(lines):
        if not raw.strip():
            continue
        try:
            event = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(event, dict) and (kinds is None
                                        or event.get("kind") in kinds):
            return event
    return None
