"""Per-sample experiment progress reporting with ETA.

Experiments encrypt hundreds of plaintexts per mechanism; a full paper-scale
run takes minutes with no feedback. :class:`ProgressReporter` prints a
single self-overwriting status line to stderr — samples done, percentage,
elapsed wall time, and a rate-based ETA — throttled so the write overhead
stays negligible. Disabled reporters are no-ops, so the call sites in
:mod:`repro.experiments.base` cost one attribute check when progress
reporting is off (the default; tests and pipelines see clean streams).
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressReporter"]


def _format_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class ProgressReporter:
    """Writes ``label 12/40 (30%) elapsed 1.2s eta 2.8s`` lines to stderr."""

    def __init__(self, total: int, label: str = "",
                 stream: Optional[TextIO] = None, enabled: bool = True,
                 min_interval: float = 0.1):
        self.total = max(total, 0)
        self.label = label
        self.enabled = enabled and self.total > 0
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._done = 0
        self._started: Optional[float] = None
        self._last_write = 0.0
        self._wrote_any = False

    @property
    def done(self) -> int:
        return self._done

    def update(self, amount: int = 1) -> None:
        """Record ``amount`` finished samples and maybe repaint the line."""
        if not self.enabled:
            return
        now = time.monotonic()
        if self._started is None:
            self._started = now
        self._done += amount
        final = self._done >= self.total
        if not final and now - self._last_write < self._min_interval:
            return
        self._last_write = now
        self._write_line(now)

    def finish(self) -> None:
        """Repaint the final state and terminate the status line."""
        if not self.enabled or not self._wrote_any:
            return
        self._write_line(time.monotonic())
        self._stream.write("\n")
        self._stream.flush()

    def _write_line(self, now: float) -> None:
        elapsed = now - (self._started if self._started is not None else now)
        percent = 100.0 * self._done / self.total
        line = (f"{self.label + ' ' if self.label else ''}"
                f"{self._done}/{self.total} ({percent:.0f}%) "
                f"elapsed {_format_seconds(elapsed)}")
        if 0 < self._done < self.total and elapsed > 0:
            remaining = elapsed / self._done * (self.total - self._done)
            line += f" eta {_format_seconds(remaining)}"
        self._stream.write(f"\r{line}\x1b[K")
        self._stream.flush()
        self._wrote_any = True
