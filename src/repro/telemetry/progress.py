"""Per-sample experiment progress reporting with ETA.

Experiments encrypt hundreds of plaintexts per mechanism; a full paper-scale
run takes minutes with no feedback. :class:`ProgressReporter` prints a
single self-overwriting status line to stderr — samples done, percentage,
elapsed wall time, and a rate-based ETA — throttled so the write overhead
stays negligible. Disabled reporters are no-ops, so the call sites in
:mod:`repro.experiments.base` cost one attribute check when progress
reporting is off (the default; tests and pipelines see clean streams).

When the parallel runner fans samples out across worker processes, each
worker writing its own status line would interleave garbage on stderr.
Instead the workers put per-sample increments on a queue via
:class:`QueueProgress`, and a single :class:`ProgressAggregator` in the
parent drains that queue on a daemon thread into one
:class:`ProgressReporter` — one line, global ETA.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Optional, TextIO

__all__ = ["ProgressReporter", "QueueProgress", "ProgressAggregator",
           "ProgressBoard"]


def _format_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class ProgressBoard:
    """Thread-safe live progress state, read back by the ``--serve`` sink.

    Reporters (serial and queue-aggregated alike) publish their state here
    when handed a board; the telemetry HTTP server's ``/progress`` endpoint
    snapshots it. One entry per reporter label (an experiment phase such as
    ``"fss M=8"``), in first-update order, so the dashboard shows each
    collection phase of a run as it starts.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict = {}
        self._incidents: dict = {}
        self._created = time.monotonic()

    def publish(self, label: str, done: int, total: int,
                elapsed: float, eta: Optional[float] = None,
                state: str = "running") -> None:
        """Record the live state of one labelled phase."""
        with self._lock:
            self._entries[label or "run"] = {
                "done": done,
                "total": total,
                "percent": round(100.0 * done / total, 1) if total else 0.0,
                "elapsed_seconds": round(elapsed, 3),
                "eta_seconds": round(eta, 3) if eta is not None else None,
                "state": state,
            }

    def finish(self, label: str) -> None:
        """Mark one phase complete (keeps its final counts)."""
        with self._lock:
            entry = self._entries.get(label or "run")
            if entry is not None:
                entry["state"] = "done"
                entry["eta_seconds"] = 0.0

    def incident(self, kind: str, amount: int = 1) -> None:
        """Count one supervision incident (retry, timeout, quarantine...).

        The resilient runner reports here so a ``--serve`` dashboard shows
        campaign health live; ``/progress`` and ``/health`` surface the
        counters.
        """
        with self._lock:
            self._incidents[kind] = self._incidents.get(kind, 0) + amount

    def snapshot(self) -> dict:
        """All phases plus aggregate totals, as plain JSON-ready dicts."""
        with self._lock:
            phases = {label: dict(entry)
                      for label, entry in self._entries.items()}
            incidents = dict(self._incidents)
        done = sum(e["done"] for e in phases.values())
        total = sum(e["total"] for e in phases.values())
        return {
            "phases": phases,
            "done": done,
            "total": total,
            "incidents": incidents,
            "uptime_seconds": round(time.monotonic() - self._created, 3),
        }


class ProgressReporter:
    """Writes ``label 12/40 (30%) elapsed 1.2s eta 2.8s`` lines to stderr.

    When given a :class:`ProgressBoard`, the reporter also publishes its
    state there on every update — independently of ``enabled``, which only
    gates the stderr line — so a ``--serve`` dashboard sees progress even
    when the terminal status line is off.
    """

    def __init__(self, total: int, label: str = "",
                 stream: Optional[TextIO] = None, enabled: bool = True,
                 min_interval: float = 0.1,
                 board: Optional[ProgressBoard] = None):
        self.total = max(total, 0)
        self.label = label
        self.enabled = enabled and self.total > 0
        self.board = board if self.total > 0 else None
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._done = 0
        self._started: Optional[float] = None
        self._last_write = 0.0
        self._wrote_any = False

    @property
    def done(self) -> int:
        return self._done

    def update(self, amount: int = 1) -> None:
        """Record ``amount`` finished samples and maybe repaint the line."""
        if not self.enabled and self.board is None:
            return
        now = time.monotonic()
        if self._started is None:
            self._started = now
        self._done += amount
        if self.board is not None:
            elapsed = now - self._started
            eta = (elapsed / self._done * (self.total - self._done)
                   if 0 < self._done < self.total and elapsed > 0 else None)
            self.board.publish(self.label, self._done, self.total,
                               elapsed, eta)
        if not self.enabled:
            return
        final = self._done >= self.total
        if not final and now - self._last_write < self._min_interval:
            return
        self._last_write = now
        self._write_line(now)

    def finish(self) -> None:
        """Repaint the final state and terminate the status line."""
        if self.board is not None:
            self.board.finish(self.label)
        if not self.enabled or not self._wrote_any:
            return
        self._write_line(time.monotonic())
        self._stream.write("\n")
        self._stream.flush()

    def _write_line(self, now: float) -> None:
        elapsed = now - (self._started if self._started is not None else now)
        percent = 100.0 * self._done / self.total
        line = (f"{self.label + ' ' if self.label else ''}"
                f"{self._done}/{self.total} ({percent:.0f}%) "
                f"elapsed {_format_seconds(elapsed)}")
        if 0 < self._done < self.total and elapsed > 0:
            remaining = elapsed / self._done * (self.total - self._done)
            line += f" eta {_format_seconds(remaining)}"
        self._stream.write(f"\r{line}\x1b[K")
        self._stream.flush()
        self._wrote_any = True


class QueueProgress:
    """Worker-side progress sink: puts increments on a shared queue.

    Mirrors the :class:`ProgressReporter` ``update``/``finish`` surface so
    worker code is agnostic about whether it reports locally or fans in to
    a parent :class:`ProgressAggregator`. A ``None`` queue disables it.
    """

    def __init__(self, queue=None):
        self._queue = queue
        self.enabled = queue is not None

    def update(self, amount: int = 1) -> None:
        if self._queue is not None:
            self._queue.put(amount)

    def finish(self) -> None:  # parity with ProgressReporter
        pass


class ProgressAggregator:
    """Parent-side fan-in for multi-process progress reporting.

    Drains worker increments from a queue on a daemon thread and repaints
    one :class:`ProgressReporter` line, so N workers produce exactly the
    same single status line a serial run would. Use as a context manager::

        with ProgressAggregator(total, queue, label="rss M=8") as agg:
            ... submit work; workers put increments on `queue` ...
        # on exit: drains remaining increments, prints the final line

    A ``None`` queue (progress disabled) makes every method a no-op.
    """

    def __init__(self, total: int, queue, label: str = "",
                 stream: Optional[TextIO] = None, enabled: bool = True,
                 board: Optional[ProgressBoard] = None):
        self.reporter = ProgressReporter(total, label=label, stream=stream,
                                         enabled=enabled and queue is not None,
                                         board=board)
        self._queue = queue
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "ProgressAggregator":
        if self._queue is not None and (self.reporter.enabled
                                        or self.reporter.board is not None):
            self._thread = threading.Thread(target=self._drain, daemon=True)
            self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            self.reporter.update(item)

    def stop(self) -> None:
        """Stop draining (workers are done) and print the final state."""
        if self._thread is not None:
            self._queue.put(None)
            self._thread.join()
            self._thread = None
            self.reporter.finish()
