"""Zero-dependency observability for the RCoal simulator stack.

Four pieces, composable but independently usable:

* :mod:`repro.telemetry.metrics` — counters / gauges / fixed-bucket
  histograms in a :class:`MetricsRegistry` with dict/JSON snapshots;
* :mod:`repro.telemetry.tracer` — a ring-buffered event :class:`Tracer`
  exporting Chrome ``trace_event`` JSON (``chrome://tracing``, Perfetto)
  and JSONL;
* :mod:`repro.telemetry.log` — per-module structured loggers under the
  ``repro`` namespace plus the CLI ``-v`` wiring;
* :mod:`repro.telemetry.progress` — per-sample ETA reporting for
  experiment batches.

The :class:`Telemetry` facade bundles metrics + tracing and is threaded
through ``GPUSimulator`` / ``EncryptionServer`` / ``ExperimentContext``;
the :meth:`Telemetry.disabled` null object is the default everywhere, so
an uninstrumented run pays one boolean check per site and produces
bit-identical results. See ``docs/observability.md`` for the metric
catalogue and trace schema.
"""

from repro.telemetry.core import Telemetry
from repro.telemetry.journal import (RunJournal, events_since,
                                     last_event, read_journal)
from repro.telemetry.log import configure_logging, get_logger
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    stable_json,
)
from repro.telemetry.progress import (
    ProgressAggregator,
    ProgressBoard,
    ProgressReporter,
    QueueProgress,
)
from repro.telemetry.profiler import PID_WALL, SpanProfiler
from repro.telemetry.serve import TelemetryServer
from repro.telemetry.tracer import (
    PID_DRAM,
    PID_ICNT,
    PID_SM,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Tracer",
    "TraceEvent",
    "PID_SM",
    "PID_ICNT",
    "PID_DRAM",
    "PID_WALL",
    "SpanProfiler",
    "ProgressReporter",
    "ProgressAggregator",
    "ProgressBoard",
    "QueueProgress",
    "RunJournal",
    "events_since",
    "last_event",
    "read_journal",
    "TelemetryServer",
    "stable_json",
    "get_logger",
    "configure_logging",
]
