"""Metrics-baseline regression gating (``rcoal metrics --check``).

The simulator is deterministic: the same seed and sample count must yield
the *same* metrics snapshot, bit for bit. A committed baseline file turns
that into a regression gate — CI reruns an instrumented experiment and
compares its snapshot against the file, so any silent change to the timing
model, the coalescing logic, or the instrumentation itself (a renamed
metric, a lost counter increment) fails loudly with a per-metric diff.

Baseline file format (``format`` 1)::

    {
      "format": 1,
      "experiments": {
        "<experiment id>": {
          "context": {"seed": ..., "samples": ..., "fast": ...},
          "metrics": { <MetricsRegistry.snapshot()> }
        }
      }
    }

Files are written with :func:`~repro.telemetry.metrics.stable_json`
(sorted keys, normalized floats), so regenerating an unchanged baseline
is a byte-level no-op and review diffs show exactly the drifted values.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.telemetry.metrics import stable_json

__all__ = [
    "BASELINE_FORMAT",
    "compare_snapshots",
    "load_baseline",
    "update_baseline",
    "check_against_baseline",
]

BASELINE_FORMAT = 1


def _normalize(obj):
    """Round-trip through stable JSON so in-memory snapshots compare
    against file contents at the same (10 significant digit) float
    precision they are stored with."""
    return json.loads(stable_json(obj, indent=None))


def load_baseline(path: str) -> dict:
    """Read and validate a baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
        raise ConfigurationError(
            f"{path} is not a format-{BASELINE_FORMAT} metrics baseline"
        )
    if not isinstance(data.get("experiments"), dict):
        raise ConfigurationError(f"{path} has no 'experiments' table")
    return data


def update_baseline(path: str, experiment_id: str, context: dict,
                    snapshot: Dict[str, dict]) -> str:
    """Write/refresh one experiment's entry in a baseline file.

    Existing entries for other experiments are preserved, so one file can
    gate several experiments. Returns the path.
    """
    data: dict = {"format": BASELINE_FORMAT, "experiments": {}}
    if os.path.exists(path):
        data = load_baseline(path)
    data["experiments"][experiment_id] = {
        "context": _normalize(context),
        "metrics": _normalize(snapshot),
    }
    from repro.utils import atomic_write_text
    atomic_write_text(path, stable_json(data) + "\n")
    return path


def _close(expected, actual, tolerance: float) -> bool:
    if isinstance(expected, bool) or isinstance(actual, bool):
        return expected == actual
    if isinstance(expected, (int, float)) and \
            isinstance(actual, (int, float)):
        if expected == actual:
            return True
        scale = max(abs(expected), abs(actual))
        return scale > 0 and abs(expected - actual) / scale <= tolerance
    return expected == actual


def compare_snapshots(expected, actual, tolerance: float = 0.0,
                      path: str = "") -> List[str]:
    """Structural diff of two metrics snapshots; [] means no drift.

    Numeric leaves compare with a *relative* tolerance (0.0 = exact, the
    right default for a deterministic simulator); container shape and
    non-numeric leaves compare exactly. Each drift line names the full
    path, so a failing CI run reads like a diff.
    """
    drifts: List[str] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in actual:
                drifts.append(f"{sub}: missing (baseline has "
                              f"{expected[key]!r})")
            elif key not in expected:
                drifts.append(f"{sub}: unexpected new entry "
                              f"{actual[key]!r}")
            else:
                drifts.extend(compare_snapshots(expected[key], actual[key],
                                                tolerance, sub))
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            drifts.append(f"{path}: length {len(actual)} != baseline "
                          f"{len(expected)}")
        else:
            for i, (e, a) in enumerate(zip(expected, actual)):
                drifts.extend(compare_snapshots(e, a, tolerance,
                                                f"{path}[{i}]"))
    elif not _close(expected, actual, tolerance):
        drifts.append(f"{path}: {actual!r} != baseline {expected!r}")
    return drifts


def check_against_baseline(path: str, experiment_id: str, context: dict,
                           snapshot: Dict[str, dict],
                           tolerance: float = 0.0) -> List[str]:
    """Compare one run against the committed baseline; [] means pass.

    A context mismatch (different seed/sample count than the baseline was
    recorded with) is reported as drift rather than silently compared —
    the numbers would differ for the wrong reason.
    """
    data = load_baseline(path)
    entry: Optional[dict] = data["experiments"].get(experiment_id)
    if entry is None:
        known = ", ".join(sorted(data["experiments"])) or "none"
        raise ConfigurationError(
            f"{path} has no baseline for {experiment_id!r} (has: {known}); "
            f"record one with --write-baseline"
        )
    drifts = compare_snapshots(entry.get("context", {}),
                               _normalize(context),
                               tolerance=0.0, path="context")
    drifts.extend(compare_snapshots(entry["metrics"], _normalize(snapshot),
                                    tolerance=tolerance, path="metrics"))
    return drifts
