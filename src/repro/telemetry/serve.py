"""Live telemetry streaming over HTTP (the ``--serve`` sink).

:class:`TelemetryServer` wraps a stdlib :class:`ThreadingHTTPServer` around
one :class:`~repro.telemetry.core.Telemetry` instance and serves its state
as JSON while the simulation is still running:

* ``GET /health``   — liveness + uptime;
* ``GET /metrics``  — full registry snapshot (stable JSON, sorted keys);
* ``GET /metrics/history`` — the sampler thread's time series of headline
  counters (sim cycles, coalesced accesses, trace events); pass
  ``?since=<seq>`` (the ``next_since`` of the previous response) for an
  incremental read, ``?limit=<n>`` to cap it;
* ``GET /trace``    — incremental ring-buffer drain; pass ``?since=<seq>``
  (the ``next_since`` of the previous response) to fetch only new events,
  and ``?limit=<n>`` to cap the response size;
* ``GET /progress`` — per-phase progress fanned in through the
  :class:`~repro.telemetry.progress.ProgressBoard`;
* ``GET /profile``  — wall-clock span aggregates (when the run profiles)
  plus live cost-center counter totals;
* ``GET /campaign`` — the aggregated campaign manifest (restored /
  remaining counts, chunk latency percentiles) for the run's ``--resume``
  directory, plus an incremental ledger drain following the ``/trace``
  cursor contract (``?since=<seq>&limit=<n>``); ``available: false``
  when the run has no campaign directory;
* ``GET /``         — a self-contained HTML dashboard polling the above.

The server runs on a daemon thread and never touches the simulator: every
endpoint reads through the same retry-on-mutation snapshots the export
paths use, so serving while a run records costs the run nothing and the
results stay bit-identical (``tests/integration/test_observer_effect.py``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigurationError
from repro.telemetry.core import Telemetry
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import stable_json

__all__ = [
    "MetricsHistory",
    "TelemetryServer",
    "DEFAULT_TRACE_LIMIT",
    "DEFAULT_HISTORY_CAPACITY",
    "parse_serve_spec",
]

_log = get_logger("telemetry.serve")

#: Cap on events per ``/trace`` response unless the client overrides it.
DEFAULT_TRACE_LIMIT = 2000

#: Samples kept in the metrics-history ring (10 min at the 1 s cadence).
DEFAULT_HISTORY_CAPACITY = 600


class MetricsHistory:
    """A bounded ring of periodic metrics samples with a ``seq`` cursor.

    Follows the trace ring buffer's incremental-drain contract: every
    sample gets a monotonically increasing ``seq``, and :meth:`since`
    returns samples with ``seq > since`` plus the cursor for the next
    call and how many requested samples the ring already evicted. Safe
    for one writer (the sampler thread) and many readers (handlers).
    """

    def __init__(self, capacity: int = DEFAULT_HISTORY_CAPACITY):
        if capacity <= 0:
            raise ConfigurationError(
                f"history capacity must be positive, got {capacity}"
            )
        self._entries: deque = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()

    def append(self, entry: Dict[str, object]) -> int:
        """Stamp ``entry`` with the next ``seq`` and keep it; returns it."""
        with self._lock:
            self._seq += 1
            entry = dict(entry, seq=self._seq)
            self._entries.append(entry)
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def recorded(self) -> int:
        """Samples ever taken (>= ``len`` once the ring wraps)."""
        with self._lock:
            return self._seq

    def since(self, since: int = 0, limit: int = 0) -> dict:
        """Samples with ``seq > since``, oldest first.

        Returns ``{"samples", "next_since", "dropped", "recorded"}`` —
        ``next_since`` is the cursor for the next poll (unchanged when
        nothing new arrived) and ``dropped`` counts requested samples the
        ring evicted before this read (consumer slower than the sampler).
        """
        with self._lock:
            samples = [e for e in self._entries if e["seq"] > since]
            oldest = self._entries[0]["seq"] if self._entries else \
                self._seq + 1
            recorded = self._seq
        # Requested-but-evicted: everything in (since, oldest) that no
        # longer exists. Nothing recorded yet -> nothing dropped.
        dropped = max(0, min(recorded, oldest - 1) - since)
        if limit and len(samples) > limit:
            dropped += len(samples) - limit
            samples = samples[-limit:]
        next_since = samples[-1]["seq"] if samples else since
        return {"samples": samples, "next_since": next_since,
                "dropped": dropped, "recorded": recorded}


class _Handler(BaseHTTPRequestHandler):
    """Routes the fixed endpoint set; state lives on the server object."""

    server_version = "rcoal-telemetry/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/":
            self._send(200, _DASHBOARD_HTML.encode("utf-8"),
                       "text/html; charset=utf-8")
        elif route == "/health":
            self._send_json(200, self._server().health())
        elif route == "/metrics":
            self._send(200, self._server().metrics_json().encode("utf-8"),
                       "application/json")
        elif route == "/metrics/history":
            query = parse_qs(parsed.query)
            since = _int_param(query, "since", 0)
            limit = _int_param(query, "limit", 0)
            self._send_json(200,
                            self._server().history.since(since, limit))
        elif route == "/profile":
            self._send_json(200, self._server().profile())
        elif route == "/trace":
            query = parse_qs(parsed.query)
            since = _int_param(query, "since", 0)
            limit = _int_param(query, "limit", DEFAULT_TRACE_LIMIT)
            self._send_json(200, self._server().trace_since(since, limit))
        elif route == "/progress":
            self._send_json(200, self._server().progress())
        elif route == "/campaign":
            query = parse_qs(parsed.query)
            since = _int_param(query, "since", 0)
            limit = _int_param(query, "limit", DEFAULT_TRACE_LIMIT)
            self._send_json(200, self._server().campaign(since, limit))
        else:
            self._send_json(404, {"error": f"unknown endpoint {route!r}"})

    # -- plumbing -------------------------------------------------------------

    def _server(self) -> "TelemetryServer":
        return self.server.owner  # type: ignore[attr-defined]

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(status, stable_json(payload).encode("utf-8"),
                   "application/json")

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _log.debug("%s %s", self.address_string(), format % args)


def _int_param(query: dict, name: str, default: int) -> int:
    values = query.get(name)
    if not values:
        return default
    try:
        return max(0, int(values[0]))
    except ValueError:
        return default


class TelemetryServer:
    """Serve one :class:`Telemetry` instance's live state over HTTP.

    Usable as a context manager; ``start`` returns once the socket is
    bound, so ``port`` is final even when requested as 0 (ephemeral)::

        with TelemetryServer(telemetry, port=0) as server:
            print(server.url)      # http://127.0.0.1:<assigned>
            ... run experiments with `telemetry` ...
    """

    def __init__(self, telemetry: Telemetry, host: str = "127.0.0.1",
                 port: int = 8000,
                 history_capacity: int = DEFAULT_HISTORY_CAPACITY,
                 sample_interval: float = 1.0,
                 campaign_dir: Optional[str] = None,
                 stall_after: float = 30.0):
        if not telemetry.enabled:
            raise ConfigurationError(
                "cannot serve a disabled telemetry sink: nothing records"
            )
        self.telemetry = telemetry
        #: The run's ``--resume`` directory, when it has one: enables the
        #: ``/campaign`` endpoint and the ledger-staleness fold in
        #: :meth:`health`.
        self.campaign_dir = campaign_dir
        self.stall_after = stall_after
        try:
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
        except OSError as exc:
            # Surface the failed bind on the shared board before raising:
            # a run whose dashboard silently never came up would look
            # healthy from the outside, and a *surviving* server on the
            # same board reports /health as degraded instead of wedging
            # (tests/robustness/test_serve_faults.py).
            if telemetry.board is not None:
                telemetry.board.incident("bind-conflict")
            raise ConfigurationError(
                f"cannot bind telemetry server to {host}:{port} "
                f"({exc.strerror or exc}); pick another port, or use "
                f"port 0 for an ephemeral one"
            ) from exc
        self._httpd.daemon_threads = True
        self._httpd.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()
        self.history = MetricsHistory(history_capacity)
        self._sample_interval = max(0.05, sample_interval)
        self._sampler: Optional[threading.Thread] = None
        self._sampler_stop = threading.Event()

    # -- lifecycle ------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._thread is not None:
            return self
        self._started = time.monotonic()
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        kwargs={"poll_interval": 0.1},
                                        daemon=True,
                                        name="rcoal-telemetry-serve")
        self._thread.start()
        self._sampler_stop.clear()
        self._sampler = threading.Thread(target=self._sample_loop,
                                         daemon=True,
                                         name="rcoal-telemetry-sampler")
        self._sampler.start()
        _log.info("telemetry server listening on %s", self.url)
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._sampler_stop.set()
        if self._sampler is not None:
            self._sampler.join()
            self._sampler = None
        self._httpd.shutdown()
        self._thread.join()
        self._thread = None
        self._httpd.server_close()
        _log.info("telemetry server on %s stopped", self.url)

    def _sample_loop(self) -> None:
        # Take one sample immediately so short runs still chart, then on
        # the configured cadence until stop() fires the event.
        self.sample_history()
        while not self._sampler_stop.wait(self._sample_interval):
            self.sample_history()

    def sample_history(self) -> int:
        """Append one metrics sample to the history ring; returns its seq.

        Public so tests (and embedding code) can drive the time series
        deterministically instead of sleeping on the sampler cadence.
        Reads go through the same retry-on-mutation snapshot the export
        paths use — sampling never perturbs the run.
        """
        snapshot = self.telemetry.metrics.snapshot()

        def counter(name: str) -> int:
            entry = snapshot.get(name)
            return int(entry["value"]) if entry is not None \
                and "value" in entry else 0

        # Cumulative wall-clock per profiler span (ms). The dashboard
        # differentiates consecutive samples into lane rates (simulate
        # ms/s vs runner/checkpoint overhead ms/s); empty when the run
        # is not profiling.
        spans = {name: data["total_ms"] for name, data
                 in self.telemetry.profiler.snapshot().items()}
        return self.history.append({
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "sim_cycles": counter("sim.cycles"),
            "accesses": counter("coalescer.accesses"),
            "kernels": counter("sim.kernels"),
            "trace_events": self.telemetry.tracer.recorded,
            "spans": spans,
        })

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- endpoint payloads (also the programmatic query surface) --------------

    def health(self) -> dict:
        board = self.telemetry.board
        incidents = board.snapshot()["incidents"] if board is not None else {}
        payload = {
            "status": "degraded" if incidents else "ok",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "trace_recorded": self.telemetry.tracer.recorded,
            "metrics": len(self.telemetry.metrics),
            "incidents": incidents,
        }
        if self.campaign_dir is not None:
            # Ledger-derived staleness: a campaign with an open phase but
            # no ledger write for stall_after seconds is stalled — report
            # degraded and name the phase, so a watchdog polling /health
            # catches a hung campaign without parsing the ledger itself.
            from repro.experiments.manifest import campaign_health
            probe = campaign_health(self.campaign_dir,
                                    stall_after=self.stall_after)
            payload["campaign"] = probe
            if probe["stalled"]:
                payload["status"] = "degraded"
                payload["stalled_phase"] = probe["stalled_phase"]
                if probe.get("stalled_worker"):
                    # A shard worker stopped heartbeating mid-lease:
                    # name who is stuck, not just which phase.
                    payload["stalled_worker"] = probe["stalled_worker"]
        return payload

    def metrics_json(self) -> str:
        return stable_json({
            "metrics": self.telemetry.metrics.snapshot(),
            "trace_recorded": self.telemetry.tracer.recorded,
        })

    def trace_since(self, since: int,
                    limit: int = DEFAULT_TRACE_LIMIT) -> dict:
        events, next_since, dropped = \
            self.telemetry.tracer.events_since(since)
        if limit and len(events) > limit:
            dropped += len(events) - limit
            events = events[-limit:]
        return {
            "events": [dict(event.to_chrome(), seq=event.seq)
                       for event in events],
            "next_since": next_since,
            "dropped": dropped,
            "recorded": self.telemetry.tracer.recorded,
        }

    def progress(self) -> dict:
        board = self.telemetry.board
        if board is None:
            return {"phases": {}, "done": 0, "total": 0, "incidents": {},
                    "uptime_seconds": 0.0}
        return board.snapshot()

    def campaign(self, since: int = 0,
                 limit: int = DEFAULT_TRACE_LIMIT) -> dict:
        """The aggregated campaign manifest plus an incremental ledger
        drain (``/trace``'s ``since``/``next_since`` cursor contract).

        A run without a ``--resume`` directory serves ``available:
        false`` with a reason instead of 404, so the dashboard can probe
        unconditionally. Manifest imports lazily (same pattern as the
        cost-center join in :meth:`profile`) to keep the telemetry
        package import-light and cycle-free.
        """
        if self.campaign_dir is None:
            return {"available": False,
                    "reason": "run has no campaign directory (--resume)"}
        from repro.experiments.manifest import campaign_manifest
        from repro.telemetry.journal import JOURNAL_NAME, events_since
        try:
            manifest = campaign_manifest(self.campaign_dir,
                                         stall_after=self.stall_after)
        except ConfigurationError as exc:
            return {"available": False, "reason": str(exc)}
        ledger = Path(self.campaign_dir) / JOURNAL_NAME
        if not ledger.is_file() and manifest["experiments"]:
            ledger = Path(manifest["experiments"][0]["run_dir"]) \
                / JOURNAL_NAME
        drain = events_since(ledger, since=since, limit=limit)
        return {"available": True, "manifest": manifest, **drain}

    def profile(self) -> dict:
        """Wall-clock span aggregates plus live cost-center totals.

        The wall axis is empty unless the run was started with profiling
        on (``--profile`` / ``rcoal profile``); the sim axis is the cheap
        counter-based approximation — stage occupancy, not critical-path
        attribution (that needs the offline trace join).
        """
        from repro.analysis.costcenters import live_cost_centers
        profiler = self.telemetry.profiler
        return {
            "profiler_enabled": profiler.enabled,
            "wall_spans": profiler.snapshot(),
            "sim_counters": live_cost_centers(
                self.telemetry.metrics.snapshot()),
        }


def parse_serve_spec(spec: str) -> Tuple[str, int]:
    """``"8000"`` or ``"0.0.0.0:8000"`` → (host, port)."""
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", spec
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"invalid --serve value {spec!r}: expected PORT or HOST:PORT"
        )
    if not 0 <= port <= 65535:
        raise ConfigurationError(f"--serve port out of range: {port}")
    return host or "127.0.0.1", port


# ---------------------------------------------------------------------------
# Embedded dashboard. Zero external dependencies; polls the JSON endpoints.
# Palette follows the project dataviz conventions (validated categorical
# slots; text always in text tokens, never series colors).
# ---------------------------------------------------------------------------

_DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>rcoal live telemetry</title>
<style>
  :root {
    --surface: #fcfcfb; --panel: #f4f3f1; --border: #e3e2de;
    --text: #0b0b0b; --text-2: #52514e;
    --blue: #2a78d6; --orange: #eb6834; --aqua: #1baf7a;
    --ok: #008300;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      --surface: #1a1a19; --panel: #242422; --border: #3a3936;
      --text: #ffffff; --text-2: #c3c2b7;
      --blue: #3987e5; --orange: #d95926; --aqua: #199e70;
      --ok: #35a854;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 24px; background: var(--surface); color: var(--text);
    font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 18px; margin: 0; font-weight: 650; }
  header { display: flex; align-items: baseline; gap: 12px;
           margin-bottom: 20px; flex-wrap: wrap; }
  #status { color: var(--text-2); font-size: 13px; }
  #status .dot { display: inline-block; width: 8px; height: 8px;
                 border-radius: 50%; background: var(--ok);
                 margin-right: 6px; }
  #status.stale .dot { background: var(--orange); }
  .tiles { display: grid; gap: 12px; margin-bottom: 20px;
           grid-template-columns: repeat(auto-fit, minmax(150px, 1fr)); }
  .tile { background: var(--panel); border: 1px solid var(--border);
          border-radius: 8px; padding: 12px 14px; }
  .tile .label { color: var(--text-2); font-size: 12px;
                 text-transform: uppercase; letter-spacing: .04em; }
  .tile .value { font-size: 24px; font-weight: 650;
                 font-variant-numeric: tabular-nums; margin-top: 2px; }
  section { margin-bottom: 24px; }
  h2 { font-size: 13px; font-weight: 650; color: var(--text-2);
       text-transform: uppercase; letter-spacing: .05em;
       margin: 0 0 10px; }
  .phase { margin-bottom: 10px; }
  .phase .head { display: flex; justify-content: space-between;
                 font-size: 13px; margin-bottom: 4px; }
  .phase .name { font-weight: 550; }
  .phase .stat { color: var(--text-2);
                 font-variant-numeric: tabular-nums; }
  .bar { height: 8px; border-radius: 4px; background: var(--panel);
         border: 1px solid var(--border); overflow: hidden; }
  .bar .fill { height: 100%; border-radius: 4px; background: var(--blue);
               transition: width .4s; }
  .phase.done .fill { background: var(--aqua); }
  table { border-collapse: collapse; width: 100%; max-width: 720px;
          font-variant-numeric: tabular-nums; }
  th, td { text-align: left; padding: 4px 14px 4px 0; font-size: 13px;
           border-bottom: 1px solid var(--border); }
  th { color: var(--text-2); font-weight: 550; }
  td.num { text-align: right; }
  #trace { background: var(--panel); border: 1px solid var(--border);
           border-radius: 8px; padding: 10px 14px; max-width: 920px;
           font: 12px/1.6 ui-monospace, Menlo, Consolas, monospace;
           white-space: pre; overflow-x: auto; color: var(--text-2);
           min-height: 60px; }
  .muted { color: var(--text-2); }
  .sparks { display: grid; gap: 12px; max-width: 720px;
            grid-template-columns: repeat(auto-fit, minmax(260px, 1fr)); }
  .spark { background: var(--panel); border: 1px solid var(--border);
           border-radius: 8px; padding: 12px 14px; }
  .spark .head { display: flex; justify-content: space-between;
                 align-items: baseline; margin-bottom: 6px; }
  .spark .label { color: var(--text-2); font-size: 12px;
                  text-transform: uppercase; letter-spacing: .04em; }
  .spark .now { font-size: 16px; font-weight: 650;
                font-variant-numeric: tabular-nums; }
  .spark svg { display: block; width: 100%; height: 48px; }
  .spark polyline { fill: none; stroke-width: 2; stroke-linejoin: round; }
  .spark .line-cycles { stroke: var(--blue); }
  .spark .line-accesses { stroke: var(--orange); }
  .spark .line-sim { stroke: var(--aqua); }
  .spark .line-overhead { stroke: var(--orange); }
  #campaign table { max-width: 920px; }
  #campaign .meta { color: var(--text-2); font-size: 13px;
                    margin-top: 6px; }
  #campaign .stalled { color: var(--orange); font-weight: 650; }
</style>
</head>
<body>
<header>
  <h1>rcoal live telemetry</h1>
  <span id="status"><span class="dot"></span><span id="status-text">connecting&hellip;</span></span>
</header>

<div class="tiles">
  <div class="tile"><div class="label">Progress</div>
    <div class="value" id="tile-progress">&ndash;</div></div>
  <div class="tile"><div class="label">Samples done</div>
    <div class="value" id="tile-samples">&ndash;</div></div>
  <div class="tile"><div class="label">Trace events</div>
    <div class="value" id="tile-events">&ndash;</div></div>
  <div class="tile"><div class="label">Metrics</div>
    <div class="value" id="tile-metrics">&ndash;</div></div>
</div>

<section>
  <h2>Throughput</h2>
  <div class="sparks">
    <div class="spark">
      <div class="head"><span class="label">sim cycles / s</span>
        <span class="now" id="spark-cycles-now">&ndash;</span></div>
      <svg viewBox="0 0 260 48" preserveAspectRatio="none">
        <polyline class="line-cycles" id="spark-cycles" points=""/></svg>
    </div>
    <div class="spark">
      <div class="head"><span class="label">accesses / s</span>
        <span class="now" id="spark-accesses-now">&ndash;</span></div>
      <svg viewBox="0 0 260 48" preserveAspectRatio="none">
        <polyline class="line-accesses" id="spark-accesses" points=""/></svg>
    </div>
    <div class="spark">
      <div class="head"><span class="label">simulate ms / s</span>
        <span class="now" id="spark-sim-now">&ndash;</span></div>
      <svg viewBox="0 0 260 48" preserveAspectRatio="none">
        <polyline class="line-sim" id="spark-sim" points=""/></svg>
    </div>
    <div class="spark">
      <div class="head"><span class="label">runner overhead ms / s</span>
        <span class="now" id="spark-overhead-now">&ndash;</span></div>
      <svg viewBox="0 0 260 48" preserveAspectRatio="none">
        <polyline class="line-overhead" id="spark-overhead" points=""/></svg>
    </div>
  </div>
</section>

<section id="campaign" hidden>
  <h2>Campaign</h2>
  <table id="campaign-table">
    <thead><tr><th>experiment</th><th>phase</th><th class="num">total</th>
               <th class="num">done</th><th class="num">left</th>
               <th class="num">quar</th><th class="num">p95 ms</th>
               <th>state</th></tr></thead>
    <tbody></tbody>
  </table>
  <table id="campaign-workers" hidden>
    <thead><tr><th>worker</th><th class="num">pid</th>
               <th class="num">claims</th><th class="num">done</th>
               <th class="num">steals</th><th class="num">heartbeats</th>
               <th>last heartbeat</th></tr></thead>
    <tbody></tbody>
  </table>
  <div class="meta" id="campaign-meta"></div>
</section>

<section>
  <h2>Experiment phases</h2>
  <div id="phases"><span class="muted">No progress published yet.</span></div>
</section>

<section>
  <h2>Metrics</h2>
  <table id="metrics-table">
    <thead><tr><th>name</th><th>type</th><th class="num">value</th>
               <th class="num">mean</th></tr></thead>
    <tbody><tr><td colspan="4" class="muted">waiting for data&hellip;</td></tr></tbody>
  </table>
</section>

<section>
  <h2>Trace tail</h2>
  <div id="trace">waiting for events&hellip;</div>
</section>

<script>
"use strict";
let since = 0;
let historySince = 0;
let lastSample = null;
const rates = { cycles: [], accesses: [], sim: [], overhead: [] };
const POINTS = 60;
const tail = [];
const TAIL = 18;
const fmt = n => n.toLocaleString("en-US");

function setStatus(ok, text) {
  const el = document.getElementById("status");
  el.classList.toggle("stale", !ok);
  document.getElementById("status-text").textContent = text;
}

async function poll() {
  try {
    const [health, metrics, progress, trace, history, campaign] =
      await Promise.all([
      fetch("/health").then(r => r.json()),
      fetch("/metrics").then(r => r.json()),
      fetch("/progress").then(r => r.json()),
      fetch("/trace?since=" + since + "&limit=200").then(r => r.json()),
      fetch("/metrics/history?since=" + historySince).then(r => r.json()),
      fetch("/campaign?limit=1").then(r => r.json()),
    ]);
    setStatus(true, "live \\u00b7 up " + health.uptime_seconds.toFixed(0) + "s");
    renderTiles(health, metrics, progress);
    renderSparks(history);
    renderPhases(progress);
    renderMetrics(metrics.metrics);
    renderTrace(trace);
    renderCampaign(campaign, health);
  } catch (err) {
    setStatus(false, "unreachable \\u2014 retrying");
  }
}

function renderTiles(health, metrics, progress) {
  const pct = progress.total
    ? (100 * progress.done / progress.total).toFixed(0) + "%" : "\\u2013";
  document.getElementById("tile-progress").textContent = pct;
  document.getElementById("tile-samples").textContent =
    progress.total ? fmt(progress.done) + " / " + fmt(progress.total) : "\\u2013";
  document.getElementById("tile-events").textContent =
    fmt(metrics.trace_recorded);
  document.getElementById("tile-metrics").textContent =
    fmt(Object.keys(metrics.metrics).length);
}

function laneMs(spans, predicate) {
  let total = 0;
  for (const name of Object.keys(spans || {}))
    if (predicate(name)) total += spans[name];
  return total;
}

const simLane = s => laneMs(s.spans, n =>
  n === "serial.simulate" || n === "chunk.simulate");
const overheadLane = s => laneMs(s.spans, n =>
  n.startsWith("runner.") || n.startsWith("checkpoint."));

function renderSparks(history) {
  historySince = history.next_since;
  for (const s of history.samples) {
    if (lastSample) {
      const dt = s.uptime_seconds - lastSample.uptime_seconds;
      if (dt > 0) {
        rates.cycles.push((s.sim_cycles - lastSample.sim_cycles) / dt);
        rates.accesses.push((s.accesses - lastSample.accesses) / dt);
        rates.sim.push((simLane(s) - simLane(lastSample)) / dt);
        rates.overhead.push(
          (overheadLane(s) - overheadLane(lastSample)) / dt);
      }
    }
    lastSample = s;
  }
  for (const key of Object.keys(rates))
    while (rates[key].length > POINTS) rates[key].shift();
  drawSpark("cycles", rates.cycles);
  drawSpark("accesses", rates.accesses);
  drawSpark("sim", rates.sim, "ms/s");
  drawSpark("overhead", rates.overhead, "ms/s");
}

function drawSpark(name, series, unit) {
  if (!series.length) return;
  const now = series[series.length - 1];
  document.getElementById("spark-" + name + "-now").textContent =
    fmt(Math.round(now)) + (unit ? " " + unit : "/s");
  const top = Math.max(...series, 1);
  const step = series.length > 1 ? 260 / (series.length - 1) : 0;
  const points = series.map((v, i) =>
    (i * step).toFixed(1) + "," + (45 - 42 * v / top).toFixed(1));
  document.getElementById("spark-" + name)
    .setAttribute("points", points.join(" "));
}

function renderPhases(progress) {
  const names = Object.keys(progress.phases);
  const host = document.getElementById("phases");
  if (!names.length) return;
  host.innerHTML = names.map(name => {
    const p = progress.phases[name];
    const eta = p.state === "done" ? "done"
      : p.eta_seconds != null ? "eta " + p.eta_seconds.toFixed(0) + "s" : "";
    return '<div class="phase' + (p.state === "done" ? " done" : "") + '">'
      + '<div class="head"><span class="name">' + esc(name) + '</span>'
      + '<span class="stat">' + p.done + "/" + p.total
      + " (" + p.percent.toFixed(0) + "%) " + eta + "</span></div>"
      + '<div class="bar"><div class="fill" style="width:'
      + p.percent + '%"></div></div></div>';
  }).join("");
}

function renderMetrics(snapshot) {
  const names = Object.keys(snapshot);
  if (!names.length) return;
  const rows = names.map(name => {
    const m = snapshot[name];
    const value = m.type === "histogram" ? fmt(m.count)
      : m.type === "gauge" ? fmt(m.value) + " (peak " + fmt(m.peak) + ")"
      : fmt(m.value);
    const mean = m.type === "histogram" && m.count
      ? m.mean.toFixed(1) : "";
    return "<tr><td>" + esc(name) + "</td><td>" + m.type
      + '</td><td class="num">' + value
      + '</td><td class="num">' + mean + "</td></tr>";
  });
  document.querySelector("#metrics-table tbody").innerHTML = rows.join("");
}

function renderTrace(trace) {
  since = trace.next_since;
  for (const e of trace.events) {
    tail.push(String(e.seq).padStart(8) + "  " + String(e.ts).padStart(10)
      + "  " + (e.cat + "/" + e.name).padEnd(28)
      + (e.dur != null ? "dur " + e.dur : ""));
  }
  while (tail.length > TAIL) tail.shift();
  if (tail.length)
    document.getElementById("trace").textContent = tail.join("\\n");
}

function renderCampaign(campaign, health) {
  const host = document.getElementById("campaign");
  if (!campaign || !campaign.available) { host.hidden = true; return; }
  host.hidden = false;
  const m = campaign.manifest;
  const rows = [];
  for (const exp of m.experiments)
    for (const p of exp.phases) {
      const lat = p.latency || {};
      rows.push("<tr><td>" + esc(exp.experiment) + "</td><td>"
        + esc(p.phase.split("|")[0]) + '</td><td class="num">'
        + (p.samples == null ? "\\u2013" : fmt(p.samples))
        + '</td><td class="num">' + fmt(p.completed)
        + '</td><td class="num">'
        + (p.remaining == null ? "\\u2013" : fmt(p.remaining))
        + '</td><td class="num">' + fmt(p.quarantined)
        + '</td><td class="num">'
        + (lat.p95_ms != null ? fmt(lat.p95_ms) : "")
        + "</td><td>" + esc(p.state) + "</td></tr>");
    }
  document.querySelector("#campaign-table tbody").innerHTML =
    rows.join("") || '<tr><td colspan="8" class="muted">no phases yet</td></tr>';
  const workers = m.workers || {};
  const names = Object.keys(workers).sort();
  const wtable = document.getElementById("campaign-workers");
  wtable.hidden = names.length === 0;
  const nowS = Date.now() / 1000;
  wtable.querySelector("tbody").innerHTML = names.map(name => {
    const w = workers[name];
    const beat = w.last_heartbeat_ts || w.last_ts;
    return "<tr><td>" + esc(name) + '</td><td class="num">'
      + (w.pid == null ? "\\u2013" : w.pid)
      + '</td><td class="num">' + fmt(w.claims)
      + '</td><td class="num">' + fmt(w.chunks_done)
      + '</td><td class="num">' + fmt(w.steals)
      + '</td><td class="num">' + fmt(w.heartbeats) + "</td><td>"
      + (beat ? (nowS - beat).toFixed(1) + "s ago" : "\\u2013")
      + "</td></tr>";
  }).join("");
  const t = m.totals;
  let meta = esc(m.root) + " \\u00b7 " + m.status + " \\u00b7 "
    + fmt(t.completed) + "/" + fmt(t.samples) + " samples";
  if (m.last_event_age_seconds != null)
    meta += " \\u00b7 last event " + m.last_event_age_seconds.toFixed(1)
      + "s ago";
  if (health.stalled_phase)
    meta += ' \\u00b7 <span class="stalled">stalled: '
      + esc(health.stalled_phase.split("|")[0]) + "</span>";
  for (const lease of m.stale_leases || [])
    meta += ' \\u00b7 <span class="stalled">stale lease '
      + lease.start + "\\u2013" + lease.end + " ("
      + esc(lease.owner || "torn") + ")</span>";
  document.getElementById("campaign-meta").innerHTML = meta;
}

function esc(text) {
  const div = document.createElement("div");
  div.textContent = text;
  return div.innerHTML;
}

poll();
setInterval(poll, 1000);
</script>
</body>
</html>
"""
