"""Typed simulator event tracing with Chrome ``trace_event`` export.

The :class:`Tracer` records events from the discrete-event engine into a
bounded ring buffer (oldest events are evicted once the capacity is hit, so
a long experiment cannot exhaust memory) and exports them either as Chrome's
``trace_event`` JSON — loadable in ``chrome://tracing`` or
https://ui.perfetto.dev — or as one-JSON-object-per-line JSONL for ad-hoc
scripting.

Timestamps are simulator core cycles, exported 1 cycle = 1 µs so Perfetto's
time axis reads directly in cycles. Events are grouped into three trace
"processes" so the viewer separates the pipeline stages:

* pid 0 (``sm``) — warp issue / compute / coalescing, tid = warp id;
* pid 1 (``interconnect``) — crossbar traversals, tid = output port;
* pid 2 (``dram``) — activate / column / burst, tid = partition id.

Successive kernel launches share one tracer; the engine offsets each
launch's cycles by the tracer's ``time_base`` so kernels appear end-to-end
on the timeline instead of overlapping at cycle zero.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.errors import ConfigurationError

__all__ = ["TraceEvent", "Tracer", "PID_SM", "PID_ICNT", "PID_DRAM"]

#: Trace-process ids (Chrome trace "pid") per simulated pipeline stage.
PID_SM = 0
PID_ICNT = 1
PID_DRAM = 2

_PROCESS_NAMES: Dict[int, str] = {
    PID_SM: "sm",
    PID_ICNT: "interconnect",
    PID_DRAM: "dram",
}

Number = Union[int, float]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One typed simulator event.

    ``ph`` follows the Chrome trace_event phase codes: ``"X"`` complete
    (has a duration), ``"i"`` instant. ``seq`` is the 1-based position in
    the tracer's recorded stream — monotonically increasing, so streaming
    consumers (the ``--serve`` sink) can drain incrementally with
    :meth:`Tracer.events_since`.
    """

    name: str
    cat: str
    ph: str
    ts: Number
    dur: Optional[Number] = None
    pid: int = PID_SM
    tid: int = 0
    args: Optional[Dict[str, object]] = None
    seq: int = 0

    def to_chrome(self) -> Dict[str, object]:
        event: Dict[str, object] = {
            "name": self.name, "cat": self.cat, "ph": self.ph,
            "ts": self.ts, "pid": self.pid, "tid": self.tid,
        }
        if self.ph == "X":
            event["dur"] = self.dur if self.dur is not None else 0
        if self.ph == "i":
            event["s"] = "t"  # thread-scoped instant marker
        if self.args:
            event["args"] = self.args
        return event


class Tracer:
    """A bounded ring buffer of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = 500_000):
        if capacity <= 0:
            raise ConfigurationError(
                f"trace capacity must be positive: {capacity}"
            )
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._recorded = 0
        #: Cycle offset applied by the engine to each new kernel launch.
        self.time_base = 0

    # -- recording ------------------------------------------------------------

    def complete(self, name: str, cat: str, ts: Number, dur: Number,
                 pid: int = PID_SM, tid: int = 0,
                 args: Optional[Dict[str, object]] = None) -> None:
        """Record a duration ("X") event."""
        self._recorded += 1
        # Positional construction: this is the hottest instrumented call
        # site (one per DRAM command and reply), and keyword binding on a
        # 9-field dataclass is measurable there.
        self._events.append(TraceEvent(name, cat, "X", ts, dur, pid, tid,
                                       args, self._recorded))

    def instant(self, name: str, cat: str, ts: Number,
                pid: int = PID_SM, tid: int = 0,
                args: Optional[Dict[str, object]] = None) -> None:
        """Record a point-in-time ("i") event."""
        self._recorded += 1
        self._events.append(TraceEvent(name, cat, "i", ts, None, pid, tid,
                                       args, self._recorded))

    def advance_time_base(self, cycles: Number, gap: Number = 1000) -> None:
        """Shift the origin for the next kernel past the finished one."""
        self.time_base += cycles + gap

    def merge(self, other: "Tracer") -> "Tracer":
        """Append another tracer's timeline after this one, in place.

        Used by the parallel runner to stitch per-worker traces back into
        one timeline: the other tracer's events are re-based onto this
        tracer's current ``time_base`` (each worker started from zero), and
        the time base advances past the merged span, so merging workers in
        sample order reproduces the end-to-end layout a serial run's
        ``advance_time_base`` calls would have produced. Returns ``self``.
        """
        base = self.time_base
        for event in other._events:
            self._recorded += 1
            # Re-sequence onto this tracer's stream so seq stays globally
            # monotonic for incremental consumers.
            self._events.append(replace(event, ts=event.ts + base,
                                        seq=self._recorded))
        # Events the worker's own ring buffer already evicted still count.
        self._recorded += other.dropped
        self.time_base += other.time_base
        return self

    # -- inspection -----------------------------------------------------------

    @property
    def events(self) -> Iterable[TraceEvent]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including evicted ones)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer."""
        return self._recorded - len(self._events)

    def categories(self) -> Set[str]:
        return {event.cat for event in self._events}

    def events_since(self, since: int = 0
                     ) -> Tuple[List[TraceEvent], int, int]:
        """Incrementally drain the ring buffer: events with ``seq > since``.

        Returns ``(events, next_since, dropped)``: the matching events in
        recording order, the cursor to pass on the next call (the last
        returned seq, or ``since`` unchanged when nothing new arrived), and
        the number of requested events the ring buffer already evicted
        (non-zero when the consumer polls slower than the producer records).

        Safe to call from another thread while the simulator records (the
        ``--serve`` sink does): the buffer snapshot is retried on the rare
        mutation-during-iteration race instead of locking the hot path.
        """
        events: List[TraceEvent] = []
        for _ in range(16):
            try:
                events = [e for e in self._events if e.seq > since]
                break
            except RuntimeError:  # deque mutated during iteration; retry
                continue
        if not events:
            return [], since, 0
        dropped = max(0, events[0].seq - since - 1)
        return events, events[-1].seq, dropped

    # -- export ---------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, object]:
        """The events as a Chrome ``trace_event`` JSON object."""
        events: List[Dict[str, object]] = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": process_name}}
            for pid, process_name in sorted(_PROCESS_NAMES.items())
        ]
        events.extend(event.to_chrome() for event in self._events)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "rcoal simulator",
                "time_unit": "1 trace us = 1 core cycle",
                "recorded": self._recorded,
                "dropped": self.dropped,
            },
        }

    def write_chrome_trace(self, path: str) -> str:
        """Write the Chrome trace JSON atomically; returns the path."""
        from repro.utils import atomic_write_text
        atomic_write_text(path, json.dumps(self.chrome_trace()))
        return path

    def write_jsonl(self, path: str) -> str:
        """Write one JSON object per event, atomically; returns the path."""
        from repro.utils import atomic_write_text
        lines = [json.dumps(event.to_chrome()) for event in self._events]
        atomic_write_text(path, "".join(line + "\n" for line in lines))
        return path
