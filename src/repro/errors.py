"""Exception hierarchy for the RCoal reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers embedding the library can catch a single base class. Sub-hierarchies
mirror the package layout: crypto errors, simulator errors, configuration
errors, and attack/analysis errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied.

    Raised, for example, when a GPU configuration requests zero memory
    partitions, or a subwarp policy asks for a number of subwarps that does
    not divide the warp width where required.
    """


class CryptoError(ReproError):
    """Base class for AES substrate errors."""


class KeySizeError(CryptoError, ValueError):
    """An AES key of unsupported length was supplied."""


class BlockSizeError(CryptoError, ValueError):
    """A plaintext or ciphertext block of the wrong length was supplied."""


class SimulationError(ReproError):
    """Base class for GPU simulator errors."""


class ProtocolError(SimulationError, RuntimeError):
    """A simulator component was driven out of its legal state sequence.

    For example: collecting statistics from an engine that has not run yet,
    or issuing a memory instruction on a warp that is already stalled.
    """


class ExperimentError(ReproError):
    """Base class for experiment-campaign execution errors.

    Raised by the resilient runner (supervision, checkpoint/resume) when a
    campaign cannot make progress. The CLI maps each subclass to a
    documented exit code in :mod:`repro.cli` (``EXIT_BY_ERROR``).
    """


class WorkerTimeoutError(ExperimentError):
    """A supervised worker chunk exceeded its wall-clock deadline.

    The supervisor reaps the hung pool, retries the chunk with backoff,
    and raises this only when the chunk keeps timing out past the retry
    budget.
    """


class WorkerCrashError(ExperimentError):
    """A supervised worker chunk raised or its process died.

    Wraps the underlying cause (an exception propagated from the worker,
    or a ``BrokenProcessPool`` when the process was killed outright).
    """


class CheckpointMismatchError(ExperimentError):
    """A ``--resume`` directory was recorded under a different campaign.

    The checkpoint fingerprint (experiment id, root seed, sample count,
    config hash, ``REPRO_FAST``/``REPRO_SAMPLES`` context, instrumentation)
    must match exactly: resuming under different knobs would silently mix
    results from two different campaigns.
    """


class AttackError(ReproError):
    """Base class for attack-framework errors."""


class InsufficientSamplesError(AttackError, ValueError):
    """Too few timing samples were provided to compute a correlation."""


class AnalysisError(ReproError):
    """Base class for theoretical-analysis errors."""
