"""Exception hierarchy for the RCoal reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers embedding the library can catch a single base class. Sub-hierarchies
mirror the package layout: crypto errors, simulator errors, configuration
errors, and attack/analysis errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied.

    Raised, for example, when a GPU configuration requests zero memory
    partitions, or a subwarp policy asks for a number of subwarps that does
    not divide the warp width where required.
    """


class CryptoError(ReproError):
    """Base class for AES substrate errors."""


class KeySizeError(CryptoError, ValueError):
    """An AES key of unsupported length was supplied."""


class BlockSizeError(CryptoError, ValueError):
    """A plaintext or ciphertext block of the wrong length was supplied."""


class SimulationError(ReproError):
    """Base class for GPU simulator errors."""


class ProtocolError(SimulationError, RuntimeError):
    """A simulator component was driven out of its legal state sequence.

    For example: collecting statistics from an engine that has not run yet,
    or issuing a memory instruction on a warp that is already stalled.
    """


class AttackError(ReproError):
    """Base class for attack-framework errors."""


class InsufficientSamplesError(AttackError, ValueError):
    """Too few timing samples were provided to compute a correlation."""


class AnalysisError(ReproError):
    """Base class for theoretical-analysis errors."""
