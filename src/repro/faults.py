"""Deterministic fault injection for resilience testing.

The supervisor, checkpoint/resume, and crash-safe artifact layers all need
to be exercised against worker crashes, hangs, process kills, and torn
file writes — *deterministically*, so the chaos CI job never flakes and a
failing case replays bit-identically. A :class:`FaultPlan` is a small,
picklable description of which faults fire where:

* **sample faults** (``raise``, ``hang``, ``exit``) fire when a worker is
  about to simulate a given sample index, gated on the supervisor-assigned
  *attempt* number of the work item — a spec with ``xN`` fires on the
  first ``N`` attempts (a transient fault that a retry survives), while
  ``x*`` fires on every attempt (a deterministic poison sample that must
  be quarantined);
* **torn-write faults** (``torn``) fire inside
  :func:`repro.utils.atomic_write_bytes` for matching file names: half the
  payload is written to the temp file and :class:`TornWriteError` is
  raised *before* the atomic rename, modelling a crash mid-write. The
  destination must be untouched — that is the property the atomic writer
  exists to provide.
* **lease faults** (any kind at the literal target ``lease``) fire at a
  shard worker's lease sites (``rcoal shard``): ``torn@lease`` tears the
  lease-file write (peers must treat the torn file like a torn ledger
  tail — stale, reclaimable), ``hang@lease`` blocks the worker right
  after it claims (heartbeats stop, peers reclaim after the deadline),
  ``exit@lease`` kills the worker process mid-lease (the SIGKILL model),
  ``raise@lease`` crashes it with a traceback, and ``steal@lease``
  expires the worker's own lease while it keeps working — forcing the
  stolen-lease double-commit path that idempotence must absorb.

Plan syntax (the ``--faults`` CLI flag)::

    plan   := spec ("," spec)*
    spec   := kind "@" target ["x" times]
    kind   := "raise" | "hang" | "exit" | "torn" | "steal"
    target := <sample index> | "rand" | "lease"
              | <file name glob>                 (glob: torn only;
                                                  "lease": shard only)
    times  := <positive int> | "*"                          (default 1)

Examples: ``raise@3`` (sample 3 fails once, a retry succeeds),
``raise@5x*`` (sample 5 is poison), ``hang@0`` (the chunk holding sample 0
hangs until the deadline reaps it), ``exit@2`` (the worker process holding
sample 2 dies without a traceback), ``torn@out.json`` (the first write of
``out.json`` tears). A ``rand`` target resolves to a concrete sample via
the seeded ``"faults"`` RNG stream when the plan is bound to a campaign
(:meth:`FaultPlan.bind`), so "kill the campaign at a random sample" is
still replayable.

No fault involves a timer: hangs block forever and are reaped by the
supervisor's deadline, everything else is immediate.
"""

from __future__ import annotations

import fnmatch
import os
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "TornWriteError",
    "parse_fault_plan",
    "install_plan",
    "active_plan",
]

SAMPLE_KINDS = ("raise", "hang", "exit")
KINDS = SAMPLE_KINDS + ("torn", "steal")

#: The literal target that aims a fault at a shard worker's lease sites.
LEASE_TARGET = "lease"

#: Exit status used by ``exit`` faults; distinctive in worker post-mortems.
EXIT_STATUS = 117


class InjectedFault(ReproError):
    """An injected worker fault fired (the ``raise`` kind, and ``hang``/
    ``exit`` when translated to a raise for in-process execution)."""


class TornWriteError(InjectedFault):
    """An injected torn write fired mid-:func:`atomic_write_bytes`."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: ``kind`` at ``target``, firing on the first ``times``
    attempts (``None`` = every attempt)."""

    kind: str
    target: str
    times: Optional[int] = 1

    def describe(self) -> str:
        times = "*" if self.times is None else str(self.times)
        suffix = "" if self.times == 1 else f"x{times}"
        return f"{self.kind}@{self.target}{suffix}"

    def fires_on(self, attempt: int) -> bool:
        return self.times is None or attempt < self.times


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of :class:`FaultSpec` entries.

    Travels to worker processes inside task payloads; the supervisor
    passes the work item's attempt number explicitly, so firing decisions
    are pure functions of ``(spec, sample, attempt)`` — no shared state,
    no clocks.
    """

    specs: Tuple[FaultSpec, ...] = ()

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self.specs)

    def bind(self, num_samples: int, root_seed: int) -> "FaultPlan":
        """Resolve ``rand`` targets to concrete sample indices.

        Uses the dedicated ``"faults"`` RNG stream of the campaign seed,
        so "a random sample" is still the *same* sample on every rerun.
        Idempotent for plans without ``rand`` targets.
        """
        if not any(spec.target == "rand" for spec in self.specs):
            return self
        from repro.rng import RngStream

        stream = RngStream(root_seed, "faults")
        resolved = []
        for spec in self.specs:
            if spec.target == "rand":
                index = int(stream.integers(0, max(1, num_samples)))
                spec = FaultSpec(spec.kind, str(index), spec.times)
            resolved.append(spec)
        return FaultPlan(tuple(resolved))

    # -- sample-site faults ---------------------------------------------------

    def sample_specs(self, index: int):
        text = str(index)
        return [spec for spec in self.specs
                if spec.kind in SAMPLE_KINDS and spec.target == text]

    def maybe_fire_sample(self, index: int, attempt: int,
                          in_worker: bool) -> None:
        """Fire any matching sample fault; called before simulating
        ``index`` on work-item attempt ``attempt``.

        ``in_worker`` distinguishes a supervised worker process (where
        ``hang`` really blocks and ``exit`` really kills) from in-process
        execution (the serial path and the degraded-to-serial fallback),
        where both are translated to an immediate :class:`InjectedFault` —
        an in-process hang would wedge the supervisor itself.
        """
        for spec in self.sample_specs(index):
            if not spec.fires_on(attempt):
                continue
            if spec.kind == "raise" or not in_worker:
                raise InjectedFault(
                    f"injected fault {spec.describe()} on sample {index} "
                    f"(attempt {attempt})"
                )
            if spec.kind == "exit":
                os._exit(EXIT_STATUS)
            # hang: block forever; the chunk deadline reaps the worker.
            threading.Event().wait()

    # -- lease-site faults (rcoal shard) --------------------------------------

    def lease_write_torn(self) -> Optional[FaultSpec]:
        """The ``torn@lease`` spec whose budget remains, if any; consumes
        one firing. Checked inside the shard lease-file writer."""
        return self._consume_lease(("torn",))

    def lease_claim_fault(self) -> Optional[FaultSpec]:
        """The next due ``raise``/``hang``/``exit``/``steal`` lease fault,
        if any; consumes one firing. Checked right after a shard worker
        wins a lease claim — the caller acts the kind out (the lease layer
        owns the semantics, unlike sample faults which fire here)."""
        return self._consume_lease(SAMPLE_KINDS + ("steal",))

    def _consume_lease(self, kinds: Tuple[str, ...]) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.target != LEASE_TARGET or spec.kind not in kinds:
                continue
            fired = _LEASE_FIRES.get(spec, 0)
            if spec.times is None or fired < spec.times:
                _LEASE_FIRES[spec] = fired + 1
                return spec
        return None

    # -- write-site faults ----------------------------------------------------

    def torn_write_fires(self, name: str) -> Optional[FaultSpec]:
        """The torn spec matching file ``name`` whose budget remains, if
        any. Consumes one firing from the per-process budget."""
        for spec in self.specs:
            if spec.kind != "torn" or spec.target == LEASE_TARGET \
                    or not fnmatch.fnmatch(name, spec.target):
                continue
            fired = _WRITE_FIRES.get(spec, 0)
            if spec.times is None or fired < spec.times:
                _WRITE_FIRES[spec] = fired + 1
                return spec
        return None


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse ``--faults`` syntax (see the module docstring) into a plan."""
    specs = []
    for raw in text.split(","):
        raw = raw.strip()
        if not raw:
            continue
        kind, sep, rest = raw.partition("@")
        if not sep or kind not in KINDS or not rest:
            raise ConfigurationError(
                f"invalid fault spec {raw!r}: expected kind@target[xN|x*] "
                f"with kind in {'/'.join(KINDS)}"
            )
        target, times = rest, 1
        if "x" in rest:
            head, _, tail = rest.rpartition("x")
            if tail == "*":
                target, times = head, None
            elif tail.isdigit() and int(tail) > 0:
                target, times = head, int(tail)
            # otherwise the x belongs to the target (e.g. a file glob)
        if kind == "steal" and target != LEASE_TARGET:
            raise ConfigurationError(
                f"invalid fault spec {raw!r}: steal targets 'lease' only"
            )
        if kind in SAMPLE_KINDS and target not in ("rand", LEASE_TARGET) \
                and not target.isdigit():
            raise ConfigurationError(
                f"invalid fault spec {raw!r}: {kind} targets a sample "
                f"index, 'rand', or 'lease'"
            )
        specs.append(FaultSpec(kind, target, times))
    if not specs:
        raise ConfigurationError(f"empty fault plan {text!r}")
    return FaultPlan(tuple(specs))


# ---------------------------------------------------------------------------
# Process-wide plan, consulted by write sites (atomic_write_bytes). Sample
# faults travel explicitly in worker payloads instead: firing there depends
# on the supervisor's attempt numbering, never on process-global state.
# ---------------------------------------------------------------------------

_ACTIVE_PLAN: Optional[FaultPlan] = None
_WRITE_FIRES: Dict[FaultSpec, int] = {}
_LEASE_FIRES: Dict[FaultSpec, int] = {}


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or clear, with ``None``) the process-wide fault plan and
    reset the torn-write and lease-site budgets."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    _WRITE_FIRES.clear()
    _LEASE_FIRES.clear()


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE_PLAN
