"""Rijndael S-box construction from GF(2^8) arithmetic.

Rather than embedding the 256-byte table as opaque constants, the S-box is
derived here from first principles — multiplicative inversion in
GF(2^8)/(x^8+x^4+x^3+x+1) followed by the affine transform — and the test
suite checks the construction against FIPS-197 reference values. This keeps
the substrate self-contained and auditable.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "GF_MODULUS",
    "gf_mul",
    "gf_inverse",
    "xtime",
    "SBOX",
    "INV_SBOX",
]

#: The AES field modulus x^8 + x^4 + x^3 + x + 1, as a bit mask.
GF_MODULUS = 0x11B

#: Affine transform constant added after inversion (FIPS-197 section 5.1.1).
_AFFINE_CONSTANT = 0x63


def xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= GF_MODULUS
    return value & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Carry-less multiplication of ``a`` and ``b`` modulo the AES polynomial."""
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        a = xtime(a)
        b >>= 1
    return result


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); by convention ``inverse(0) == 0``.

    Computed as ``a^254`` (Fermat in GF(2^8): a^255 = 1 for a != 0) via
    square-and-multiply.
    """
    if a == 0:
        return 0
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = gf_mul(result, power)
        power = gf_mul(power, power)
        exponent >>= 1
    return result


def _affine(value: int) -> int:
    """The FIPS-197 affine transform: b ^ rot1 ^ rot2 ^ rot3 ^ rot4 ^ 0x63."""
    def rotl8(x: int, shift: int) -> int:
        return ((x << shift) | (x >> (8 - shift))) & 0xFF

    return (
        value
        ^ rotl8(value, 1)
        ^ rotl8(value, 2)
        ^ rotl8(value, 3)
        ^ rotl8(value, 4)
        ^ _AFFINE_CONSTANT
    )


def _build_sbox() -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    forward: List[int] = [0] * 256
    inverse: List[int] = [0] * 256
    for x in range(256):
        s = _affine(gf_inverse(x))
        forward[x] = s
        inverse[s] = x
    return tuple(forward), tuple(inverse)


#: The Rijndael substitution box and its inverse.
SBOX, INV_SBOX = _build_sbox()
