"""Reference AES-128 block cipher (FIPS-197 formulation).

This is the ground-truth implementation: SubBytes / ShiftRows / MixColumns /
AddRoundKey on a column-major 4x4 state. The GPU-style T-table formulation in
:mod:`repro.aes.ttable` is verified against it.
"""

from __future__ import annotations

from typing import List

from repro.aes.key_schedule import NUM_ROUNDS, expand_key
from repro.aes.sbox import INV_SBOX, SBOX, gf_mul
from repro.errors import BlockSizeError

__all__ = ["BLOCK_BYTES", "encrypt_block", "decrypt_block"]

#: AES block size in bytes.
BLOCK_BYTES = 16

# State layout: state[r][c] with input byte i mapped to state[i % 4][i // 4].


def _bytes_to_state(block: bytes) -> List[List[int]]:
    if len(block) != BLOCK_BYTES:
        raise BlockSizeError(f"AES blocks are 16 bytes, got {len(block)}")
    return [[block[r + 4 * c] for c in range(4)] for r in range(4)]


def _state_to_bytes(state: List[List[int]]) -> bytes:
    return bytes(state[i % 4][i // 4] for i in range(BLOCK_BYTES))


def _add_round_key(state: List[List[int]], round_key: bytes) -> None:
    for c in range(4):
        for r in range(4):
            state[r][c] ^= round_key[4 * c + r]


def _sub_bytes(state: List[List[int]], box) -> None:
    for r in range(4):
        for c in range(4):
            state[r][c] = box[state[r][c]]


def _shift_rows(state: List[List[int]]) -> None:
    for r in range(1, 4):
        state[r] = state[r][r:] + state[r][:r]


def _inv_shift_rows(state: List[List[int]]) -> None:
    for r in range(1, 4):
        state[r] = state[r][-r:] + state[r][:-r]


def _mix_columns(state: List[List[int]]) -> None:
    for c in range(4):
        a = [state[r][c] for r in range(4)]
        state[0][c] = gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3]
        state[1][c] = a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3]
        state[2][c] = a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3)
        state[3][c] = gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2)


def _inv_mix_columns(state: List[List[int]]) -> None:
    for c in range(4):
        a = [state[r][c] for r in range(4)]
        state[0][c] = (gf_mul(a[0], 14) ^ gf_mul(a[1], 11)
                       ^ gf_mul(a[2], 13) ^ gf_mul(a[3], 9))
        state[1][c] = (gf_mul(a[0], 9) ^ gf_mul(a[1], 14)
                       ^ gf_mul(a[2], 11) ^ gf_mul(a[3], 13))
        state[2][c] = (gf_mul(a[0], 13) ^ gf_mul(a[1], 9)
                       ^ gf_mul(a[2], 14) ^ gf_mul(a[3], 11))
        state[3][c] = (gf_mul(a[0], 11) ^ gf_mul(a[1], 13)
                       ^ gf_mul(a[2], 9) ^ gf_mul(a[3], 14))


def encrypt_block(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128."""
    round_keys = expand_key(key)
    state = _bytes_to_state(plaintext)
    _add_round_key(state, round_keys[0])
    for round_index in range(1, NUM_ROUNDS):
        _sub_bytes(state, SBOX)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[round_index])
    _sub_bytes(state, SBOX)
    _shift_rows(state)
    _add_round_key(state, round_keys[NUM_ROUNDS])
    return _state_to_bytes(state)


def decrypt_block(ciphertext: bytes, key: bytes) -> bytes:
    """Decrypt one 16-byte block with AES-128."""
    round_keys = expand_key(key)
    state = _bytes_to_state(ciphertext)
    _add_round_key(state, round_keys[NUM_ROUNDS])
    _inv_shift_rows(state)
    _sub_bytes(state, INV_SBOX)
    for round_index in range(NUM_ROUNDS - 1, 0, -1):
        _add_round_key(state, round_keys[round_index])
        _inv_mix_columns(state)
        _inv_shift_rows(state)
        _sub_bytes(state, INV_SBOX)
    _add_round_key(state, round_keys[0])
    return _state_to_bytes(state)
