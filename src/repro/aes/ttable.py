"""T-table AES-128 with per-round memory-lookup traces.

GPU AES kernels express each main round as 16 table lookups (4 per output
column, one into each of T0..T3) and the last round as 16 lookups into T4.
Each lookup is a global-memory load executed in lockstep by every thread of a
warp — exactly the loads the coalescing unit merges.

:class:`TTableAES` performs the encryption this way and records, per round,
the ordered list of ``(table_id, index)`` lookups a thread issues. A warp's
k-th load instruction of a round gathers the k-th entry of each of its 32
threads' traces; the coalescer then merges them. The last-round trace is
ordered by ciphertext byte position ``j`` so that it aligns byte-for-byte
with the attack's Equation 3 inversion (``t_j = InvS[c_j ^ k_j]``).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.aes.cipher import BLOCK_BYTES
from repro.aes.key_schedule import NUM_ROUNDS, expand_key
from repro.aes.tables import LAST_ROUND_TABLE_ID, ROUND_TABLES, T4
from repro.errors import BlockSizeError

__all__ = ["Lookup", "RoundTrace", "EncryptionTrace", "TTableAES",
           "LOOKUPS_PER_ROUND"]

#: A single table lookup: (table id 0..4, table index 0..255).
Lookup = Tuple[int, int]

#: Every AES round issues 16 table lookups per thread.
LOOKUPS_PER_ROUND = 16


@dataclass(frozen=True)
class RoundTrace:
    """The ordered lookups one thread issues in one round."""

    round_index: int
    lookups: Tuple[Lookup, ...]

    def __post_init__(self) -> None:
        if len(self.lookups) != LOOKUPS_PER_ROUND:
            raise ValueError(
                f"round {self.round_index} trace has {len(self.lookups)} "
                f"lookups, expected {LOOKUPS_PER_ROUND}"
            )

    @property
    def indices(self) -> Tuple[int, ...]:
        """Just the table indices, in instruction order."""
        return tuple(index for _, index in self.lookups)


@dataclass(frozen=True)
class EncryptionTrace:
    """Full lookup trace of one thread encrypting one 16-byte line."""

    ciphertext: bytes
    rounds: Tuple[RoundTrace, ...]

    @property
    def last_round(self) -> RoundTrace:
        """The T4 round — the attack's target."""
        return self.rounds[-1]

    @property
    def total_lookups(self) -> int:
        return sum(len(r.lookups) for r in self.rounds)


# Traces depend only on (key, plaintext) — never on the coalescing policy —
# so experiments that encrypt the same plaintext batch under many policies
# share one trace computation. LRU-bounded; traces are immutable and safe to
# share. Size override: REPRO_TRACE_CACHE (entries; 0 disables).
_TRACE_CACHE: "OrderedDict[Tuple[bytes, bytes], EncryptionTrace]" = \
    OrderedDict()
_TRACE_CACHE_CAPACITY = int(os.environ.get("REPRO_TRACE_CACHE", "40000"))


def clear_trace_cache() -> None:
    """Drop all memoized encryption traces (mainly for tests)."""
    _TRACE_CACHE.clear()


class TTableAES:
    """AES-128 encryption via T-table lookups, with trace recording.

    Parameters
    ----------
    key:
        16-byte AES-128 master key.
    """

    def __init__(self, key: bytes):
        self._key = bytes(key)
        self._round_keys = expand_key(key)

    @property
    def key(self) -> bytes:
        """The master key (victim-internal; the batched core re-expands
        it for its vectorized encryption)."""
        return self._key

    @property
    def last_round_key(self) -> bytes:
        """The round-10 key (what the correlation attack recovers)."""
        return self._round_keys[NUM_ROUNDS]

    def encrypt(self, plaintext: bytes) -> EncryptionTrace:
        """Encrypt one block, returning ciphertext plus the lookup trace."""
        if len(plaintext) != BLOCK_BYTES:
            raise BlockSizeError(
                f"AES blocks are 16 bytes, got {len(plaintext)}"
            )
        cache_key: Optional[Tuple[bytes, bytes]] = None
        if _TRACE_CACHE_CAPACITY > 0:
            cache_key = (self._key, bytes(plaintext))
            cached = _TRACE_CACHE.get(cache_key)
            if cached is not None:
                _TRACE_CACHE.move_to_end(cache_key)
                return cached
        # State as 4 rows x 4 columns, column-major input mapping.
        state = [[plaintext[r + 4 * c] ^ self._round_keys[0][4 * c + r]
                  for c in range(4)] for r in range(4)]

        round_traces: List[RoundTrace] = []
        for round_index in range(1, NUM_ROUNDS):
            state, lookups = self._main_round(state,
                                              self._round_keys[round_index])
            round_traces.append(RoundTrace(round_index, tuple(lookups)))

        ciphertext, lookups = self._last_round(state,
                                               self._round_keys[NUM_ROUNDS])
        round_traces.append(RoundTrace(NUM_ROUNDS, tuple(lookups)))
        trace = EncryptionTrace(bytes(ciphertext), tuple(round_traces))
        if cache_key is not None:
            _TRACE_CACHE[cache_key] = trace
            if len(_TRACE_CACHE) > _TRACE_CACHE_CAPACITY:
                _TRACE_CACHE.popitem(last=False)
        return trace

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _main_round(state: List[List[int]], round_key: bytes
                    ) -> Tuple[List[List[int]], List[Lookup]]:
        """One T-table round: 16 lookups (4 columns x tables T0..T3).

        Unrolled over the four tables: this runs once per round per
        plaintext line (9216 times for a 1024-line launch), making it one
        of the hottest pure-Python loops outside the timing engine.
        """
        lookups: List[Lookup] = []
        append = lookups.append
        row0, row1, row2, row3 = state
        t0, t1, t2, t3 = ROUND_TABLES
        new_state = [[0] * 4 for _ in range(4)]
        for c in range(4):
            i0 = row0[c]
            i1 = row1[(c + 1) % 4]
            i2 = row2[(c + 2) % 4]
            i3 = row3[(c + 3) % 4]
            append((0, i0))
            append((1, i1))
            append((2, i2))
            append((3, i3))
            e0 = t0[i0]
            e1 = t1[i1]
            e2 = t2[i2]
            e3 = t3[i3]
            k = 4 * c
            for r in range(4):
                new_state[r][c] = (round_key[k + r] ^ e0[r] ^ e1[r]
                                   ^ e2[r] ^ e3[r])
        return new_state, lookups

    @staticmethod
    def _last_round(state: List[List[int]], round_key: bytes
                    ) -> Tuple[List[int], List[Lookup]]:
        """Final round: 16 T4 lookups, one per ciphertext byte j = 0..15."""
        lookups: List[Lookup] = []
        ciphertext = [0] * BLOCK_BYTES
        for j in range(BLOCK_BYTES):
            r, c = j % 4, j // 4
            index = state[r][(c + r) % 4]
            lookups.append((LAST_ROUND_TABLE_ID, index))
            ciphertext[j] = T4[index][r] ^ round_key[4 * c + r]
        return ciphertext, lookups


def last_round_indices(trace: EncryptionTrace) -> Tuple[int, ...]:
    """Convenience: the 16 T4 indices (t_0..t_15) of a trace."""
    return trace.last_round.indices
