"""AES-128 key expansion and its inverse.

The baseline attack recovers the **last round key** (round 10). That is as
good as the master key because the key schedule is invertible: given any
round key and its round number, :func:`recover_master_key` walks the schedule
backwards (Neve & Seifert; paper Section II-C). The test suite round-trips
random keys through expansion and inversion.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.aes.sbox import SBOX
from repro.errors import KeySizeError

__all__ = [
    "NUM_ROUNDS",
    "ROUND_KEY_BYTES",
    "expand_key",
    "last_round_key",
    "recover_master_key",
    "rcon",
]

#: AES-128 encrypts in 10 rounds.
NUM_ROUNDS = 10

#: Every round key is 16 bytes (four 32-bit words).
ROUND_KEY_BYTES = 16

_WORDS_PER_KEY = 4


def rcon(i: int) -> int:
    """Round constant: x^(i-1) in GF(2^8), for i >= 1."""
    if i < 1:
        raise ValueError(f"rcon index must be >= 1, got {i}")
    value = 1
    for _ in range(i - 1):
        value <<= 1
        if value & 0x100:
            value ^= 0x11B
    return value & 0xFF


def _sub_word(word: Tuple[int, int, int, int]) -> Tuple[int, int, int, int]:
    return tuple(SBOX[b] for b in word)  # type: ignore[return-value]


def _rot_word(word: Tuple[int, int, int, int]) -> Tuple[int, int, int, int]:
    return word[1:] + word[:1]


def _xor_words(a: Sequence[int], b: Sequence[int]) -> Tuple[int, ...]:
    return tuple(x ^ y for x, y in zip(a, b))


def expand_key(key: bytes) -> List[bytes]:
    """Expand a 16-byte AES-128 key into 11 round keys (round 0..10)."""
    if len(key) != ROUND_KEY_BYTES:
        raise KeySizeError(
            f"AES-128 requires a 16-byte key, got {len(key)} bytes"
        )
    words: List[Tuple[int, ...]] = [
        tuple(key[4 * i: 4 * i + 4]) for i in range(_WORDS_PER_KEY)
    ]
    for i in range(_WORDS_PER_KEY, _WORDS_PER_KEY * (NUM_ROUNDS + 1)):
        temp = words[i - 1]
        if i % _WORDS_PER_KEY == 0:
            temp = _sub_word(_rot_word(temp))
            temp = (temp[0] ^ rcon(i // _WORDS_PER_KEY),) + temp[1:]
        words.append(_xor_words(words[i - _WORDS_PER_KEY], temp))

    round_keys = []
    for round_index in range(NUM_ROUNDS + 1):
        start = round_index * _WORDS_PER_KEY
        flat = bytes(
            b for word in words[start:start + _WORDS_PER_KEY] for b in word
        )
        round_keys.append(flat)
    return round_keys


def last_round_key(key: bytes) -> bytes:
    """The round-10 key — the attack's target — for a given master key."""
    return expand_key(key)[NUM_ROUNDS]


def recover_master_key(round_key: bytes, round_index: int = NUM_ROUNDS) -> bytes:
    """Invert the key schedule from any round key back to the master key.

    Parameters
    ----------
    round_key:
        The 16-byte key of round ``round_index``.
    round_index:
        Which round the key belongs to (defaults to the last round, which is
        what the correlation attack recovers).
    """
    if len(round_key) != ROUND_KEY_BYTES:
        raise KeySizeError(
            f"round keys are 16 bytes, got {len(round_key)} bytes"
        )
    if not 0 <= round_index <= NUM_ROUNDS:
        raise ValueError(f"round index out of range: {round_index}")

    words: List[Tuple[int, ...]] = [
        tuple(round_key[4 * i: 4 * i + 4]) for i in range(_WORDS_PER_KEY)
    ]
    # words currently holds words [4r .. 4r+3]; walk back to [0..3].
    first = round_index * _WORDS_PER_KEY
    for i in range(first + _WORDS_PER_KEY - 1, _WORDS_PER_KEY - 1, -1):
        # Invert: words[i] = words[i-4] ^ f(words[i-1])
        # We know words[i] and words[i-1]; recover words[i-4].
        current = words[i - first]
        previous = words[i - 1 - first] if i - 1 >= first else None
        if previous is None:
            raise AssertionError("window underflow during inversion")
        if i % _WORDS_PER_KEY == 0:
            temp = _sub_word(_rot_word(previous))
            temp = (temp[0] ^ rcon(i // _WORDS_PER_KEY),) + temp[1:]
        else:
            temp = previous
        recovered = _xor_words(current, temp)
        words.insert(0, recovered)
        first -= 1

    master = bytes(b for word in words[:_WORDS_PER_KEY] for b in word)
    return master
