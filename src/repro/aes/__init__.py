"""AES-128 substrate.

The RCoal evaluation targets the GPU AES-128 implementation attacked by
Jiang et al. (HPCA 2016). This subpackage provides everything that
implementation needs:

* :mod:`repro.aes.sbox` — the Rijndael S-box and inverse, derived from
  GF(2^8) arithmetic rather than hard-coded;
* :mod:`repro.aes.tables` — the T0..T3 round tables and the T4 last-round
  table, plus their memory layout (the coalescing target);
* :mod:`repro.aes.key_schedule` — key expansion and its inverse (the attack
  recovers the *last round key*; invertibility is what makes that equivalent
  to recovering the master key);
* :mod:`repro.aes.cipher` — a reference FIPS-197 implementation;
* :mod:`repro.aes.ttable` — the T-table formulation used on GPUs, recording
  the per-round table-lookup indices each thread generates;
* :mod:`repro.aes.modes` — multi-line plaintext encryption (one 16-byte line
  per GPU thread).
"""

from repro.aes.cipher import decrypt_block, encrypt_block
from repro.aes.key_schedule import (
    expand_key,
    last_round_key,
    recover_master_key,
)
from repro.aes.modes import decrypt_lines, encrypt_lines, split_lines
from repro.aes.sbox import INV_SBOX, SBOX
from repro.aes.tables import (
    BLOCK_BYTES,
    ENTRIES_PER_BLOCK,
    ENTRY_BYTES,
    NUM_TABLE_BLOCKS,
    TABLE_ENTRIES,
    block_of_index,
)
from repro.aes.ttable import TTableAES, EncryptionTrace, RoundTrace

__all__ = [
    "SBOX",
    "INV_SBOX",
    "expand_key",
    "last_round_key",
    "recover_master_key",
    "encrypt_block",
    "decrypt_block",
    "encrypt_lines",
    "decrypt_lines",
    "split_lines",
    "TTableAES",
    "EncryptionTrace",
    "RoundTrace",
    "ENTRY_BYTES",
    "BLOCK_BYTES",
    "ENTRIES_PER_BLOCK",
    "NUM_TABLE_BLOCKS",
    "TABLE_ENTRIES",
    "block_of_index",
]
