"""Embedded AES-128 known-answer test vectors.

Sources: FIPS-197 Appendix B/C and the NIST AESAVS known-answer tests. These
anchor the substrate: if the reference cipher matches them and the T-table
cipher matches the reference cipher, the lookup traces driving the whole
evaluation are faithful to real AES.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["KnownAnswer", "KNOWN_ANSWERS", "FIPS197_EXPANDED_KEY_FIRST_WORDS",
           "SBOX_SPOT_CHECKS"]


@dataclass(frozen=True)
class KnownAnswer:
    """One (key, plaintext, ciphertext) known-answer triple."""

    name: str
    key: bytes
    plaintext: bytes
    ciphertext: bytes


KNOWN_ANSWERS: Tuple[KnownAnswer, ...] = (
    KnownAnswer(
        name="fips197-appendix-b",
        key=bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
        plaintext=bytes.fromhex("3243f6a8885a308d313198a2e0370734"),
        ciphertext=bytes.fromhex("3925841d02dc09fbdc118597196a0b32"),
    ),
    KnownAnswer(
        name="fips197-appendix-c1",
        key=bytes.fromhex("000102030405060708090a0b0c0d0e0f"),
        plaintext=bytes.fromhex("00112233445566778899aabbccddeeff"),
        ciphertext=bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a"),
    ),
    KnownAnswer(
        name="aesavs-gfsbox-1",
        key=bytes(16),
        plaintext=bytes.fromhex("f34481ec3cc627bacd5dc3fb08f273e6"),
        ciphertext=bytes.fromhex("0336763e966d92595a567cc9ce537f5e"),
    ),
    KnownAnswer(
        name="aesavs-keysbox-1",
        key=bytes.fromhex("10a58869d74be5a374cf867cfb473859"),
        plaintext=bytes(16),
        ciphertext=bytes.fromhex("6d251e6944b051e04eaa6fb4dbf78465"),
    ),
    KnownAnswer(
        name="aesavs-vartxt-128",
        key=bytes(16),
        plaintext=bytes.fromhex("ffffffffffffffffffffffffffffffff"),
        ciphertext=bytes.fromhex("3f5b8cc9ea855a0afa7347d23e8d664e"),
    ),
)

#: First round-1 words of the FIPS-197 Appendix A expansion of
#: 2b7e151628aed2a6abf7158809cf4f3c, as (round, word-index, value) triples.
FIPS197_EXPANDED_KEY_FIRST_WORDS: Tuple[Tuple[int, int, int], ...] = (
    (1, 0, 0xA0FAFE17),
    (1, 1, 0x88542CB1),
    (1, 2, 0x23A33939),
    (1, 3, 0x2A6C7605),
    (10, 0, 0xD014F9A8),
    (10, 1, 0xC9EE2589),
    (10, 2, 0xE13F0CC8),
    (10, 3, 0xB6630CA6),
)

#: Classic S-box spot values (FIPS-197 figure 7).
SBOX_SPOT_CHECKS: Tuple[Tuple[int, int], ...] = (
    (0x00, 0x63),
    (0x01, 0x7C),
    (0x53, 0xED),
    (0x10, 0xCA),
    (0xFF, 0x16),
    (0x9A, 0xB8),
)
