"""Vectorized T-table AES-128 over whole plaintext batches.

:class:`repro.aes.ttable.TTableAES` encrypts one 16-byte line at a time in
pure Python — fine for one launch, but the batched simulation core
(:mod:`repro.gpu.batched`) needs the ciphertexts *and* the per-round table
indices of thousands of lines at once. This module performs the identical
computation as numpy array operations over a ``(num_lines, 16)`` uint8
matrix: ~52 vector steps (9 main rounds x 4 columns + 16 last-round bytes)
regardless of batch size.

The lookup *order* is preserved exactly: main-round lookup ``k`` hits table
``k % 4`` (the unrolled T0..T3 cycle of ``TTableAES._main_round``), the
last round's lookup ``j`` is the T4 read producing ciphertext byte ``j``.
``encrypt_batch(key, lines)[n]`` therefore equals the scalar trace of line
``n`` byte for byte — a property the parity tests pin against
:class:`TTableAES` directly.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.aes.key_schedule import NUM_ROUNDS, expand_key
from repro.aes.tables import ROUND_TABLES, T4
from repro.aes.ttable import LOOKUPS_PER_ROUND
from repro.errors import BlockSizeError

__all__ = ["encrypt_batch", "table_id_grid"]

#: (10, 16) table id of lookup ``k`` in round ``r``: rounds 1..9 cycle
#: T0..T3 (one lookup into each per output column), round 10 is all T4.
_TABLE_ID_GRID = np.array(
    [[k % 4 for k in range(LOOKUPS_PER_ROUND)]] * (NUM_ROUNDS - 1)
    + [[4] * LOOKUPS_PER_ROUND],
    dtype=np.int64,
)

#: (5, 256, 4) uint8: byte ``r`` of entry ``i`` of table ``t``.
_TABLE_BYTES: np.ndarray = np.array(
    [[entry for entry in table] for table in ROUND_TABLES + (T4,)],
    dtype=np.uint8,
)

_KEY_CACHE: Dict[bytes, np.ndarray] = {}


def table_id_grid() -> np.ndarray:
    """The (rounds, lookups) -> table id grid (read-only view)."""
    return _TABLE_ID_GRID


def _round_keys(key: bytes) -> np.ndarray:
    """The expanded key as a (11, 16) uint8 matrix (memoized per key)."""
    cached = _KEY_CACHE.get(key)
    if cached is None:
        cached = np.array([list(rk) for rk in expand_key(key)],
                          dtype=np.uint8)
        if len(_KEY_CACHE) > 64:  # a run touches a handful of keys
            _KEY_CACHE.clear()
        _KEY_CACHE[bytes(key)] = cached
    return cached


def encrypt_batch(key: bytes, lines: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Encrypt ``lines`` (shape ``(N, 16)`` uint8) under ``key`` at once.

    Returns ``(ciphertexts, indices)``:

    * ``ciphertexts`` — ``(N, 16)`` uint8, equal to the scalar
      :class:`TTableAES` ciphertext of each line;
    * ``indices`` — ``(N, 10, 16)`` uint8, the table index of lookup ``k``
      of round ``r+1`` for each line, in the exact per-thread instruction
      order the warp programs gather (the table *id* of a lookup is a pure
      function of ``(round, k)`` — see :func:`table_id_grid`).
    """
    lines = np.asarray(lines, dtype=np.uint8)
    if lines.ndim != 2 or lines.shape[1] != 16:
        raise BlockSizeError(
            f"expected an (N, 16) byte matrix, got shape {lines.shape}"
        )
    num_lines = lines.shape[0]
    keys = _round_keys(bytes(key))
    tb = _TABLE_BYTES

    # State as (N, row, col); the column-major input map means byte
    # ``r + 4c`` lands in state[r][c].
    state = (lines ^ keys[0]).reshape(num_lines, 4, 4).transpose(0, 2, 1)

    indices = np.empty((num_lines, NUM_ROUNDS, LOOKUPS_PER_ROUND),
                       dtype=np.uint8)

    for round_index in range(1, NUM_ROUNDS):
        round_key = keys[round_index].reshape(4, 4)  # [c, r]
        new_state = np.empty_like(state)
        out = indices[:, round_index - 1]
        for c in range(4):
            i0 = state[:, 0, c]
            i1 = state[:, 1, (c + 1) % 4]
            i2 = state[:, 2, (c + 2) % 4]
            i3 = state[:, 3, (c + 3) % 4]
            k = 4 * c
            out[:, k] = i0
            out[:, k + 1] = i1
            out[:, k + 2] = i2
            out[:, k + 3] = i3
            # One MixColumns column: XOR of the four table entries + key.
            new_state[:, :, c] = (tb[0][i0] ^ tb[1][i1] ^ tb[2][i2]
                                  ^ tb[3][i3] ^ round_key[c])
        state = new_state

    ciphertexts = np.empty((num_lines, 16), dtype=np.uint8)
    last_key = keys[NUM_ROUNDS]
    out = indices[:, NUM_ROUNDS - 1]
    for j in range(16):
        r, c = j % 4, j // 4
        index = state[:, r, (c + r) % 4]
        out[:, j] = index
        ciphertexts[:, j] = tb[4][index, r] ^ last_key[4 * c + r]
    return ciphertexts, indices
