"""Multi-line plaintext encryption and standard block-cipher modes.

The GPU workload encrypts a plaintext of L "lines" (16-byte blocks), one line
per thread, ECB-style: each line is independently AES-encrypted with the same
key (the mode used by the attacked implementation — independence across
threads is what lets the attacker model each warp's last round). Line-to-
thread mapping is sequential and deterministic, matching the baseline kernel.

CBC and CTR are provided for substrate completeness. CTR is the other mode
GPU AES libraries commonly parallelize (one counter block per thread); its
last-round lookups are driven by the counter stream rather than the
plaintext, so the Jiang-et-al. attack applies to the keystream generation
with known counters — the coalescing leak is unchanged. CBC's chaining is
inherently sequential and is included only as a reference implementation.
"""

from __future__ import annotations

from typing import List

from repro.aes.cipher import BLOCK_BYTES, decrypt_block, encrypt_block
from repro.errors import BlockSizeError
from repro.utils import xor_bytes

__all__ = [
    "split_lines",
    "join_lines",
    "encrypt_lines",
    "decrypt_lines",
    "encrypt_cbc",
    "decrypt_cbc",
    "ctr_keystream",
    "crypt_ctr",
    "counter_block",
]


def split_lines(plaintext: bytes) -> List[bytes]:
    """Split a plaintext into 16-byte lines; length must be a multiple."""
    if len(plaintext) % BLOCK_BYTES != 0:
        raise BlockSizeError(
            f"plaintext length {len(plaintext)} is not a multiple of "
            f"{BLOCK_BYTES}"
        )
    return [plaintext[i:i + BLOCK_BYTES]
            for i in range(0, len(plaintext), BLOCK_BYTES)]


def join_lines(lines: List[bytes]) -> bytes:
    """Inverse of :func:`split_lines`."""
    return b"".join(lines)


def encrypt_lines(plaintext: bytes, key: bytes) -> bytes:
    """ECB-encrypt a multi-line plaintext (one AES block per line)."""
    return join_lines([encrypt_block(line, key)
                       for line in split_lines(plaintext)])


def decrypt_lines(ciphertext: bytes, key: bytes) -> bytes:
    """ECB-decrypt a multi-line ciphertext."""
    return join_lines([decrypt_block(line, key)
                       for line in split_lines(ciphertext)])


# -- CBC ---------------------------------------------------------------------


def _check_iv(iv: bytes) -> None:
    if len(iv) != BLOCK_BYTES:
        raise BlockSizeError(f"IV must be {BLOCK_BYTES} bytes, got {len(iv)}")


def encrypt_cbc(plaintext: bytes, key: bytes, iv: bytes) -> bytes:
    """CBC-encrypt a multiple-of-16 plaintext."""
    _check_iv(iv)
    previous = iv
    out: List[bytes] = []
    for line in split_lines(plaintext):
        previous = encrypt_block(xor_bytes(line, previous), key)
        out.append(previous)
    return join_lines(out)


def decrypt_cbc(ciphertext: bytes, key: bytes, iv: bytes) -> bytes:
    """CBC-decrypt a multiple-of-16 ciphertext."""
    _check_iv(iv)
    previous = iv
    out: List[bytes] = []
    for line in split_lines(ciphertext):
        out.append(xor_bytes(decrypt_block(line, key), previous))
        previous = line
    return join_lines(out)


# -- CTR ---------------------------------------------------------------------


def counter_block(nonce: bytes, counter: int) -> bytes:
    """A 16-byte counter block: 8-byte nonce || 8-byte big-endian counter
    (the layout a per-thread GPU CTR kernel derives from its thread id)."""
    if len(nonce) != 8:
        raise BlockSizeError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
    if not 0 <= counter < 2 ** 64:
        raise BlockSizeError(f"counter out of range: {counter}")
    return nonce + counter.to_bytes(8, "big")


def ctr_keystream(key: bytes, nonce: bytes, num_blocks: int,
                  initial_counter: int = 0) -> bytes:
    """``num_blocks`` blocks of AES-CTR keystream."""
    return b"".join(
        encrypt_block(counter_block(nonce, initial_counter + i), key)
        for i in range(num_blocks)
    )


def crypt_ctr(data: bytes, key: bytes, nonce: bytes,
              initial_counter: int = 0) -> bytes:
    """CTR encryption/decryption (self-inverse). Handles any length."""
    num_blocks = (len(data) + BLOCK_BYTES - 1) // BLOCK_BYTES
    keystream = ctr_keystream(key, nonce, num_blocks, initial_counter)
    return xor_bytes(data, keystream[:len(data)])
