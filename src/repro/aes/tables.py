"""AES T-tables and their GPU memory layout.

GPU AES implementations replace the per-round SubBytes/ShiftRows/MixColumns
sequence with lookups into four precomputed 256-entry tables of 32-bit words
(T0..T3), plus a fifth table T4 for the final round (which omits MixColumns).
The tables live in global memory, so every lookup is a global load — the
memory traffic that intra-warp coalescing merges and that the timing attack
observes.

Layout reproduced from the paper's configuration (Section II-C): each table
entry is 4 bytes, a cache-line-sized memory block is 64 bytes, so **16
consecutive table entries map to the same memory block** and each 1 KB table
spans **R = 16 blocks**. ``block_of_index`` is exactly the ``index >> 4`` of
Algorithm 1.
"""

from __future__ import annotations

from typing import Tuple

from repro.aes.sbox import SBOX, gf_mul

__all__ = [
    "ENTRY_BYTES",
    "BLOCK_BYTES",
    "ENTRIES_PER_BLOCK",
    "TABLE_ENTRIES",
    "TABLE_BYTES",
    "NUM_TABLE_BLOCKS",
    "NUM_ROUND_TABLES",
    "LAST_ROUND_TABLE_ID",
    "T0",
    "T1",
    "T2",
    "T3",
    "T4",
    "ROUND_TABLES",
    "block_of_index",
    "table_entry_bytes",
]

#: Bytes per table entry (a packed 32-bit word).
ENTRY_BYTES = 4

#: Bytes per coalescing memory block (one cache-line-sized access).
BLOCK_BYTES = 64

#: Table entries sharing one memory block: 64 / 4 = 16.
ENTRIES_PER_BLOCK = BLOCK_BYTES // ENTRY_BYTES

#: Entries per table (one per byte value).
TABLE_ENTRIES = 256

#: Bytes per table.
TABLE_BYTES = TABLE_ENTRIES * ENTRY_BYTES

#: Memory blocks per table — the paper's R = 16.
NUM_TABLE_BLOCKS = TABLE_ENTRIES // ENTRIES_PER_BLOCK

#: Number of main-round tables (T0..T3).
NUM_ROUND_TABLES = 4

#: Table id used for the last round (T4).
LAST_ROUND_TABLE_ID = 4


def block_of_index(index: int) -> int:
    """Memory block (0..15) holding table entry ``index`` (0..255).

    This is the ``holder[... >> 4]`` computation of Algorithm 1.
    """
    if not 0 <= index < TABLE_ENTRIES:
        raise ValueError(f"table index out of range: {index}")
    return index >> 4


def _build_t0() -> Tuple[Tuple[int, int, int, int], ...]:
    """T0[x] = (2*S[x], S[x], S[x], 3*S[x]) — one MixColumns column of S[x]."""
    entries = []
    for x in range(TABLE_ENTRIES):
        s = SBOX[x]
        entries.append((gf_mul(s, 2), s, s, gf_mul(s, 3)))
    return tuple(entries)


def _rotate_entry(entry: Tuple[int, int, int, int], k: int
                  ) -> Tuple[int, int, int, int]:
    """Rotate a 4-byte entry right by ``k`` positions (T1..T3 from T0)."""
    return tuple(entry[(i - k) % 4] for i in range(4))  # type: ignore[return-value]


def _build_round_tables():
    t0 = _build_t0()
    t1 = tuple(_rotate_entry(e, 1) for e in t0)
    t2 = tuple(_rotate_entry(e, 2) for e in t0)
    t3 = tuple(_rotate_entry(e, 3) for e in t0)
    return t0, t1, t2, t3


def _build_t4() -> Tuple[Tuple[int, int, int, int], ...]:
    """T4[x] = (S[x], S[x], S[x], S[x]) — last round packs the bare S-box."""
    return tuple((SBOX[x],) * 4 for x in range(TABLE_ENTRIES))


T0, T1, T2, T3 = _build_round_tables()
T4 = _build_t4()

#: Main-round tables indexed by table id, matching the kernel's layout order.
ROUND_TABLES = (T0, T1, T2, T3)


def table_entry_bytes(table_id: int, index: int) -> bytes:
    """Raw 4 bytes of entry ``index`` of table ``table_id`` (0..4)."""
    if table_id == LAST_ROUND_TABLE_ID:
        entry = T4[index]
    else:
        entry = ROUND_TABLES[table_id][index]
    return bytes(entry)
