"""RCoal: subwarp-based randomized GPU memory coalescing defenses.

A full reproduction of *Kadam, Zhang & Jog, "RCoal: Mitigating GPU Timing
Attack via Subwarp-Based Randomized Coalescing Techniques" (HPCA 2018)*:

* :mod:`repro.aes` — the AES-128 substrate (FIPS-verified, with per-round
  table-lookup traces);
* :mod:`repro.gpu` — a discrete-event GPU timing simulator (SMs, coalescing
  unit with subwarp-id PRT, crossbar, banked GDDR5 with FR-FCFS);
* :mod:`repro.core` — the contribution: FSS / RSS / RTS coalescing policies,
  RCoalGPU, and the RCoal_Score metric;
* :mod:`repro.attack` — the correlation timing attack family (baseline,
  Algorithm 1, and the mimicking corresponding attacks);
* :mod:`repro.analysis` — the exact Section V security model (Table II);
* :mod:`repro.workloads` — plaintext generation and the victim server;
* :mod:`repro.experiments` — one harness per paper table/figure;
* :mod:`repro.telemetry` — observability: structured metrics, Chrome-trace
  event tracing, per-module logging, and experiment progress reporting.

Quick start::

    from repro import (EncryptionServer, make_policy, RngStream,
                       random_plaintexts)

    key = b"sixteen byte key"
    server = EncryptionServer(key, make_policy("rss_rts", 8),
                              rng=RngStream(1, "victim"))
    record = server.encrypt(random_plaintexts(1, 32, RngStream(1, "pt"))[0])
    print(record.total_time, record.last_round_accesses)
"""

from repro.aes import TTableAES, encrypt_block, decrypt_block, \
    expand_key, last_round_key, recover_master_key
from repro.analysis import security_table
from repro.attack import (
    AccessEstimator,
    CorrelationTimingAttack,
    fss_attack_last_round_accesses,
    samples_needed,
)
from repro.core import (
    CoalescingPolicy,
    RCoalGPU,
    SubwarpPartition,
    make_policy,
    rcoal_score,
)
from repro.errors import ReproError
from repro.experiments import ExperimentContext, run_experiment
from repro.gpu import GPUConfig, GPUSimulator
from repro.rng import RngStream
from repro.telemetry import MetricsRegistry, Telemetry, Tracer
from repro.workloads import EncryptionRecord, EncryptionServer, \
    random_plaintexts

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # aes
    "TTableAES", "encrypt_block", "decrypt_block", "expand_key",
    "last_round_key", "recover_master_key",
    # gpu
    "GPUConfig", "GPUSimulator",
    # core
    "CoalescingPolicy", "make_policy", "SubwarpPartition", "RCoalGPU",
    "rcoal_score",
    # attack
    "AccessEstimator", "CorrelationTimingAttack",
    "fss_attack_last_round_accesses", "samples_needed",
    # analysis
    "security_table",
    # workloads
    "EncryptionServer", "EncryptionRecord", "random_plaintexts",
    # experiments
    "ExperimentContext", "run_experiment",
    # telemetry
    "Telemetry", "MetricsRegistry", "Tracer",
    # errors
    "ReproError",
    # rng
    "RngStream",
]
