"""Monte-Carlo estimation of the attack correlation rho.

Validates the closed forms of :mod:`repro.analysis.model` and covers
configurations the paper leaves analytically open (standalone RSS, non-
power-of-two M, partial warps). Per sample:

1. draw a uniform thread→block assignment (random plaintext model: each of
   N threads hits one of R memory blocks with probability 1/R);
2. the **victim** draws a partition from the defense policy and counts
   distinct (subwarp, block) pairs → U;
3. the **attacker**, knowing the thread→block assignment (correct key
   guess) but not the victim's private draw, draws their own partition from
   the same policy → U_hat;

then rho is the sample Pearson correlation of U and U_hat.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attack.correlation import pearson
from repro.core.policies import CoalescingPolicy
from repro.errors import AnalysisError
from repro.rng import RngStream

__all__ = ["empirical_rho", "empirical_access_moments"]


def _count(blocks: np.ndarray, assignment) -> int:
    return len({(sid, int(block))
                for sid, block in zip(assignment, blocks)})


def empirical_rho(
    policy: CoalescingPolicy,
    num_blocks: int,
    num_samples: int,
    rng: RngStream,
    attacker_policy: Optional[CoalescingPolicy] = None,
) -> float:
    """Monte-Carlo rho between victim counts and attacker estimates.

    ``attacker_policy`` defaults to the same mechanism (the paper's
    corresponding attack); pass a different one to model a mismatched
    attacker (e.g. the baseline attack against an FSS machine).
    """
    if num_samples < 2:
        raise AnalysisError("need at least two samples for a correlation")
    attacker_policy = attacker_policy or policy
    victim_rng = rng.child("mc-victim")
    attacker_rng = rng.child("mc-attacker")
    block_rng = rng.child("mc-blocks")

    n = policy.warp_size
    us = np.empty(num_samples)
    u_hats = np.empty(num_samples)
    for i in range(num_samples):
        blocks = block_rng.integers(0, num_blocks, size=n)
        victim = policy.draw(victim_rng)
        attacker = attacker_policy.draw(attacker_rng)
        us[i] = _count(blocks, victim.assignment)
        u_hats[i] = _count(blocks, attacker.assignment)
    return pearson(us, u_hats)


def empirical_access_moments(
    policy: CoalescingPolicy,
    num_blocks: int,
    num_samples: int,
    rng: RngStream,
):
    """Monte-Carlo (mean, variance) of the per-warp access count U."""
    if num_samples < 2:
        raise AnalysisError("need at least two samples for moments")
    victim_rng = rng.child("mc-victim")
    block_rng = rng.child("mc-blocks")
    n = policy.warp_size
    us = np.empty(num_samples)
    for i in range(num_samples):
        blocks = block_rng.integers(0, num_blocks, size=n)
        victim = policy.draw(victim_rng)
        us[i] = _count(blocks, victim.assignment)
    return float(us.mean()), float(us.var(ddof=1))
