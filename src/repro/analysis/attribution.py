"""Leakage attribution: which accesses make the timing window long.

The RCoal attack reads one scalar per encryption — the last-round execution
time — and that scalar is built, cycle by cycle, from the individual
coalesced accesses the round issues. This module decomposes a traced round
window into **per-access cycle contributions**: for every ``(warp, round)``
window it joins the engine's ``round`` trace slices with the per-access
events that carry the stable launch-local ``uid`` (``fwd_xbar`` /
``reply_xbar`` on the interconnect, ``column_hit`` / ``column_miss`` in
DRAM) and with the round's ``compute`` slice, then attributes the window's
duration across them.

Attribution rule (marginal waterfall)
-------------------------------------
A round window ends when its *last* dependency completes: the compute
instruction retires and every read's reply is delivered. Sort all those
completion points; each one is charged the cycles by which it advanced the
window's frontier::

    contribution(c_i) = max(0, c_i - max(window.start, c_1, ..., c_{i-1}))

The contributions telescope, so they sum *exactly* to the window duration —
the per-warp breakdown reconciles with the round-window cycles pinned by
``tests/test_golden.py`` by construction, and any event lost in the join
shows up as a reconciliation gap rather than a silently wrong chart. An
access that completes behind the frontier (hidden under memory-level
parallelism) contributes 0: it costs DRAM bandwidth but not leaked time,
which is exactly the distinction the attacker's timing channel sees.

The join needs telemetry events recorded with a tracer whose capacity held
the full run (the ``rcoal attribute`` experiment sizes it accordingly);
evicted events raise, because a partial join would misattribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.telemetry.tracer import TraceEvent, Tracer

__all__ = [
    "AccessContribution",
    "RoundAttribution",
    "attribute_rounds",
    "summarize_by_warp",
]


@dataclass(frozen=True)
class AccessContribution:
    """One completion point's share of a round window, in cycles."""

    #: "access" for a memory reply, "compute" for the round's compute slice.
    source: str
    #: Launch-local access uid (None for compute contributions).
    uid: Optional[int]
    #: Cycle (trace timeline) at which this dependency completed.
    completion: float
    #: Cycles this completion advanced the window frontier (>= 0).
    cycles: float
    #: DRAM service classification from the column_* join, when available.
    row_hit: Optional[bool] = None
    bank: Optional[int] = None
    queue_wait: Optional[float] = None


@dataclass
class RoundAttribution:
    """The full cycle breakdown of one traced ``(warp, round)`` window."""

    warp_id: int
    round_index: int
    start: float
    end: float
    contributions: List[AccessContribution] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def attributed(self) -> float:
        """Sum of contributions; equals ``duration`` (telescoping sum)."""
        return sum(c.cycles for c in self.contributions)

    @property
    def access_cycles(self) -> float:
        return sum(c.cycles for c in self.contributions
                   if c.source == "access")

    @property
    def compute_cycles(self) -> float:
        return sum(c.cycles for c in self.contributions
                   if c.source == "compute")

    @property
    def hidden_accesses(self) -> int:
        """Accesses fully overlapped by others (contribute 0 cycles)."""
        return sum(1 for c in self.contributions
                   if c.source == "access" and c.cycles == 0)


def _end(event: TraceEvent) -> float:
    return event.ts + (event.dur or 0)


#: Above this many trace events ``attribute_rounds`` switches to the
#: numpy-batched join (same result, vectorized); below it the plain-python
#: reference path wins on constant factors.
_BATCH_THRESHOLD = 100_000


def attribute_rounds(
    tracer: Tracer,
    round_index: Optional[int] = None,
    batched: Optional[bool] = None,
) -> List[RoundAttribution]:
    """Attribute every traced round window to its completion points.

    Joins the tracer's ``round`` slices with ``compute`` / ``reply_xbar``
    events by ``(warp, round)`` + containment in the window's time span
    (windows of successive launches never overlap: the engine lays
    launches end-to-end on the trace timeline), and enriches each access
    with its ``column_hit``/``column_miss`` DRAM record via the stable
    access ``uid``. Pass ``round_index`` to keep only one round (the
    attack's last round, typically).

    ``batched`` forces the numpy gather-join (True) or the plain-python
    reference path (False); by default large traces — Fig-18-scale
    1024-line launches — batch automatically. Both paths produce equal
    results (golden-tested in ``tests/analysis/test_attribution.py``).
    """
    if tracer.dropped:
        raise ConfigurationError(
            f"cannot attribute a partial trace: {tracer.dropped} events "
            f"were evicted from the ring buffer; rerun with a larger "
            f"trace capacity"
        )
    if batched is None:
        batched = len(tracer) >= _BATCH_THRESHOLD
    if batched:
        return _attribute_rounds_batched(tracer, round_index)
    return _attribute_rounds_python(tracer, round_index)


def _attribute_rounds_python(
    tracer: Tracer,
    round_index: Optional[int] = None,
) -> List[RoundAttribution]:
    """Reference implementation: per-window python join + waterfall."""
    windows: List[RoundAttribution] = []
    # Completion points grouped by (warp, round); matched to windows by
    # time containment afterwards.
    replies: Dict[Tuple[int, int], List[TraceEvent]] = {}
    computes: Dict[Tuple[int, int], List[TraceEvent]] = {}
    dram: Dict[Tuple[float, int], TraceEvent] = {}

    for event in tracer.events:
        name = event.name
        if name == "round":
            rnd = event.args["round"]
            if round_index is not None and rnd != round_index:
                continue
            windows.append(RoundAttribution(
                warp_id=event.tid, round_index=rnd,
                start=event.ts, end=_end(event),
            ))
        elif name == "reply_xbar":
            args = event.args
            if args["round"] is None:
                continue
            replies.setdefault((args["warp"], args["round"]),
                               []).append(event)
        elif name == "compute":
            rnd = event.args["round"]
            if rnd is None:
                continue
            computes.setdefault((event.tid, rnd), []).append(event)
        elif name in ("column_hit", "column_miss"):
            # One DRAM service per access; keyed by uid within a launch
            # span. uids repeat across launches, so carry the service
            # start ts to pick the in-window record during the join.
            dram[(event.ts, event.args["uid"])] = event

    dram_by_uid: Dict[int, List[TraceEvent]] = {}
    for (_, uid), event in sorted(dram.items()):
        dram_by_uid.setdefault(uid, []).append(event)

    for window in windows:
        key = (window.warp_id, window.round_index)
        points: List[Tuple[float, str, Optional[TraceEvent]]] = []
        for event in computes.get(key, ()):
            done = _end(event)
            if window.start <= event.ts and done <= window.end:
                points.append((done, "compute", None))
        for event in replies.get(key, ()):
            done = _end(event)
            if window.start <= event.ts and done <= window.end:
                points.append((done, "access", event))
        points.sort(key=lambda p: (p[0], p[1] != "compute"))

        frontier = window.start
        for done, source, event in points:
            cycles = max(0.0, done - frontier)
            frontier = max(frontier, done)
            uid = event.args["uid"] if event is not None else None
            row_hit = bank = queue_wait = None
            if uid is not None:
                service = _dram_record(dram_by_uid.get(uid), window)
                if service is not None:
                    row_hit = service.name == "column_hit"
                    bank = service.args["bank"]
                    queue_wait = service.args["queue_wait"]
            window.contributions.append(AccessContribution(
                source=source, uid=uid, completion=done, cycles=cycles,
                row_hit=row_hit, bank=bank, queue_wait=queue_wait,
            ))
        if abs(window.attributed - window.duration) > 1e-9:
            raise ConfigurationError(
                f"attribution failed to reconcile for warp "
                f"{window.warp_id} round {window.round_index}: "
                f"attributed {window.attributed} of {window.duration} "
                f"cycles (trace is missing completion events)"
            )
    windows.sort(key=lambda w: (w.start, w.warp_id))
    return windows


def _attribute_rounds_batched(
    tracer: Tracer,
    round_index: Optional[int] = None,
) -> List[RoundAttribution]:
    """Vectorized join + waterfall over uid/time-sorted int64 arrays.

    The O(events) python join dominates ``rcoal attribute`` once a launch
    has 1024 lines; this path does the window assignment, the waterfall,
    and the DRAM-record gather with numpy searchsorted/lexsort over sorted
    arrays instead of per-window scans. All timestamps are integer cycles,
    so the arithmetic — and therefore the result — is exactly equal to the
    reference path's.
    """
    import numpy as np

    w_warp: List[int] = []
    w_round: List[int] = []
    w_start: List[int] = []
    w_end: List[int] = []
    p_warp: List[int] = []
    p_round: List[int] = []
    p_ts: List[int] = []
    p_done: List[int] = []
    p_is_access: List[int] = []
    p_event: List[Optional[TraceEvent]] = []
    dram: Dict[Tuple[float, int], TraceEvent] = {}

    for event in tracer.events:
        name = event.name
        if name == "round":
            rnd = event.args["round"]
            if round_index is not None and rnd != round_index:
                continue
            w_warp.append(event.tid)
            w_round.append(rnd)
            w_start.append(event.ts)
            w_end.append(_end(event))
        elif name == "reply_xbar":
            args = event.args
            if args["round"] is None:
                continue
            p_warp.append(args["warp"])
            p_round.append(args["round"])
            p_ts.append(event.ts)
            p_done.append(_end(event))
            p_is_access.append(1)
            p_event.append(event)
        elif name == "compute":
            rnd = event.args["round"]
            if rnd is None:
                continue
            p_warp.append(event.tid)
            p_round.append(rnd)
            p_ts.append(event.ts)
            p_done.append(_end(event))
            p_is_access.append(0)
            p_event.append(None)
        elif name in ("column_hit", "column_miss"):
            dram[(event.ts, event.args["uid"])] = event

    windows = [
        RoundAttribution(warp_id=w, round_index=r, start=s, end=e)
        for w, r, s, e in zip(w_warp, w_round, w_start, w_end)
    ]
    if not windows or not p_ts:
        for window in windows:
            if window.duration != 0:
                raise ConfigurationError(
                    f"attribution failed to reconcile for warp "
                    f"{window.warp_id} round {window.round_index}: "
                    f"attributed 0 of {window.duration} cycles (trace is "
                    f"missing completion events)"
                )
        windows.sort(key=lambda w: (w.start, w.warp_id))
        return windows

    # Dense ids for (warp, round) so a scalar composite key fits int64.
    pairs = np.array(list(zip(w_warp + p_warp, w_round + p_round)),
                     dtype=np.int64)
    _, inverse = np.unique(pairs, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)  # numpy 2.1 briefly made this (n, 1)
    w_key = inverse[:len(windows)]
    p_key = inverse[len(windows):]

    w_start_a = np.asarray(w_start, dtype=np.int64)
    w_end_a = np.asarray(w_end, dtype=np.int64)
    p_ts_a = np.asarray(p_ts, dtype=np.int64)
    p_done_a = np.asarray(p_done, dtype=np.int64)
    p_acc_a = np.asarray(p_is_access, dtype=np.int64)

    # Window assignment: same-key windows never overlap in time, so the
    # window with the greatest start <= point.ts is the only candidate;
    # find it with one searchsorted over a (key, start) composite.
    scale = int(max(w_end_a.max(), p_done_a.max())) + 2
    w_order = np.argsort(w_key * scale + w_start_a, kind="stable")
    w_key_s = w_key[w_order]
    w_start_s = w_start_a[w_order]
    w_end_s = w_end_a[w_order]
    pos = np.searchsorted(w_key_s * scale + w_start_s,
                          p_key * scale + p_ts_a, side="right") - 1
    pos_c = np.clip(pos, 0, len(windows) - 1)
    valid = ((pos >= 0)
             & (w_key_s[pos_c] == p_key)
             & (p_ts_a >= w_start_s[pos_c])
             & (p_done_a <= w_end_s[pos_c]))
    widx = w_order[pos_c[valid]]  # original window index per valid point
    v_done = p_done_a[valid]
    v_acc = p_acc_a[valid]
    v_indices = np.nonzero(valid)[0]

    # Waterfall: sort (window, done, compute-before-access); done is then
    # ascending within each window group, so the frontier before point i
    # is max(window.start, done[i-1]) — the telescoping sum in one shift.
    order = np.lexsort((v_acc, v_done, widx))
    widx_s = widx[order]
    done_s = v_done[order]
    starts = np.empty(len(done_s), dtype=np.int64)
    if len(done_s):
        group_head = np.empty(len(done_s), dtype=bool)
        group_head[0] = True
        group_head[1:] = widx_s[1:] != widx_s[:-1]
        prev_done = np.empty_like(done_s)
        prev_done[1:] = done_s[:-1]
        prev_done[group_head] = np.iinfo(np.int64).min
        starts = w_start_a[widx_s]
        frontier_before = np.maximum(starts, prev_done)
        cycles = np.maximum(0, done_s - frontier_before)
    else:
        group_head = np.empty(0, dtype=bool)
        cycles = done_s

    # DRAM gather: first service record per uid with ts in the window.
    d_uid_a = np.empty(0, dtype=np.int64)
    d_events: List[TraceEvent] = []
    if dram:
        d_items = sorted((uid, ts) for (ts, uid) in dram)
        d_uid_a = np.asarray([uid for uid, _ in d_items], dtype=np.int64)
        d_ts_a = np.asarray([ts for _, ts in d_items], dtype=np.int64)
        d_events = [dram[(ts, uid)] for uid, ts in d_items]
        d_scale = int(max(d_ts_a.max(), w_end_a.max())) + 2
        d_composite = d_uid_a * d_scale + d_ts_a

    point_events = [p_event[i] for i in v_indices[order]]
    uid_rows = [i for i, e in enumerate(point_events) if e is not None]
    service_of: Dict[int, TraceEvent] = {}
    if dram and uid_rows:
        rows = np.asarray(uid_rows, dtype=np.int64)
        uids = np.asarray([point_events[i].args["uid"] for i in uid_rows],
                          dtype=np.int64)
        lo = w_start_a[widx_s[rows]]
        hi = w_end_a[widx_s[rows]]
        dpos = np.searchsorted(d_composite, uids * d_scale + lo,
                               side="left")
        dpos_c = np.clip(dpos, 0, len(d_events) - 1)
        found = ((dpos < len(d_events))
                 & (d_uid_a[dpos_c] == uids)
                 & (d_ts_a[dpos_c] <= hi))
        for row, ok, di in zip(uid_rows, found, dpos_c):
            if ok:
                service_of[row] = d_events[di]

    # Materialize, preserving the reference path's per-window point order.
    for i in range(len(done_s)):
        window = windows[widx_s[i]]
        event = point_events[i]
        uid = event.args["uid"] if event is not None else None
        service = service_of.get(i)
        row_hit = bank = queue_wait = None
        if service is not None:
            row_hit = service.name == "column_hit"
            bank = service.args["bank"]
            queue_wait = service.args["queue_wait"]
        window.contributions.append(AccessContribution(
            source="access" if event is not None else "compute",
            uid=uid, completion=int(done_s[i]),
            cycles=float(cycles[i]), row_hit=row_hit, bank=bank,
            queue_wait=queue_wait,
        ))
    for window in windows:
        if abs(window.attributed - window.duration) > 1e-9:
            raise ConfigurationError(
                f"attribution failed to reconcile for warp "
                f"{window.warp_id} round {window.round_index}: "
                f"attributed {window.attributed} of {window.duration} "
                f"cycles (trace is missing completion events)"
            )
    windows.sort(key=lambda w: (w.start, w.warp_id))
    return windows


def _dram_record(candidates: Optional[List[TraceEvent]],
                 window: RoundAttribution) -> Optional[TraceEvent]:
    """The access's DRAM service event that falls inside this window."""
    if not candidates:
        return None
    for event in candidates:
        if window.start <= event.ts <= window.end:
            return event
    return None


def summarize_by_warp(
    attributions: Iterable[RoundAttribution],
) -> Dict[int, Dict[str, float]]:
    """Aggregate attributions per warp (across launches of a batch).

    Returns, per warp id: number of windows, mean window cycles, mean
    cycles attributed to accesses vs compute, mean cycles hidden behind
    row misses vs hits, and the mean count of fully-overlapped accesses.
    Means are per-window, so the table is comparable across sample counts.
    """
    totals: Dict[int, Dict[str, float]] = {}
    for window in attributions:
        agg = totals.setdefault(window.warp_id, {
            "windows": 0, "cycles": 0.0, "access_cycles": 0.0,
            "compute_cycles": 0.0, "row_miss_cycles": 0.0,
            "row_hit_cycles": 0.0, "accesses": 0, "hidden_accesses": 0,
        })
        agg["windows"] += 1
        agg["cycles"] += window.duration
        agg["access_cycles"] += window.access_cycles
        agg["compute_cycles"] += window.compute_cycles
        for c in window.contributions:
            if c.source != "access":
                continue
            agg["accesses"] += 1
            if c.cycles == 0:
                agg["hidden_accesses"] += 1
            if c.row_hit is True:
                agg["row_hit_cycles"] += c.cycles
            elif c.row_hit is False:
                agg["row_miss_cycles"] += c.cycles
    for agg in totals.values():
        windows = agg["windows"] or 1
        for key in ("cycles", "access_cycles", "compute_cycles",
                    "row_miss_cycles", "row_hit_cycles", "accesses",
                    "hidden_accesses"):
            agg[f"mean_{key}"] = agg[key] / windows
    return totals
