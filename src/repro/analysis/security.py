"""Table II: theoretical rho and normalized samples S per mechanism.

``S`` is normalized to the FSS M=1 (baseline) case: since the number of
samples needed scales as 1/rho^2 (Equation 4/5) and the baseline achieves
rho = 1, the normalized S is simply ``1 / rho^2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Union

from repro.analysis.model import rho_fss, rho_fss_rts, rho_rss_rts
from repro.errors import AnalysisError

__all__ = ["SecurityRow", "normalized_samples", "security_table",
           "PAPER_TABLE2"]

Number = Union[float, Fraction]


def normalized_samples(rho: Number) -> float:
    """Samples needed, normalized to the rho = 1 baseline: 1 / rho^2."""
    rho_f = float(rho)
    if not -1.0 <= rho_f <= 1.0:
        raise AnalysisError(f"correlation out of range: {rho_f}")
    if rho_f == 0.0:
        return math.inf
    return 1.0 / (rho_f * rho_f)


@dataclass(frozen=True)
class SecurityRow:
    """One row of Table II (one value of M)."""

    num_subwarps: int
    rho_fss: float
    rho_fss_rts: float
    rho_rss_rts: float

    @property
    def s_fss(self) -> float:
        return normalized_samples(self.rho_fss)

    @property
    def s_fss_rts(self) -> float:
        return normalized_samples(self.rho_fss_rts)

    @property
    def s_rss_rts(self) -> float:
        return normalized_samples(self.rho_rss_rts)


def security_table(
    num_threads: int = 32,
    num_blocks: int = 16,
    subwarp_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> List[SecurityRow]:
    """Compute Table II for the given machine parameters."""
    rows = []
    for m in subwarp_counts:
        rows.append(SecurityRow(
            num_subwarps=m,
            rho_fss=float(rho_fss(num_threads, num_blocks, m)),
            rho_fss_rts=float(rho_fss_rts(num_threads, num_blocks, m)),
            rho_rss_rts=float(rho_rss_rts(num_threads, num_blocks, m)),
        ))
    return rows


#: The values printed in the paper's Table II (rho to 2 decimals, S as
#: printed), used by tests and the benchmark report for comparison.
PAPER_TABLE2 = {
    1: {"rho": (1.00, 1.00, 1.00), "s": (1, 1, 1)},
    2: {"rho": (1.00, 0.41, 0.20), "s": (1, 6, 25)},
    4: {"rho": (1.00, 0.20, 0.15), "s": (1, 24, 42)},
    8: {"rho": (1.00, 0.09, 0.11), "s": (1, 115, 78)},
    16: {"rho": (1.00, 0.03, 0.05), "s": (1, 961, 349)},
    32: {"rho": (0.00, 0.00, 0.00), "s": (math.inf, math.inf, math.inf)},
}
