"""Section V: the information-theoretical security analysis.

Computes, in exact rational arithmetic, the correlation ``rho`` between the
victim's coalesced-access counts and the strongest corresponding attacker's
estimates, and from it the normalized number of samples ``S`` needed for a
successful attack (Table II).

The paper's Equation 6 sums over all frequency vectors, which is infeasible
to enumerate (R^N mappings; C(N+R-1, R-1) ~ 1.6e12 frequency vectors for
N=32, R=16). We instead exploit that every per-frequency quantity decomposes
as a sum of one function per memory block and marginalize analytically with
binomial / pairwise-multinomial marginals (see DESIGN.md Section 5), giving
exact Table II values in milliseconds. A Monte-Carlo estimator cross-checks
the closed forms and covers standalone RSS, which the paper also evaluates
only empirically.
"""

from repro.analysis.combinatorics import (
    binomial,
    composition_pair_pmf,
    composition_part_pmf,
    multinomial_pair_pmf,
    multinomial_single_pmf,
    num_compositions,
    stirling2,
)
from repro.analysis.occupancy import (
    occupancy_mean,
    occupancy_pmf,
    occupancy_variance,
)
from repro.analysis.model import (
    rho_fss,
    rho_fss_rts,
    rho_rss_rts,
)
from repro.analysis.leakage import (
    empirical_leakage_bits,
    entropy_bits,
    mutual_information_bits,
    occupancy_entropy_bits,
)
from repro.analysis.montecarlo import empirical_rho
from repro.analysis.security import (
    SecurityRow,
    normalized_samples,
    security_table,
)
from repro.analysis.surrogate import TimingSurrogate, fit_surrogate

__all__ = [
    "stirling2",
    "binomial",
    "num_compositions",
    "composition_part_pmf",
    "composition_pair_pmf",
    "multinomial_single_pmf",
    "multinomial_pair_pmf",
    "occupancy_pmf",
    "occupancy_mean",
    "occupancy_variance",
    "rho_fss",
    "rho_fss_rts",
    "rho_rss_rts",
    "empirical_rho",
    "entropy_bits",
    "mutual_information_bits",
    "occupancy_entropy_bits",
    "empirical_leakage_bits",
    "SecurityRow",
    "security_table",
    "normalized_samples",
    "TimingSurrogate",
    "fit_surrogate",
]
