"""Definition 1: the coalesced-access (occupancy) distribution.

``N_{m,n}`` — the number of coalesced accesses when each of ``m`` threads
uniformly accesses one of ``n`` memory blocks — is the classic occupancy
count of non-empty bins:

    P(N_{m,n} = i) = n!/(n-i)! * S2(m, i) / n^m

(The paper's ``n^N`` in Definition 1 is a typo for ``n^m``.) Moments are
computed exactly from the pmf; the closed-form mean
``n * (1 - (1 - 1/n)^m)`` is used as a consistency check in tests.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Dict

from repro.analysis.combinatorics import stirling2
from repro.errors import AnalysisError

__all__ = ["occupancy_pmf", "occupancy_mean", "occupancy_variance",
           "occupancy_second_moment", "occupancy_mean_closed_form"]


@lru_cache(maxsize=None)
def _pmf_cached(m: int, n: int):
    total = Fraction(n) ** m
    pmf = {}
    falling = 1  # n! / (n-i)! built incrementally
    for i in range(1, min(m, n) + 1):
        falling *= n - (i - 1)
        pmf[i] = Fraction(falling * stirling2(m, i)) / total
    return pmf


def occupancy_pmf(m: int, n: int) -> Dict[int, Fraction]:
    """Exact pmf of N_{m,n} over i = 1..min(m, n)."""
    if m <= 0 or n <= 0:
        raise AnalysisError(f"occupancy needs positive (m, n): ({m}, {n})")
    return dict(_pmf_cached(m, n))


def occupancy_mean(m: int, n: int) -> Fraction:
    """E[N_{m,n}] from the exact pmf."""
    return sum((Fraction(i) * p for i, p in occupancy_pmf(m, n).items()),
               Fraction(0))


def occupancy_second_moment(m: int, n: int) -> Fraction:
    """E[N_{m,n}^2] from the exact pmf."""
    return sum((Fraction(i * i) * p for i, p in occupancy_pmf(m, n).items()),
               Fraction(0))


def occupancy_variance(m: int, n: int) -> Fraction:
    """Var[N_{m,n}]."""
    mean = occupancy_mean(m, n)
    return occupancy_second_moment(m, n) - mean * mean


def occupancy_mean_closed_form(m: int, n: int) -> Fraction:
    """The standard closed form n (1 - (1 - 1/n)^m), for cross-checking."""
    return Fraction(n) * (1 - Fraction(n - 1, n) ** m)
