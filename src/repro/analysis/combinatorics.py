"""Exact combinatorics for the security model.

Everything returns :class:`fractions.Fraction` (or Python ints) so Table II
is computed without floating-point error; callers convert at the edge.
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import lru_cache
from typing import Dict, Iterator, Tuple

from repro.errors import AnalysisError

__all__ = [
    "binomial",
    "stirling2",
    "num_compositions",
    "composition_part_pmf",
    "composition_pair_pmf",
    "multinomial_single_pmf",
    "multinomial_pair_pmf",
    "iter_compositions",
]


def binomial(n: int, k: int) -> int:
    """C(n, k); zero outside the valid range (handy in the closed forms)."""
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


@lru_cache(maxsize=None)
def stirling2(n: int, k: int) -> int:
    """Stirling number of the second kind: partitions of n items into k
    non-empty subsets. Recurrence S(n,k) = k*S(n-1,k) + S(n-1,k-1)."""
    if n < 0 or k < 0:
        raise AnalysisError(f"Stirling numbers need n,k >= 0: ({n},{k})")
    if n == 0 and k == 0:
        return 1
    if n == 0 or k == 0:
        return 0
    if k > n:
        return 0
    return k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)


def num_compositions(total: int, parts: int) -> int:
    """Number of compositions of ``total`` into ``parts`` positive parts."""
    if parts <= 0 or total < parts:
        return 0
    return binomial(total - 1, parts - 1)


def composition_part_pmf(total: int, parts: int) -> Dict[int, Fraction]:
    """Marginal of one part of a uniform composition (RSS skewed sizes).

    ``P(w1 = k) = C(total-k-1, parts-2) / C(total-1, parts-1)`` for
    ``1 <= k <= total-parts+1``; degenerate at ``total`` when parts == 1.
    """
    if parts <= 0 or total < parts:
        raise AnalysisError(
            f"no compositions of {total} into {parts} positive parts"
        )
    if parts == 1:
        return {total: Fraction(1)}
    denom = binomial(total - 1, parts - 1)
    pmf = {}
    for k in range(1, total - parts + 2):
        numer = binomial(total - k - 1, parts - 2)
        if numer:
            pmf[k] = Fraction(numer, denom)
    return pmf


def composition_pair_pmf(total: int, parts: int
                         ) -> Dict[Tuple[int, int], Fraction]:
    """Joint marginal of two distinct parts of a uniform composition.

    ``P(w1=a, w2=b) = C(total-a-b-1, parts-3) / C(total-1, parts-1)`` for
    parts >= 3; for parts == 2 the second part is determined.
    """
    if parts < 2 or total < parts:
        raise AnalysisError(
            f"pair marginal needs >= 2 parts of a valid composition: "
            f"({total}, {parts})"
        )
    denom = binomial(total - 1, parts - 1)
    pmf: Dict[Tuple[int, int], Fraction] = {}
    if parts == 2:
        for a in range(1, total):
            pmf[(a, total - a)] = Fraction(1, denom)
        return pmf
    for a in range(1, total - parts + 2):
        for b in range(1, total - parts + 2 - (a - 1)):
            numer = binomial(total - a - b - 1, parts - 3)
            if numer:
                pmf[(a, b)] = Fraction(numer, denom)
    return pmf


def multinomial_single_pmf(n: int, r: int) -> Dict[int, Fraction]:
    """Binomial(n, 1/r): marginal frequency of one of r equally likely
    memory blocks over n thread accesses."""
    if n < 0 or r <= 0:
        raise AnalysisError(f"invalid multinomial parameters ({n}, {r})")
    pmf = {}
    for a in range(n + 1):
        pmf[a] = Fraction(binomial(n, a) * (r - 1) ** (n - a), r ** n)
    return pmf


def multinomial_pair_pmf(n: int, r: int) -> Dict[Tuple[int, int], Fraction]:
    """Joint frequency of two distinct blocks under Multinomial(n; 1/r,...).

    ``P(f1=a, f2=b) = n!/(a! b! (n-a-b)!) * (r-2)^(n-a-b) / r^n``.
    """
    if n < 0 or r < 2:
        raise AnalysisError(f"pair marginal needs r >= 2: ({n}, {r})")
    pmf: Dict[Tuple[int, int], Fraction] = {}
    for a in range(n + 1):
        for b in range(n - a + 1):
            count = (math.factorial(n)
                     // (math.factorial(a) * math.factorial(b)
                         * math.factorial(n - a - b)))
            pmf[(a, b)] = Fraction(count * (r - 2) ** (n - a - b), r ** n)
    return pmf


def iter_compositions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """Enumerate all compositions (for tests on small cases only)."""
    if parts == 1:
        if total >= 1:
            yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in iter_compositions(total - first, parts - 1):
            yield (first,) + rest
