"""Mutual-information leakage of the coalescing side channel.

The correlation rho of Section V measures *linear* dependence between the
victim's access counts U and the attacker's estimate U_hat. Mutual
information I(U; U_hat) is the model-free complement: it upper-bounds what
ANY attacker statistic could extract from the estimates, catching
non-linear residual leakage the correlation metric would miss.

For deterministic policies (baseline, FSS) the joint distribution follows
from the occupancy law exactly (U = U_hat, so I = H(U)). For randomized
policies the joint is estimated by Monte Carlo with plug-in entropy over
the (U, U_hat) histogram — adequate here because both variables live on a
support of at most ~32 values.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Optional, Tuple

from repro.analysis.occupancy import occupancy_pmf
from repro.core.policies import CoalescingPolicy
from repro.errors import AnalysisError
from repro.rng import RngStream

__all__ = [
    "entropy_bits",
    "mutual_information_bits",
    "occupancy_entropy_bits",
    "empirical_leakage_bits",
]


def entropy_bits(pmf: Dict[object, float]) -> float:
    """Shannon entropy of a pmf given as value -> probability."""
    total = float(sum(pmf.values()))
    if total <= 0:
        raise AnalysisError("pmf has no mass")
    h = 0.0
    for p in pmf.values():
        p = float(p) / total
        if p > 0:
            h -= p * math.log2(p)
    return h


def mutual_information_bits(joint: Dict[Tuple[object, object], float]
                            ) -> float:
    """I(X; Y) from a joint pmf given as (x, y) -> probability."""
    total = float(sum(joint.values()))
    if total <= 0:
        raise AnalysisError("joint pmf has no mass")
    px: Counter = Counter()
    py: Counter = Counter()
    for (x, y), p in joint.items():
        px[x] += p / total
        py[y] += p / total
    mi = 0.0
    for (x, y), p in joint.items():
        p = float(p) / total
        if p > 0:
            mi += p * math.log2(p / (px[x] * py[y]))
    return max(0.0, mi)


def occupancy_entropy_bits(num_threads: int, num_blocks: int) -> float:
    """H(U) for the baseline machine: all leakage is extractable there
    (U_hat = U), so I(U; U_hat) = H(U)."""
    pmf = {i: float(p)
           for i, p in occupancy_pmf(num_threads, num_blocks).items()}
    return entropy_bits(pmf)


def empirical_leakage_bits(
    policy: CoalescingPolicy,
    num_blocks: int,
    num_samples: int,
    rng: RngStream,
    attacker_policy: Optional[CoalescingPolicy] = None,
) -> float:
    """Monte-Carlo I(U; U_hat) for a (possibly randomized) policy.

    Same sampling protocol as
    :func:`repro.analysis.montecarlo.empirical_rho`: victim and attacker
    observe the same thread->block assignment but draw partitions
    independently.
    """
    if num_samples < 10:
        raise AnalysisError("need a meaningful sample count for MI")
    attacker_policy = attacker_policy or policy
    victim_rng = rng.child("mi-victim")
    attacker_rng = rng.child("mi-attacker")
    block_rng = rng.child("mi-blocks")

    n = policy.warp_size
    joint: Counter = Counter()
    for _ in range(num_samples):
        blocks = block_rng.integers(0, num_blocks, size=n)
        victim = policy.draw(victim_rng)
        attacker = attacker_policy.draw(attacker_rng)
        u = len({(s, int(b)) for s, b in zip(victim.assignment, blocks)})
        u_hat = len({(s, int(b))
                     for s, b in zip(attacker.assignment, blocks)})
        joint[(u, u_hat)] += 1
    return mutual_information_bits(dict(joint))
