"""Closed-form rho for FSS, FSS+RTS, and RSS+RTS (Section V-B).

The attack correlation is

    rho = ( E[U * U_hat] - E[U]^2 ) / Var[U]

with ``U`` the victim's last-round coalesced accesses and ``U_hat`` the
corresponding attacker's estimate (identically distributed, Section V-A).

Marginalization strategy (replacing the paper's infeasible frequency-vector
sums): with RTS the conditional mean ``E[U | F]`` is a sum over memory
blocks of a function of that block's frequency alone —

* FSS+RTS: ``g(f) = sum_j (1 - C(S - c_j, f) / C(S, f))`` with fixed
  subwarp capacities ``c_j`` (Definition 3);
* RSS+RTS: ``h(f) = M * E_k[1 - C(S - k, f) / C(S, f)]`` where ``k`` is one
  part of a uniform composition (its marginal is in closed form) —

so ``E[(sum_i g(f_i))^2]`` needs only the single and pairwise multinomial
frequency marginals:

    E[(sum g)^2] = R E[g(f1)^2] + R (R-1) E[g(f1) g(f2)].

All arithmetic is exact (fractions); results match Table II to the paper's
printed precision.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Callable, Dict, Tuple

from repro.analysis.combinatorics import (
    binomial,
    composition_pair_pmf,
    composition_part_pmf,
    multinomial_pair_pmf,
    multinomial_single_pmf,
)
from repro.analysis.occupancy import (
    occupancy_mean,
    occupancy_second_moment,
    occupancy_variance,
)
from repro.core.sizing import fixed_sizes
from repro.errors import AnalysisError

__all__ = ["rho_fss", "rho_fss_rts", "rho_rss_rts"]


def _check(num_threads: int, num_blocks: int, num_subwarps: int) -> None:
    if num_threads <= 0 or num_blocks <= 0:
        raise AnalysisError("N and R must be positive")
    if not 1 <= num_subwarps <= num_threads:
        raise AnalysisError(
            f"M must be in [1, {num_threads}]: {num_subwarps}"
        )


def _empty_probability(capacity_removed: int, frequency: int,
                       total: int) -> Fraction:
    """P(a subwarp of capacity c sees none of a block's f accesses):
    C(total - c, f) / C(total, f)."""
    denom = binomial(total, frequency)
    if denom == 0:
        raise AnalysisError("frequency exceeds total slots")
    return Fraction(binomial(capacity_removed, frequency), denom)


def rho_fss(num_threads: int, num_blocks: int, num_subwarps: int) -> Fraction:
    """FSS under the FSS attack (Algorithm 1): the attacker reproduces the
    deterministic partition exactly, so rho is 1 — except at M = N where the
    access count is constant and the correlation collapses to 0."""
    _check(num_threads, num_blocks, num_subwarps)
    if num_subwarps == num_threads:
        return Fraction(0)
    return Fraction(1)


def _mean_sum_squared(per_block: Callable[[int], Fraction],
                      num_threads: int, num_blocks: int) -> Fraction:
    """E[(sum_i fn(f_i))^2] under F ~ Multinomial(N; 1/R ... 1/R)."""
    single = multinomial_single_pmf(num_threads, num_blocks)
    values: Dict[int, Fraction] = {f: per_block(f) for f in single}

    second = sum((p * values[f] * values[f] for f, p in single.items()),
                 Fraction(0))
    if num_blocks == 1:
        return second

    pair = multinomial_pair_pmf(num_threads, num_blocks)
    cross = sum((p * values[a] * values[b]
                 for (a, b), p in pair.items()), Fraction(0))
    return (Fraction(num_blocks) * second
            + Fraction(num_blocks * (num_blocks - 1)) * cross)


def rho_fss_rts(num_threads: int, num_blocks: int,
                num_subwarps: int) -> Fraction:
    """FSS+RTS under the mimicking FSS+RTS attack (Section V-B2)."""
    _check(num_threads, num_blocks, num_subwarps)
    n, r, m = num_threads, num_blocks, num_subwarps
    if m == n:
        return Fraction(0)

    subwarp_size = n // m
    if n % m != 0:
        sizes: Tuple[int, ...] = fixed_sizes(n, m)
    else:
        sizes = (subwarp_size,) * m

    mean_u = sum((occupancy_mean(size, r) for size in sizes), Fraction(0))
    var_u = sum((occupancy_variance(size, r) for size in sizes), Fraction(0))
    if var_u == 0:
        return Fraction(0)

    def g(frequency: int) -> Fraction:
        if frequency == 0:
            return Fraction(0)
        return sum(
            (1 - _empty_probability(n - size, frequency, n)
             for size in sizes),
            Fraction(0),
        )

    mean_u_uhat = _mean_sum_squared(g, n, r)
    return (mean_u_uhat - mean_u * mean_u) / var_u


@lru_cache(maxsize=None)
def _rss_building_blocks(num_threads: int, num_blocks: int,
                         num_subwarps: int):
    """Shared terms of the RSS+RTS closed form, cached per (N, R, M)."""
    n, r, m = num_threads, num_blocks, num_subwarps
    part = composition_part_pmf(n, m)
    mean_by_size = {k: occupancy_mean(k, r) for k in part}
    second_by_size = {k: occupancy_second_moment(k, r) for k in part}
    return part, mean_by_size, second_by_size


def rho_rss_rts(num_threads: int, num_blocks: int,
                num_subwarps: int) -> Fraction:
    """RSS+RTS under the mimicking RSS+RTS attack (Section V-B3)."""
    _check(num_threads, num_blocks, num_subwarps)
    n, r, m = num_threads, num_blocks, num_subwarps
    if m == n:
        # Every composition is (1, ..., 1): U is constant.
        return Fraction(0)

    part, mean_by_size, second_by_size = _rss_building_blocks(n, r, m)

    # E[U] = M * E_k[ mu(N_{k,R}) ]
    mean_u = Fraction(m) * sum(
        (p * mean_by_size[k] for k, p in part.items()), Fraction(0)
    )

    # E[U^2] = E_W[ sum_i var_i + (sum_i mu_i)^2 ]
    ev_var = Fraction(m) * sum(
        (p * (second_by_size[k] - mean_by_size[k] ** 2)
         for k, p in part.items()),
        Fraction(0),
    )
    ev_mu_sq_diag = Fraction(m) * sum(
        (p * mean_by_size[k] ** 2 for k, p in part.items()), Fraction(0)
    )
    if m >= 2:
        pair = composition_pair_pmf(n, m)
        ev_mu_sq_cross = Fraction(m * (m - 1)) * sum(
            (p * mean_by_size[a] * mean_by_size[b]
             for (a, b), p in pair.items()),
            Fraction(0),
        )
    else:
        ev_mu_sq_cross = Fraction(0)
    mean_u2 = ev_var + ev_mu_sq_diag + ev_mu_sq_cross
    var_u = mean_u2 - mean_u * mean_u
    if var_u == 0:
        return Fraction(0)

    # h(f) = M * E_k[ 1 - C(N-k, f)/C(N, f) ]
    def h(frequency: int) -> Fraction:
        if frequency == 0:
            return Fraction(0)
        return Fraction(m) * sum(
            (p * (1 - _empty_probability(n - k, frequency, n))
             for k, p in part.items()),
            Fraction(0),
        )

    mean_u_uhat = _mean_sum_squared(h, n, r)
    return (mean_u_uhat - mean_u * mean_u) / var_u
