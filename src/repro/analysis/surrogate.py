"""Launch-level timing surrogate over batched access counts.

The batched collection core (:mod:`repro.gpu.batched`) produces access
*counts* orders of magnitude faster than the event engine, but counts-only
records carry ``total_time = last_round_time = 0`` — the event engine is
the only ground truth for cycles. This module bridges the gap for
analyses that want *approximate* per-launch timings at batched-core
throughput: calibrate an affine per-stage latency model on a small set of
event-engine launches, then compose predicted cycle times for arbitrarily
many batched launches from their counts.

Why affine composition works: for a fixed (config, policy, plaintext
shape), the event engine's kernel time decomposes into a launch-fixed
front-end portion (fetch/decode/issue of the non-memory instructions,
drain of the final writeback) plus a memory portion that grows with the
number of coalesced accesses the launch generates — each extra access
occupies the memory pipeline for an (amortized) constant number of
cycles. The same holds for the round-10 window and its T4 accesses. So

    total_time      ~= a0 + a1 * total_accesses
    last_round_time ~= b0 + b1 * last_round_accesses

with per-shape constants. The surrogate fits those constants by least
squares and reports the residual so callers can see how affine the
engine actually was for their shape.

Exact vs. approximate — be precise about the contract:

* **Counts are exact.** The batched core's counts are checksum-identical
  to the event engine's; nothing here touches them.
* **Cycles are approximate.** DRAM row locality, FR-FCFS reordering and
  inter-warp overlap make the true time deviate from affine-in-counts.
  For the single-warp shapes the paper's timing attack uses the fit is
  near-exact (R^2 > 0.99 in the regression tests); for heavily
  multi-warp launches treat predictions as a trend line, not ground
  truth. Security conclusions that need exact cycles must use the event
  engine (``batched=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["TimingSurrogate", "fit_surrogate"]


def _features(record, last_round: bool) -> Tuple[float, float]:
    """(intercept, access-count) feature pair for one record."""
    count = (record.last_round_accesses if last_round
             else record.total_accesses)
    return (1.0, float(count))


def _fit_axis(records: Sequence, last_round: bool) -> Tuple[float, float, float]:
    """Least-squares (intercept, per-access cycles, R^2) for one axis."""
    matrix = np.array([_features(r, last_round) for r in records])
    target = np.array([
        float(r.last_round_time if last_round else r.total_time)
        for r in records
    ])
    coeffs, _, _, _ = np.linalg.lstsq(matrix, target, rcond=None)
    predicted = matrix @ coeffs
    residual = float(((target - predicted) ** 2).sum())
    spread = float(((target - target.mean()) ** 2).sum())
    r_squared = 1.0 if spread == 0.0 else 1.0 - residual / spread
    return float(coeffs[0]), float(coeffs[1]), r_squared


@dataclass(frozen=True)
class TimingSurrogate:
    """Affine counts -> cycles model for one (config, policy, shape).

    Predictions are rounded to whole cycles (the engine's clock is
    integral); the stored R^2 values describe the calibration fit, not
    any particular prediction.
    """

    total_base: float
    total_per_access: float
    last_round_base: float
    last_round_per_access: float
    total_r2: float
    last_round_r2: float
    calibration_samples: int

    def predict(self, record) -> Tuple[int, int]:
        """Predicted (total_time, last_round_time) for one counts record."""
        total = self.total_base \
            + self.total_per_access * record.total_accesses
        last = self.last_round_base \
            + self.last_round_per_access * record.last_round_accesses
        return max(0, round(total)), max(0, round(last))

    def apply(self, records: Sequence) -> List:
        """Counts records with surrogate times filled in (copies).

        Input records are untouched — mixing surrogate cycles into
        checkpointable ground-truth records silently would defeat the
        exact/approximate contract in the module docstring.
        """
        out = []
        for record in records:
            total, last = self.predict(record)
            out.append(replace(record, total_time=total,
                               last_round_time=last))
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_base": self.total_base,
            "total_per_access": self.total_per_access,
            "last_round_base": self.last_round_base,
            "last_round_per_access": self.last_round_per_access,
            "total_r2": self.total_r2,
            "last_round_r2": self.last_round_r2,
            "calibration_samples": self.calibration_samples,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TimingSurrogate":
        return cls(**{key: data[key] for key in (
            "total_base", "total_per_access",
            "last_round_base", "last_round_per_access",
            "total_r2", "last_round_r2", "calibration_samples",
        )})


def fit_surrogate(records: Sequence) -> TimingSurrogate:
    """Calibrate a surrogate on timed (event-engine) records.

    ``records`` must come from a *timed* run — counts-only records all
    carry zero times and would calibrate a degenerate model, so they are
    rejected outright.
    """
    records = list(records)
    if len(records) < 2:
        raise ConfigurationError(
            f"surrogate calibration needs at least 2 timed records, "
            f"got {len(records)}"
        )
    if all(r.total_time == 0 for r in records):
        raise ConfigurationError(
            "surrogate calibration records all have total_time == 0 — "
            "calibrate on event-engine (timed) records, not counts-only "
            "output"
        )
    total_base, total_slope, total_r2 = _fit_axis(records, last_round=False)
    last_base, last_slope, last_r2 = _fit_axis(records, last_round=True)
    return TimingSurrogate(
        total_base=total_base,
        total_per_access=total_slope,
        last_round_base=last_base,
        last_round_per_access=last_slope,
        total_r2=total_r2,
        last_round_r2=last_r2,
        calibration_samples=len(records),
    )
