"""Deterministic sim-cycle cost-center profiling (axis 1 of ``rcoal
profile``).

:func:`attribute_rounds` answers *which access* made a round window long;
this module answers *which pipeline stage*. Every charged interval of the
attribution waterfall — the ``(frontier, completion]`` span an access or
compute slice advanced the window by — is split across the engine stages
the access actually occupied during those cycles, using the same
uid-stamped trace events:

* ``sm.compute`` — the round's compute slice;
* ``sm.schedule`` — charged cycles before the owning memory instruction
  issued its coalesced groups (issue-port arbitration across the round's
  instructions);
* ``coalescer.serialize`` — inside the instruction's ``coalesce`` span:
  issue latency, per-access LD/ST egress staggering, and waiting behind
  an earlier instruction's egress;
* ``icnt.fwd`` / ``icnt.reply`` — forward/reply crossbar traversal
  including port-contention stalls (the ``fwd_xbar``/``reply_xbar``
  spans);
* ``dram.queue`` — from interconnect arrival to the first DRAM command
  (FR-FCFS queueing plus bank-timing waits such as precharge);
* ``dram.activate`` — the row-miss ACTIVATE (tRCD) span;
* ``dram.column_hit`` / ``dram.column_miss`` — CAS-to-burst-completion
  service, split by row-buffer outcome;
* ``partition.l2`` / ``mshr.wait`` — L2-hit service and MSHR-merged
  waiting (non-default configs; classified via the partition's
  uid-stamped instants).

The stage spans of one access tile its lifetime ``[fwd.ts, reply_end]``
contiguously (each span's end is the next span's start, by construction of
the engine's timing math), so the split is **exact**: cost-center totals
telescope back to the attribution waterfall, whose contributions telescope
to the round-window durations pinned by the golden tests. Any gap raises
instead of silently skewing the chart, and :func:`cost_centers` re-checks
the reconciliation explicitly so ``rcoal profile`` can print it.

Everything here is a pure function of the trace, hence bit-reproducible —
which is what lets ``rcoal profile --check`` gate cost-center drift the
way metrics baselines are gated.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.attribution import RoundAttribution, attribute_rounds
from repro.errors import ConfigurationError
from repro.telemetry.tracer import TraceEvent, Tracer

__all__ = [
    "CostCenterReport",
    "cost_centers",
    "collapsed_stacks",
    "live_cost_centers",
    "render_cost_table",
]

#: Display order for ranked tables (ties broken by name there; this is the
#: canonical catalogue for docs and the drift-gated report schema).
COST_CENTER_NAMES = (
    "sm.compute",
    "sm.schedule",
    "coalescer.serialize",
    "icnt.fwd",
    "icnt.reply",
    "dram.queue",
    "dram.activate",
    "dram.column_hit",
    "dram.column_miss",
    "partition.l2",
    "mshr.wait",
)


@dataclass
class CostCenterReport:
    """Cycle totals per cost center, with per-warp/per-round breakdowns."""

    #: center name -> attributed cycles (summed over all windows).
    centers: Dict[str, float] = field(default_factory=dict)
    #: warp id -> {center -> cycles, "total" -> window cycles}.
    per_warp: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: round index -> {center -> cycles, "total" -> window cycles}.
    per_round: Dict[int, Dict[str, float]] = field(default_factory=dict)
    windows: int = 0
    total_window_cycles: float = 0.0

    @property
    def attributed_cycles(self) -> float:
        return sum(self.centers.values())

    def ranked(self) -> List[Tuple[str, float]]:
        """Centers sorted by cycles, largest first (name breaks ties)."""
        return sorted(self.centers.items(), key=lambda kv: (-kv[1], kv[0]))

    def to_dict(self) -> Dict[str, object]:
        """Deterministic plain-dict form for the stable-JSON report."""
        return {
            "centers": {k: self.centers[k] for k in sorted(self.centers)},
            "per_warp": {
                str(w): {k: v for k, v in sorted(self.per_warp[w].items())}
                for w in sorted(self.per_warp)
            },
            "per_round": {
                str(r): {k: v for k, v in sorted(self.per_round[r].items())}
                for r in sorted(self.per_round)
            },
            "windows": self.windows,
            "total_window_cycles": self.total_window_cycles,
            "reconciliation": {
                "attributed_cycles": self.attributed_cycles,
                "gap": self.attributed_cycles - self.total_window_cycles,
            },
        }


class _EventIndex:
    """uid- and warp-keyed lookups over one trace, window-scoped."""

    def __init__(self, tracer: Tracer):
        self._by_uid: Dict[str, Dict[int, List[TraceEvent]]] = {
            "fwd_xbar": {}, "reply_xbar": {}, "activate": {},
            "column": {}, "l2_hit": {}, "mshr_merge": {},
        }
        #: warp id -> sorted [(ts, end)] of its coalesce spans.
        self._coalesce: Dict[int, List[Tuple[float, float]]] = {}
        for event in tracer.events:
            name = event.name
            if name in ("column_hit", "column_miss"):
                key = "column"
            elif name in self._by_uid:
                key = name
            elif name == "coalesce":
                self._coalesce.setdefault(event.tid, []).append(
                    (event.ts, event.ts + (event.dur or 0)))
                continue
            else:
                continue
            self._by_uid[key].setdefault(event.args["uid"],
                                         []).append(event)
        for per_uid in self._by_uid.values():
            for events in per_uid.values():
                events.sort(key=lambda e: e.ts)
        for spans in self._coalesce.values():
            spans.sort()

    def lookup(self, kind: str, uid: int,
               window: RoundAttribution) -> Optional[TraceEvent]:
        """The uid's ``kind`` event that falls inside the window, if any.

        uids repeat across launches; launches never overlap on the trace
        timeline, so window containment picks the right one (the same
        rule attribution's DRAM join uses).
        """
        for event in self._by_uid[kind].get(uid, ()):
            if window.start <= event.ts <= window.end:
                return event
        return None

    def coalesce_start(self, warp_id: int, inject_ts: float
                       ) -> Optional[float]:
        """Issue cycle of the coalesce span containing ``inject_ts``.

        The engine injects every coalesced block within its instruction's
        ``coalesce`` span ``[issue, ldst_free]``; spans of successive
        instructions may overlap (the next instruction can issue while an
        earlier egress drains), so take the *latest* span starting at or
        before the injection point.
        """
        spans = self._coalesce.get(warp_id)
        if not spans:
            return None
        i = bisect_right(spans, (inject_ts, float("inf"))) - 1
        if i < 0:
            return None
        start, end = spans[i]
        return start if inject_ts <= end else None


def cost_centers(
    tracer: Tracer,
    round_index: Optional[int] = None,
    attributions: Optional[List[RoundAttribution]] = None,
) -> CostCenterReport:
    """Split every attributed cycle across engine cost centers.

    Walks the attribution waterfall window by window, reconstructing each
    contribution's charged interval ``(frontier, completion]``, and
    overlaps it with the access's stage spans from the trace. Pass
    ``attributions`` to reuse an existing :func:`attribute_rounds` result
    (``round_index`` is then ignored — the windows are already filtered).
    """
    if attributions is None:
        attributions = attribute_rounds(tracer, round_index)
    index = _EventIndex(tracer)
    report = CostCenterReport()

    for window in attributions:
        report.windows += 1
        report.total_window_cycles += window.duration
        warp_agg = report.per_warp.setdefault(
            window.warp_id, {"total": 0.0})
        round_agg = report.per_round.setdefault(
            window.round_index, {"total": 0.0})
        warp_agg["total"] += window.duration
        round_agg["total"] += window.duration

        def charge(center: str, cycles: float) -> None:
            if cycles <= 0:
                return
            report.centers[center] = \
                report.centers.get(center, 0.0) + cycles
            warp_agg[center] = warp_agg.get(center, 0.0) + cycles
            round_agg[center] = round_agg.get(center, 0.0) + cycles

        frontier = window.start
        for c in window.contributions:
            lo = frontier
            hi = max(frontier, c.completion)
            frontier = hi
            if c.cycles <= 0:
                continue
            if c.source == "compute":
                charge("sm.compute", hi - lo)
                continue
            split = _split_access(c.uid, lo, hi, window, index)
            for center, cycles in split:
                charge(center, cycles)

    gap = abs(report.attributed_cycles - report.total_window_cycles)
    if gap > 1e-6:
        raise ConfigurationError(
            f"cost-center split failed to reconcile: attributed "
            f"{report.attributed_cycles} of {report.total_window_cycles} "
            f"window cycles (gap {gap})"
        )
    return report


def _split_access(
    uid: Optional[int], lo: float, hi: float,
    window: RoundAttribution, index: _EventIndex,
) -> List[Tuple[str, float]]:
    """Partition one access's charged interval across its stage spans.

    Builds the contiguous boundary sequence of the access's lifetime —
    inject, forward arrival, (activate,) CAS, DRAM completion, reply
    delivery — and intersects each named span with ``[lo, hi]``. The
    spans tile ``[fwd.ts, hi]`` and any charged cycles before the
    injection are scheduler/coalescer time, so the pieces sum exactly to
    ``hi - lo``.
    """
    fwd = index.lookup("fwd_xbar", uid, window)
    if fwd is None:
        raise ConfigurationError(
            f"access uid={uid} has no fwd_xbar event in its window; "
            f"the trace is incomplete"
        )
    reply = index.lookup("reply_xbar", uid, window)
    if reply is None:
        raise ConfigurationError(
            f"access uid={uid} has no reply_xbar event in its window; "
            f"the trace is incomplete"
        )
    fwd_end = fwd.ts + (fwd.dur or 0)
    reply_ts = reply.ts

    # [boundary start, name] pairs; each span ends where the next starts,
    # the last one ending at the reply delivery (== hi).
    spans: List[Tuple[float, str]] = [(fwd.ts, "icnt.fwd")]
    column = index.lookup("column", uid, window)
    if column is not None:
        activate = index.lookup("activate", uid, window)
        if activate is not None:
            spans.append((fwd_end, "dram.queue"))
            spans.append((activate.ts, "dram.activate"))
        else:
            spans.append((fwd_end, "dram.queue"))
        center = ("dram.column_hit" if column.name == "column_hit"
                  else "dram.column_miss")
        spans.append((column.ts, center))
    elif index.lookup("l2_hit", uid, window) is not None:
        spans.append((fwd_end, "partition.l2"))
    elif index.lookup("mshr_merge", uid, window) is not None:
        spans.append((fwd_end, "mshr.wait"))
    else:
        # A read that reached DRAM always has a column event (attribution
        # requires a complete trace); keep the account balanced anyway.
        spans.append((fwd_end, "dram.queue"))
    spans.append((reply_ts, "icnt.reply"))

    pieces: List[Tuple[str, float]] = []
    # Charged cycles before the access left the coalescer: split at the
    # owning instruction's issue into scheduler vs coalescer time.
    if lo < fwd.ts:
        issue = index.coalesce_start(window.warp_id, fwd.ts)
        cut = fwd.ts if issue is None else min(max(issue, lo), fwd.ts)
        if cut > lo:
            pieces.append(("sm.schedule", cut - lo))
        if fwd.ts > cut:
            pieces.append(("coalescer.serialize", fwd.ts - cut))
    for i, (start, center) in enumerate(spans):
        end = spans[i + 1][0] if i + 1 < len(spans) else hi
        share = min(hi, end) - max(lo, start)
        if share > 0:
            pieces.append((center, share))
    total = sum(cycles for _, cycles in pieces)
    if abs(total - (hi - lo)) > 1e-9:
        raise ConfigurationError(
            f"stage split for access uid={uid} does not tile its charged "
            f"interval: {total} != {hi - lo} cycles (window warp "
            f"{window.warp_id} round {window.round_index})"
        )
    return pieces


def render_cost_table(report: CostCenterReport,
                      top: Optional[int] = None) -> str:
    """The ranked cost-center table ``rcoal profile`` prints."""
    ranked = report.ranked()
    if top is not None:
        ranked = ranked[:top]
    total = report.total_window_cycles or 1.0
    width = max([len(name) for name, _ in ranked] + [len("cost center")])
    lines = [f"{'cost center'.ljust(width)}  {'cycles':>14}  {'share':>7}"]
    for name, cycles in ranked:
        lines.append(f"{name.ljust(width)}  {cycles:>14.0f}  "
                     f"{100.0 * cycles / total:>6.2f}%")
    lines.append(f"{'total attributed'.ljust(width)}  "
                 f"{report.attributed_cycles:>14.0f}  {'100.00%':>7}")
    return "\n".join(lines)


def collapsed_stacks(report: CostCenterReport) -> str:
    """Cost centers in Brendan Gregg's collapsed-stack format.

    One line per center as ``sim;<stage>;<leaf> <cycles>`` (plus per-warp
    ``warp:<id>`` frames), directly consumable by ``flamegraph.pl`` or
    speedscope to render a cycles flamegraph.
    """
    lines: List[str] = []
    for name, cycles in report.ranked():
        stack = name.replace(".", ";")
        lines.append(f"sim;{stack} {int(round(cycles))}")
    for warp_id in sorted(report.per_warp):
        for name, cycles in sorted(report.per_warp[warp_id].items()):
            if name == "total":
                continue
            stack = name.replace(".", ";")
            lines.append(f"sim;warp:{warp_id};{stack} "
                         f"{int(round(cycles))}")
    return "\n".join(lines) + "\n"


#: Live approximation: cumulative engine counters -> cost-center-ish cycle
#: totals, for the ``/profile`` endpoint (no trace join required). These
#: are stage *occupancy* totals, not critical-path attribution — hidden
#: (overlapped) cycles count here but not in :func:`cost_centers`.
_LIVE_COUNTER_CENTERS = (
    ("sched.stall", "sched.stall_cycles"),
    ("coalescer.serialize", "coalescer.serialize_cycles"),
    ("coalescer.ldst_wait", "coalescer.ldst_wait_cycles"),
    ("icnt.fwd.transit", "icnt.fwd.transit_cycles"),
    ("icnt.fwd.stall", "icnt.fwd.stall_cycles"),
    ("icnt.reply.transit", "icnt.reply.transit_cycles"),
    ("icnt.reply.stall", "icnt.reply.stall_cycles"),
    ("dram.activate", "dram.activate_cycles"),
    ("dram.service", "dram.service_cycles"),
    ("dram.bus", "dram.bus_busy_cycles"),
)


def live_cost_centers(snapshot: Dict[str, Dict[str, object]]
                      ) -> Dict[str, float]:
    """Approximate cost-center totals from a live metrics snapshot."""
    centers: Dict[str, float] = {}
    for center, metric in _LIVE_COUNTER_CENTERS:
        entry = snapshot.get(metric)
        if entry is not None and "value" in entry:
            centers[center] = entry["value"]
    queue = snapshot.get("dram.queue_wait_cycles")
    if queue is not None and "sum" in queue:
        centers["dram.queue_wait"] = queue["sum"]
    return {name: centers[name] for name in sorted(centers)}
