"""A small set-associative cache model (L2, per memory partition).

Disabled by default to match the paper's evaluation (Section VII disables
caches and MSHRs so the intra-warp coalescer is the only bandwidth filter).
Provided so the substrate is complete and cache-enabled ablations can be run.
LRU replacement, write-through / no-write-allocate (stores bypass).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError

__all__ = ["CacheStats", "SetAssociativeCache"]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """An LRU set-associative cache keyed by block address."""

    def __init__(self, num_lines: int, ways: int, line_bytes: int = 64):
        if num_lines <= 0 or ways <= 0:
            raise ConfigurationError("cache geometry must be positive")
        if num_lines % ways != 0:
            raise ConfigurationError(
                f"num_lines ({num_lines}) must be a multiple of ways ({ways})"
            )
        self.num_sets = num_lines // ways
        self.ways = ways
        self.line_bytes = line_bytes
        self._sets: Dict[int, OrderedDict] = {
            s: OrderedDict() for s in range(self.num_sets)
        }
        self.stats = CacheStats()

    def _set_index(self, block_address: int) -> int:
        return (block_address // self.line_bytes) % self.num_sets

    def lookup(self, block_address: int) -> bool:
        """Probe and fill: True on hit, False on miss (line is allocated)."""
        set_map = self._sets[self._set_index(block_address)]
        if block_address in set_map:
            set_map.move_to_end(block_address)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(set_map) >= self.ways:
            set_map.popitem(last=False)
        set_map[block_address] = True
        return False

    def invalidate(self) -> None:
        """Drop all lines (kernel boundary)."""
        for set_map in self._sets.values():
            set_map.clear()
