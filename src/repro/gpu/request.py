"""Memory request records flowing through the simulated memory system."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = ["AccessKind", "MemoryAccess"]

_access_ids = itertools.count()


class AccessKind(Enum):
    """What generated a coalesced access (used for statistics buckets)."""

    TABLE_LOAD = "table_load"
    INPUT_LOAD = "input_load"
    OUTPUT_STORE = "output_store"


@dataclass
class MemoryAccess:
    """One coalesced memory access (a 64-byte block request).

    Produced by the coalescing unit; one instance travels through the
    interconnect, is serviced by a DRAM partition, and its completion wakes
    the issuing warp.
    """

    address: int
    kind: AccessKind
    warp_id: int
    sm_id: int
    round_index: Optional[int] = None
    is_write: bool = False
    #: Unique id, assigned at creation (stable ordering for FR-FCFS ties).
    uid: int = field(default_factory=lambda: next(_access_ids))
    #: Fill-in fields as the access progresses through the system.
    inject_cycle: int = 0
    arrival_cycle: int = 0
    complete_cycle: int = 0

    def __lt__(self, other: "MemoryAccess") -> bool:
        return self.uid < other.uid
