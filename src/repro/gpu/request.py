"""Memory request records flowing through the simulated memory system."""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Optional

__all__ = ["AccessKind", "MemoryAccess"]

_access_ids = itertools.count()


class AccessKind(Enum):
    """What generated a coalesced access (used for statistics buckets)."""

    TABLE_LOAD = "table_load"
    INPUT_LOAD = "input_load"
    OUTPUT_STORE = "output_store"


class MemoryAccess:
    """One coalesced memory access (a 64-byte block request).

    Produced by the coalescing unit; one instance travels through the
    interconnect, is serviced by a DRAM partition, and its completion wakes
    the issuing warp. A plain ``__slots__`` class rather than a dataclass:
    the engine allocates one per coalesced access (thousands per kernel),
    making construction cost and per-instance memory part of the simulator's
    hot path.
    """

    __slots__ = ("address", "kind", "warp_id", "sm_id", "round_index",
                 "is_write", "uid", "inject_cycle", "arrival_cycle",
                 "complete_cycle")

    def __init__(self, address: int, kind: AccessKind, warp_id: int,
                 sm_id: int, round_index: Optional[int] = None,
                 is_write: bool = False, uid: Optional[int] = None):
        self.address = address
        self.kind = kind
        self.warp_id = warp_id
        self.sm_id = sm_id
        self.round_index = round_index
        self.is_write = is_write
        #: Unique id (stable ordering for FR-FCFS ties). The engine passes
        #: a launch-local id — deterministic 0..N-1 in generation order, so
        #: traced events carry the *same* access id across reruns, worker
        #: processes, and -j settings (the attribution join depends on it).
        #: Direct constructions fall back to a process-global counter.
        self.uid = next(_access_ids) if uid is None else uid
        #: Fill-in fields as the access progresses through the system.
        self.inject_cycle = 0
        self.arrival_cycle = 0
        self.complete_cycle = 0

    def __lt__(self, other: "MemoryAccess") -> bool:
        return self.uid < other.uid

    def __repr__(self) -> str:
        return (f"MemoryAccess(address={self.address:#x}, kind={self.kind}, "
                f"warp_id={self.warp_id}, sm_id={self.sm_id}, "
                f"round_index={self.round_index}, is_write={self.is_write}, "
                f"uid={self.uid})")
