"""The memory coalescing unit (MCU) with subwarp support.

This models the modified coalescing unit of Fig 11. Each load instruction
logs one pending-request-table (PRT) entry per active thread, carrying the
thread id, the request's base/offset address, its size, and — the RCoal
extension — a **subwarp id (sid)** field. Threads sharing a sid are coalesced
together: their requests are merged into as few 64-byte block accesses as
possible; threads with different sids are never merged, even when they touch
the same block.

The sid-per-thread mapping is supplied by a coalescing policy
(:mod:`repro.core.policies`) and, matching the hardware description, is fixed
for the duration of one kernel launch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.telemetry import Telemetry

__all__ = ["PRTEntry", "PendingRequestTable", "CoalescedGroup",
           "CoalescingUnit"]


@dataclass(frozen=True)
class PRTEntry:
    """One pending-request-table row (Fig 11): tid, sid, address, size."""

    tid: int
    sid: int
    base_address: int
    offset: int
    size: int

    @property
    def address(self) -> int:
        return self.base_address + self.offset


class PendingRequestTable:
    """The PRT of one coalescing unit.

    A bounded table; entries are logged when a warp issues a memory
    instruction and drained when the instruction's accesses are generated.
    The bound models the hardware structure; the default (one full warp's
    worth per scheduler) never back-pressures the simple in-order warps used
    here, but the invariant is enforced to keep the model honest.
    """

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ConfigurationError(f"PRT capacity must be positive: {capacity}")
        self.capacity = capacity
        self._entries: List[PRTEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[PRTEntry, ...]:
        return tuple(self._entries)

    def log(self, entry: PRTEntry) -> None:
        """Insert one entry; raises when the table is full."""
        if len(self._entries) >= self.capacity:
            raise ProtocolError("pending request table overflow")
        self._entries.append(entry)

    def drain(self) -> List[PRTEntry]:
        """Remove and return all entries (instruction fully processed)."""
        entries, self._entries = self._entries, []
        return entries


@dataclass(frozen=True)
class CoalescedGroup:
    """The coalesced accesses generated for one subwarp of one instruction."""

    sid: int
    block_addresses: Tuple[int, ...]
    thread_ids: Tuple[int, ...]


class CoalescingUnit:
    """Merges a warp's per-thread requests into block accesses, per subwarp.

    Parameters
    ----------
    access_bytes:
        Memory block (coalesced access) size; 64 in the paper's setup.
    prt_capacity:
        Pending-request-table size.
    """

    def __init__(self, access_bytes: int = 64, prt_capacity: int = 64,
                 telemetry: Optional[Telemetry] = None):
        if access_bytes <= 0 or access_bytes & (access_bytes - 1):
            raise ConfigurationError(
                f"access size must be a positive power of two: {access_bytes}"
            )
        self.access_bytes = access_bytes
        self.prt = PendingRequestTable(prt_capacity)
        self._telemetry = Telemetry.ensure(telemetry)

    def _block_of(self, address: int) -> int:
        return address & ~(self.access_bytes - 1)

    def coalesce(
        self,
        addresses: Sequence[int],
        subwarp_map: Sequence[int],
        request_size: int = 4,
        active_mask: Optional[Sequence[bool]] = None,
    ) -> List[CoalescedGroup]:
        """Coalesce one warp instruction's thread addresses.

        Parameters
        ----------
        addresses:
            Per-thread byte addresses, one per lane.
        subwarp_map:
            Per-thread subwarp id (sid); threads are merged only within a
            sid. ``len(subwarp_map)`` must equal ``len(addresses)``.
        request_size:
            Per-thread request size in bytes (4 for table lookups).
        active_mask:
            Optional per-thread active flags (branch divergence / partially
            full warps); inactive threads generate no request.

        Returns
        -------
        One :class:`CoalescedGroup` per non-empty subwarp, ordered by sid;
        block addresses within a group are ordered by first touching thread,
        matching hardware generation order.
        """
        if len(addresses) != len(subwarp_map):
            raise ConfigurationError(
                f"{len(addresses)} addresses vs {len(subwarp_map)} sids"
            )
        if active_mask is not None and len(active_mask) != len(addresses):
            raise ConfigurationError("active mask length mismatch")

        # Group directly instead of materializing PRTEntry rows: the unit
        # runs once per memory instruction with one entry per active lane,
        # so per-entry allocation dominates its cost. The PRT's capacity
        # invariant (one row per active thread) is still enforced.
        block_mask = ~(self.access_bytes - 1)
        groups: Dict[int, Tuple[List[int], set, List[int]]] = {}
        logged = 0
        for tid, address in enumerate(addresses):
            if active_mask is not None and not active_mask[tid]:
                continue
            logged += 1
            sid = subwarp_map[tid]
            group = groups.get(sid)
            if group is None:
                group = ([], set(), [])
                groups[sid] = group
            blocks, seen, tids = group
            block = address & block_mask
            if block not in seen:
                seen.add(block)
                blocks.append(block)
            tids.append(tid)
        if logged > self.prt.capacity:
            raise ProtocolError("pending request table overflow")

        result = [
            CoalescedGroup(sid=sid,
                           block_addresses=tuple(blocks),
                           thread_ids=tuple(tids))
            for sid, (blocks, _seen, tids) in sorted(groups.items())
        ]

        if self._telemetry.enabled:
            metrics = self._telemetry.metrics
            total_blocks = sum(len(g.block_addresses) for g in result)
            metrics.counter("coalescer.instructions").inc()
            metrics.counter("coalescer.accesses").inc(total_blocks)
            metrics.histogram(
                "coalescer.prt_occupancy",
                buckets=tuple(range(1, self.prt.capacity + 1)),
            ).observe(logged)
            metrics.histogram(
                "coalescer.accesses_per_instruction",
                buckets=tuple(range(1, 65)),
            ).observe(total_blocks)
            metrics.histogram(
                "coalescer.subwarps_per_instruction",
                buckets=tuple(range(1, 33)),
            ).observe(len(result))

        return result

    def count_accesses(
        self,
        addresses: Sequence[int],
        subwarp_map: Sequence[int],
        active_mask: Optional[Sequence[bool]] = None,
    ) -> int:
        """Number of coalesced accesses an instruction generates.

        Fast path used by counts-only experiments and the Monte-Carlo
        analysis; equivalent to summing group sizes from :meth:`coalesce`.
        """
        seen: set = set()
        block_mask = ~(self.access_bytes - 1)
        for tid, address in enumerate(addresses):
            if active_mask is not None and not active_mask[tid]:
                continue
            seen.add((subwarp_map[tid], address & block_mask))
        return len(seen)
