"""Kernel execution statistics produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aes.key_schedule import NUM_ROUNDS
from repro.errors import ProtocolError
from repro.gpu.dram import DramStats
from repro.gpu.request import AccessKind

__all__ = ["RoundWindow", "KernelResult"]


@dataclass
class RoundWindow:
    """Observed execution window of one AES round on one warp."""

    start: Optional[int] = None
    end: Optional[int] = None

    def observe_start(self, cycle: int) -> None:
        if self.start is None or cycle < self.start:
            self.start = cycle

    def observe_end(self, cycle: int) -> None:
        if self.end is None or cycle > self.end:
            self.end = cycle

    @property
    def duration(self) -> int:
        if self.start is None or self.end is None:
            raise ProtocolError("round window never observed")
        return self.end - self.start


@dataclass
class KernelResult:
    """Everything an experiment reads back from one simulated kernel launch.

    ``last_round_time`` is the paper's measured quantity: the span from the
    first warp entering round 10 to the last round-10 reply. With a single
    warp (32-line plaintexts) it is exactly that warp's round-10 duration.
    """

    num_warps: int
    total_cycles: int = 0
    drain_cycles: int = 0
    #: accesses[kind] = count across the kernel.
    access_counts: Dict[AccessKind, int] = field(default_factory=dict)
    #: Table-load accesses per round (1..10).
    round_accesses: Dict[int, int] = field(default_factory=dict)
    #: Per-warp, per-round execution windows.
    round_windows: Dict[Tuple[int, int], RoundWindow] = field(
        default_factory=dict)
    dram_stats: List[DramStats] = field(default_factory=list)
    #: Per-warp completion cycles.
    warp_finish: Dict[int, int] = field(default_factory=dict)
    #: Telemetry metrics snapshot (cumulative over the owning simulator's
    #: launches), populated only when the run was instrumented; None —
    #: never an empty dict — for uninstrumented runs, keeping telemetry-off
    #: results byte-identical to pre-telemetry behaviour.
    metrics: Optional[Dict[str, object]] = None

    # -- recording helpers (engine-facing) -----------------------------------

    def window(self, warp_id: int, round_index: int) -> RoundWindow:
        key = (warp_id, round_index)
        if key not in self.round_windows:
            self.round_windows[key] = RoundWindow()
        return self.round_windows[key]

    def count_access(self, kind: AccessKind, round_index: Optional[int]
                     ) -> None:
        self.count_accesses(kind, round_index, 1)

    def count_accesses(self, kind: AccessKind, round_index: Optional[int],
                       count: int) -> None:
        """Record ``count`` accesses at once (one call per instruction —
        all of an instruction's coalesced accesses share kind and round)."""
        self.access_counts[kind] = self.access_counts.get(kind, 0) + count
        if kind is AccessKind.TABLE_LOAD and round_index is not None:
            self.round_accesses[round_index] = (
                self.round_accesses.get(round_index, 0) + count
            )

    # -- derived metrics (experiment-facing) ----------------------------------

    @property
    def total_accesses(self) -> int:
        """All coalesced accesses generated (the data-movement metric)."""
        return sum(self.access_counts.values())

    @property
    def table_accesses(self) -> int:
        return self.access_counts.get(AccessKind.TABLE_LOAD, 0)

    @property
    def last_round_accesses(self) -> int:
        """Coalesced T4 accesses in round 10 (the attack's estimand)."""
        return self.round_accesses.get(NUM_ROUNDS, 0)

    def round_span(self, round_index: int) -> int:
        """Earliest start to latest end of a round across warps."""
        windows = [w for (wid, r), w in self.round_windows.items()
                   if r == round_index]
        if not windows:
            raise ProtocolError(f"no windows recorded for round {round_index}")
        start = min(w.start for w in windows if w.start is not None)
        end = max(w.end for w in windows if w.end is not None)
        return end - start

    @property
    def last_round_time(self) -> int:
        """The attack's timing observable (last-round execution span)."""
        return self.round_span(NUM_ROUNDS)

    @property
    def total_time(self) -> int:
        """Kernel execution time in core cycles."""
        return self.total_cycles

    def warp_last_round_duration(self, warp_id: int) -> int:
        return self.round_windows[(warp_id, NUM_ROUNDS)].duration

    def aggregate_dram(self) -> DramStats:
        """Sum DRAM statistics across partitions."""
        total = DramStats()
        for stats in self.dram_stats:
            total.row_hits += stats.row_hits
            total.row_misses += stats.row_misses
            total.reads += stats.reads
            total.writes += stats.writes
            total.bus_busy_cycles += stats.bus_busy_cycles
            total.queue_wait_cycles += stats.queue_wait_cycles
        return total
