"""Global address space layout and decoding.

The simulated GPU interleaves the linear global address space across memory
partitions in 256-byte chunks (Table I / the GPGPU-Sim address mapping the
paper cites). Within a partition, consecutive local chunks round-robin over
DRAM banks, and rows are the next level up.

The AES working set is laid out as a real CUDA kernel would place it:

* the five lookup tables T0..T4 contiguously at ``TABLE_REGION_BASE``
  (1 KB each, so table ``t`` entry ``i`` sits at
  ``TABLE_REGION_BASE + 1024*t + 4*i``);
* the plaintext buffer and ciphertext buffer in separate regions, one
  16-byte line per thread, lines consecutive.

Because each table is 1 KB and blocks are 64 B, a table spans R = 16 blocks —
matching the attack's ``index >> 4`` block computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.aes.tables import ENTRY_BYTES, TABLE_BYTES
from repro.gpu.config import GPUConfig

__all__ = [
    "TABLE_REGION_BASE",
    "PLAINTEXT_REGION_BASE",
    "CIPHERTEXT_REGION_BASE",
    "AddressMap",
    "PermutedAddressMap",
]

#: Base virtual addresses of the kernel's data regions.
TABLE_REGION_BASE = 0x1000_0000
PLAINTEXT_REGION_BASE = 0x2000_0000
CIPHERTEXT_REGION_BASE = 0x3000_0000


@dataclass(frozen=True)
class DecodedAddress:
    """DRAM coordinates of a physical address."""

    partition: int
    bank: int
    row: int
    block_address: int


class AddressMap:
    """Address computation and decoding for a :class:`GPUConfig`.

    Decoding is memoized: a kernel touches a small, fixed set of block
    addresses (the 5 KB table region plus one line per thread) but decodes
    each one on every DRAM enqueue, so the cache turns the hot-path cost
    into one dict probe. :class:`DecodedAddress` is frozen, making the
    shared instances safe.
    """

    def __init__(self, config: GPUConfig):
        self._config = config
        self._chunk = config.partition_chunk_bytes
        self._block = config.access_bytes
        self._num_partitions = config.num_partitions
        self._num_banks = config.num_banks
        self._rows_chunks = config.row_bytes // self._chunk
        #: Chunk size is a power of two in every real configuration; shift
        #: instead of dividing on the per-access partition lookup.
        chunk = self._chunk
        self._chunk_shift = (chunk.bit_length() - 1
                             if chunk & (chunk - 1) == 0 else None)
        self._decode_cache = {}

    # -- region address builders -------------------------------------------

    def table_entry_address(self, table_id: int, index: int) -> int:
        """Byte address of entry ``index`` of lookup table ``table_id``."""
        return TABLE_REGION_BASE + table_id * TABLE_BYTES + index * ENTRY_BYTES

    def line_address(self, base: int, line: int) -> int:
        """Byte address of 16-byte line ``line`` in a data region."""
        return base + 16 * line

    # -- decoding ------------------------------------------------------------

    def block_address(self, address: int) -> int:
        """The address truncated to its 64-byte memory block."""
        return address - (address % self._block)

    def partition_of(self, address: int) -> int:
        """Memory partition servicing ``address`` (256 B interleave)."""
        if self._chunk_shift is not None:
            return (address >> self._chunk_shift) % self._num_partitions
        return (address // self._chunk) % self._num_partitions

    def decode(self, address: int) -> DecodedAddress:
        """Full DRAM coordinates of ``address`` (memoized)."""
        cached = self._decode_cache.get(address)
        if cached is None:
            cached = self._decode_uncached(address)
            self._decode_cache[address] = cached
        return cached

    def _decode_uncached(self, address: int) -> DecodedAddress:
        chunk_id = address // self._chunk
        partition = chunk_id % self._num_partitions
        local_chunk = chunk_id // self._num_partitions
        bank = local_chunk % self._num_banks
        row = local_chunk // self._num_banks // self._rows_chunks
        return DecodedAddress(
            partition=partition,
            bank=bank,
            row=row,
            block_address=self.block_address(address),
        )

    def bank_group_of(self, bank: int) -> int:
        """Bank group a bank belongs to (consecutive grouping)."""
        banks_per_group = self._num_banks // self._config.num_bank_groups
        return bank // banks_per_group


class PermutedAddressMap(AddressMap):
    """An address map with secretly permuted partition/bank assignment.

    Models memory-hierarchy randomization (the paper's second future-work
    direction, Section VII): the chunk→partition and chunk→bank mappings
    are permuted under a secret drawn at boot, as hardware memory hashing
    would. Crucially this does **not** change which requests coalesce —
    the coalescer merges by block address before any mapping — so the
    count-based timing leak survives it untouched; the
    ``ablation_addrmap`` experiment measures exactly that.
    """

    def __init__(self, config: GPUConfig, rng):
        super().__init__(config)
        self._partition_perm = [int(x)
                                for x in rng.permutation(config.num_partitions)]
        self._bank_perm = [int(x) for x in rng.permutation(config.num_banks)]

    def partition_of(self, address: int) -> int:
        return self._partition_perm[super().partition_of(address)]

    def _decode_uncached(self, address: int) -> DecodedAddress:
        plain = super()._decode_uncached(address)
        return DecodedAddress(
            partition=self._partition_perm[plain.partition],
            bank=self._bank_perm[plain.bank],
            row=plain.row,
            block_address=plain.block_address,
        )
