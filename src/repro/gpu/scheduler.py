"""Warp schedulers.

Each SM has two warp schedulers (Table I); warps are statically partitioned
between them (even/odd warp slots, as in GPGPU-Sim's "lrr" arrangement). A
scheduler issues at most one warp instruction per ``issue_cycles`` window; a
ready warp issues at the earliest cycle its scheduler frees. This greedy
earliest-free arbitration approximates loose round-robin: in-order warps are
only ready when not stalled on memory, so long-latency loads naturally
multiplex the schedulers across warps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError

__all__ = ["WarpScheduler", "SchedulerSet"]


@dataclass
class WarpScheduler:
    """One warp scheduler's issue-port availability."""

    issue_cycles: int
    next_free: int = 0
    issued: int = 0
    #: Cycles ready warps spent waiting on the busy issue port — the
    #: scheduler-stall cost center read by the profiler at end of launch.
    stall_cycles: int = 0

    def issue_at(self, ready_cycle: int) -> int:
        """Reserve the issue port for one instruction; returns issue cycle."""
        cycle = max(ready_cycle, self.next_free)
        self.stall_cycles += cycle - ready_cycle
        self.next_free = cycle + self.issue_cycles
        self.issued += 1
        return cycle


class SchedulerSet:
    """The warp schedulers of one SM plus warp-to-scheduler assignment."""

    def __init__(self, num_schedulers: int, issue_cycles: int):
        if num_schedulers <= 0:
            raise ConfigurationError(
                f"scheduler count must be positive: {num_schedulers}"
            )
        self._schedulers: List[WarpScheduler] = [
            WarpScheduler(issue_cycles) for _ in range(num_schedulers)
        ]

    def __len__(self) -> int:
        return len(self._schedulers)

    def for_warp(self, warp_slot: int) -> WarpScheduler:
        """The scheduler owning a warp slot (static even/odd partition)."""
        return self._schedulers[warp_slot % len(self._schedulers)]

    @property
    def total_issued(self) -> int:
        return sum(s.issued for s in self._schedulers)

    @property
    def total_stall_cycles(self) -> int:
        return sum(s.stall_cycles for s in self._schedulers)
