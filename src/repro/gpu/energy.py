"""A GPUWattch-style energy model for the memory system.

The paper motivates coalescing with bandwidth *and* energy efficiency
(Section II-A cites GPUWattch) and quantifies defenses by data movement.
This model turns a :class:`~repro.gpu.stats.KernelResult` into energy
numbers so the defenses' energy overhead can be reported alongside time:

* per-access DRAM burst energy (the dominant data-movement term),
* per-activation row energy (row misses),
* per-hop interconnect energy per 64-byte transfer,
* background/static energy proportional to execution time.

Coefficients are order-of-magnitude figures for a GDDR5-era part
(pJ/bit-scale constants folded into per-event costs); what matters for the
evaluation is the *relative* energy across policies, which is dominated by
the access counts the simulator measures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.stats import KernelResult

__all__ = ["EnergyModel", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one kernel launch, in nanojoules, by component."""

    dram_burst_nj: float
    dram_activate_nj: float
    interconnect_nj: float
    static_nj: float

    @property
    def total_nj(self) -> float:
        return (self.dram_burst_nj + self.dram_activate_nj
                + self.interconnect_nj + self.static_nj)

    @property
    def dynamic_nj(self) -> float:
        return self.total_nj - self.static_nj

    def scaled_against(self, baseline: "EnergyBreakdown") -> float:
        """Total energy normalized to a baseline launch."""
        return self.total_nj / baseline.total_nj


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy coefficients.

    Defaults: a 64-byte GDDR5 burst at ~20 pJ/bit-ish ballpark folds to
    ~10 nJ/access including I/O; a row activation ~2 nJ; moving 64 bytes
    across the on-chip crossbar ~1 nJ; static power folded to ~5 W at
    1.4 GHz -> ~3.6 nJ per 1000 cycles.
    """

    burst_nj_per_access: float = 10.0
    activate_nj: float = 2.0
    interconnect_nj_per_access: float = 1.0
    static_nj_per_kcycle: float = 3.6

    def __post_init__(self) -> None:
        for name, value in (
            ("burst_nj_per_access", self.burst_nj_per_access),
            ("activate_nj", self.activate_nj),
            ("interconnect_nj_per_access", self.interconnect_nj_per_access),
            ("static_nj_per_kcycle", self.static_nj_per_kcycle),
        ):
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0: {value}")

    def evaluate(self, result: KernelResult) -> EnergyBreakdown:
        """Energy of one kernel launch from its statistics."""
        dram = result.aggregate_dram()
        return EnergyBreakdown(
            dram_burst_nj=self.burst_nj_per_access * dram.accesses,
            dram_activate_nj=self.activate_nj * dram.row_misses,
            # Request + reply traversal per coalesced access.
            interconnect_nj=(self.interconnect_nj_per_access
                             * result.total_accesses),
            static_nj=(self.static_nj_per_kcycle
                       * result.total_cycles / 1000.0),
        )
