"""Miss-status holding registers (MSHR).

MSHRs merge requests to a block that already has a request in flight: the
secondary request completes when the primary's reply arrives, consuming no
additional DRAM bandwidth. The paper's evaluation **disables** MSHRs (and
caches) to isolate intra-warp coalescing (Section VII); the model exists so
the substrate is complete and the interaction can be studied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.gpu.request import MemoryAccess

__all__ = ["MSHRFile", "MSHROutcome"]


@dataclass
class MSHROutcome:
    """Result of presenting an access to the MSHR file."""

    #: True when the access must be sent to memory (primary miss).
    send_to_memory: bool
    #: True when the MSHR file is full and the access must be retried.
    stalled: bool = False


@dataclass
class _Entry:
    primary: MemoryAccess
    secondaries: List[MemoryAccess] = field(default_factory=list)


class MSHRFile:
    """A bounded file of miss-status holding registers for one partition."""

    def __init__(self, num_entries: int, max_merged: int = 8):
        if num_entries <= 0:
            raise ConfigurationError(
                f"MSHR entry count must be positive: {num_entries}"
            )
        self.num_entries = num_entries
        self.max_merged = max_merged
        self._entries: Dict[int, _Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, access: MemoryAccess) -> MSHROutcome:
        """Record an access; decide whether it needs a memory request."""
        entry = self._entries.get(access.address)
        if entry is not None:
            if len(entry.secondaries) >= self.max_merged:
                return MSHROutcome(send_to_memory=False, stalled=True)
            entry.secondaries.append(access)
            return MSHROutcome(send_to_memory=False)
        if len(self._entries) >= self.num_entries:
            return MSHROutcome(send_to_memory=True, stalled=True)
        self._entries[access.address] = _Entry(primary=access)
        return MSHROutcome(send_to_memory=True)

    def complete(self, block_address: int, cycle: int) -> List[MemoryAccess]:
        """The primary reply arrived; release all merged accesses."""
        entry = self._entries.pop(block_address, None)
        if entry is None:
            return []
        released = [entry.primary] + entry.secondaries
        for access in released:
            access.complete_cycle = cycle
        return released
