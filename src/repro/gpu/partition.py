"""A memory partition: optional L2 + optional MSHRs + a DRAM controller.

Requests arrive from the interconnect; the partition first probes its L2
(when enabled), then its MSHR file (when enabled) to merge duplicate in-
flight blocks, and finally queues the access at the FR-FCFS DRAM controller.
Both filters are disabled in the paper's configuration, in which case every
coalesced access becomes one DRAM service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.gpu.address import AddressMap
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import GPUConfig
from repro.gpu.dram import MemoryController
from repro.gpu.mshr import MSHRFile
from repro.gpu.request import MemoryAccess
from repro.telemetry import PID_DRAM, Telemetry

__all__ = ["ArrivalResult", "MemoryPartition"]


@dataclass
class ArrivalResult:
    """What happened when an access arrived at a partition."""

    #: Accesses that completed immediately (cache hits), with completion cycle.
    immediate: List[Tuple[MemoryAccess, int]]
    #: True when the access entered the DRAM queue (controller may need a kick).
    queued: bool


class MemoryPartition:
    """One of the GPU's memory partitions."""

    def __init__(self, partition_id: int, config: GPUConfig,
                 address_map: AddressMap,
                 telemetry: Optional[Telemetry] = None):
        self.partition_id = partition_id
        self._address_map = address_map
        self._telemetry = Telemetry.ensure(telemetry)
        self.controller = MemoryController(
            num_banks=config.num_banks,
            timing=config.dram_timing_core,
            telemetry=telemetry,
            partition_id=partition_id,
        )
        self.l2: Optional[SetAssociativeCache] = (
            SetAssociativeCache(config.l2_lines, config.l2_ways,
                                config.access_bytes)
            if config.enable_l2 else None
        )
        self.mshrs: Optional[MSHRFile] = (
            MSHRFile(config.mshr_entries) if config.enable_mshr else None
        )
        self._l2_hit_latency = config.l2_hit_latency

    def arrive(self, access: MemoryAccess, cycle: int) -> ArrivalResult:
        """Process one access arriving from the interconnect."""
        access.arrival_cycle = cycle

        if self.l2 is not None and not access.is_write:
            if self.l2.lookup(access.address):
                completion = cycle + self._l2_hit_latency
                access.complete_cycle = completion
                if self._telemetry.enabled:
                    self._telemetry.metrics.counter(
                        "partition.l2_hits").inc()
                    # uid-stamped so the cost-center profiler can classify
                    # the access's service segment as an L2 hit.
                    tracer = self._telemetry.tracer
                    tracer.instant("l2_hit", "partition",
                                   tracer.time_base + cycle, pid=PID_DRAM,
                                   tid=self.partition_id,
                                   args={"uid": access.uid,
                                         "warp": access.warp_id})
                return ArrivalResult(immediate=[(access, completion)],
                                     queued=False)

        if self.mshrs is not None and not access.is_write:
            outcome = self.mshrs.lookup(access)
            if not outcome.send_to_memory:
                # Merged into an in-flight request; completes with primary.
                if self._telemetry.enabled:
                    self._telemetry.metrics.counter(
                        "partition.mshr_merges").inc()
                    tracer = self._telemetry.tracer
                    tracer.instant("mshr_merge", "partition",
                                   tracer.time_base + cycle, pid=PID_DRAM,
                                   tid=self.partition_id,
                                   args={"uid": access.uid,
                                         "warp": access.warp_id})
                return ArrivalResult(immediate=[], queued=False)

        decoded = self._address_map.decode(access.address)
        self.controller.enqueue(access, decoded, cycle)
        return ArrivalResult(immediate=[], queued=True)

    def service_complete(self, access: MemoryAccess, cycle: int
                         ) -> List[MemoryAccess]:
        """DRAM finished an access; release it plus any MSHR-merged twins."""
        access.complete_cycle = cycle
        if self.mshrs is not None and not access.is_write:
            # The MSHR entry's primary *is* this access; completing the
            # entry releases it together with any merged secondaries.
            released = self.mshrs.complete(access.address, cycle)
            if released:
                return released
        return [access]

    def start_next(self, cycle: int):
        """Ask the controller to begin its next queued request."""
        return self.controller.start_next(cycle)

    def release_slot(self) -> None:
        """Free the controller's command slot (engine event callback)."""
        self.controller.release()
