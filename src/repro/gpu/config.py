"""Simulated GPU configuration (paper Table I).

All timing parameters are expressed in **core cycles**; DRAM parameters given
in memory-clock cycles in Table I are converted using the core/memory clock
ratio at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

__all__ = ["DramTiming", "GPUConfig"]


@dataclass(frozen=True)
class DramTiming:
    """Hynix GDDR5 timing parameters, in memory-clock cycles (Table I)."""

    t_cl: int = 12
    t_rp: int = 12
    t_rc: int = 40
    t_ras: int = 28
    t_ccd: int = 2
    t_rcd: int = 12
    t_rrd: int = 6
    #: Memory cycles to stream one 64-byte access over the bank-group bus.
    t_burst: int = 4

    def scaled(self, ratio: float) -> "DramTiming":
        """Convert to core cycles given core_clock / memory_clock ratio."""
        def conv(cycles: int) -> int:
            return max(1, round(cycles * ratio))

        return DramTiming(
            t_cl=conv(self.t_cl),
            t_rp=conv(self.t_rp),
            t_rc=conv(self.t_rc),
            t_ras=conv(self.t_ras),
            t_ccd=conv(self.t_ccd),
            t_rcd=conv(self.t_rcd),
            t_rrd=conv(self.t_rrd),
            t_burst=conv(self.t_burst),
        )


@dataclass(frozen=True)
class GPUConfig:
    """Architectural parameters of the simulated GPU (paper Table I).

    The defaults reproduce the paper's configuration: 15 SMs at 1400 MHz with
    SIMT width 32 (16x2), two warp schedulers per SM, 6 GDDR5 memory
    controllers at 924 MHz with 16 banks in 4 bank groups each, FR-FCFS
    scheduling, and 256-byte partition interleaving. MSHRs and caches exist
    but are disabled, matching the paper's evaluation setup.
    """

    # -- core ---------------------------------------------------------------
    num_sms: int = 15
    core_clock_mhz: int = 1400
    warp_size: int = 32
    simt_width: int = 16
    warp_schedulers_per_sm: int = 2
    max_warps_per_sm: int = 48
    #: Core cycles of ALU work per AES round per warp (XOR/shift/byte ops).
    round_compute_cycles: int = 40
    #: Cycles for the scheduler to issue one warp instruction (32 lanes over
    #: a 16-wide SIMT front end = 2 cycles).
    issue_cycles: int = 2

    # -- coalescing ---------------------------------------------------------
    #: Coalesced access size in bytes (one memory block / cache line).
    access_bytes: int = 64
    #: LD/ST unit egress throughput: cycles per generated coalesced access.
    coalescer_cycles_per_access: int = 1

    # -- interconnect -------------------------------------------------------
    icnt_latency: int = 8
    icnt_clock_mhz: int = 1400
    #: Requests a partition's ingress port accepts per core cycle.
    icnt_requests_per_cycle: int = 1
    #: Crossbar flit width; a 64 B data reply is split into
    #: ``1 + access_bytes/icnt_flit_bytes`` flits that serialize at the
    #: receiving SM's ejection port.
    icnt_flit_bytes: int = 32

    # -- memory partitions ----------------------------------------------------
    num_partitions: int = 6
    memory_clock_mhz: int = 924
    num_banks: int = 16
    num_bank_groups: int = 4
    #: Global linear address space interleave chunk (bytes).
    partition_chunk_bytes: int = 256
    #: DRAM row size per bank (bytes).
    row_bytes: int = 2048
    dram_timing: DramTiming = field(default_factory=DramTiming)

    # -- optional features (disabled in the paper's evaluation) -------------
    enable_mshr: bool = False
    mshr_entries: int = 32
    enable_l2: bool = False
    l2_lines: int = 1024
    l2_ways: int = 8
    l2_hit_latency: int = 20

    def __post_init__(self) -> None:
        positive_fields = {
            "num_sms": self.num_sms,
            "warp_size": self.warp_size,
            "simt_width": self.simt_width,
            "warp_schedulers_per_sm": self.warp_schedulers_per_sm,
            "access_bytes": self.access_bytes,
            "num_partitions": self.num_partitions,
            "num_banks": self.num_banks,
            "partition_chunk_bytes": self.partition_chunk_bytes,
            "row_bytes": self.row_bytes,
        }
        for name, value in positive_fields.items():
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.partition_chunk_bytes % self.access_bytes != 0:
            raise ConfigurationError(
                "partition chunk size must be a multiple of the access size"
            )
        if self.num_banks % self.num_bank_groups != 0:
            raise ConfigurationError(
                "num_banks must be divisible by num_bank_groups"
            )

    @property
    def clock_ratio(self) -> float:
        """Core cycles per memory-clock cycle."""
        return self.core_clock_mhz / self.memory_clock_mhz

    @property
    def dram_timing_core(self) -> DramTiming:
        """DRAM timing expressed in core cycles."""
        return self.dram_timing.scaled(self.clock_ratio)

    def with_overrides(self, **kwargs) -> "GPUConfig":
        """A copy of the configuration with selected fields replaced."""
        return replace(self, **kwargs)
