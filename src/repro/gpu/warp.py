"""Warp programs: the instruction streams the simulator executes.

A warp program linearizes one warp's share of the AES kernel into compute
phases and memory instructions, derived from the per-thread lookup traces of
:class:`repro.aes.ttable.TTableAES`:

1. one coalesced **input load** (each thread reads its 16-byte plaintext
   line);
2. per round 1..10: a compute phase (AddRoundKey/XOR work) followed by 16
   **table load** instructions — the k-th load gathers the k-th lookup of
   every thread's trace for that round, in lockstep;
3. one **output store** (each thread writes its ciphertext line).

Line-to-thread mapping is sequential and deterministic (Section II-B):
thread ``tid`` of warp ``w`` processes plaintext line ``w*32 + tid``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union
from weakref import WeakKeyDictionary

from repro.aes.key_schedule import NUM_ROUNDS
from repro.aes.ttable import LOOKUPS_PER_ROUND, EncryptionTrace
from repro.errors import ConfigurationError
from repro.gpu.address import (
    CIPHERTEXT_REGION_BASE,
    PLAINTEXT_REGION_BASE,
    AddressMap,
)
from repro.gpu.request import AccessKind

__all__ = ["ComputeInstruction", "MemoryInstruction", "Instruction",
           "WarpProgram", "build_warp_programs"]


@dataclass(frozen=True, slots=True)
class ComputeInstruction:
    """A block of ALU work (no memory traffic)."""

    cycles: int
    round_index: int


@dataclass(frozen=True, slots=True)
class MemoryInstruction:
    """One lockstep warp memory instruction (load or store)."""

    addresses: Tuple[int, ...]
    kind: AccessKind
    round_index: Optional[int]
    is_write: bool = False
    request_size: int = 4
    active_mask: Optional[Tuple[bool, ...]] = None


Instruction = Union[ComputeInstruction, MemoryInstruction]

#: Per-address-map cache of the resolved 5x256 table-entry address grid
#: (weak keys: dropping a server drops its grid with it).
_TABLE_ADDRESS_GRIDS: "WeakKeyDictionary[AddressMap, List[List[int]]]" = \
    WeakKeyDictionary()


@dataclass
class WarpProgram:
    """The full instruction stream of one warp for one kernel launch."""

    warp_id: int
    num_threads: int
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def num_memory_instructions(self) -> int:
        return sum(1 for i in self.instructions
                   if isinstance(i, MemoryInstruction))

    def round_memory_instructions(self, round_index: int
                                  ) -> List[MemoryInstruction]:
        """The memory instructions belonging to one AES round."""
        return [i for i in self.instructions
                if isinstance(i, MemoryInstruction)
                and i.round_index == round_index]


def build_warp_programs(
    traces: Sequence[EncryptionTrace],
    address_map: AddressMap,
    warp_size: int = 32,
    round_compute_cycles: int = 40,
    include_io: bool = True,
) -> List[WarpProgram]:
    """Build warp programs from per-thread (per-line) encryption traces.

    Parameters
    ----------
    traces:
        One :class:`EncryptionTrace` per plaintext line; line ``i`` maps to
        warp ``i // warp_size``, thread ``i % warp_size``.
    address_map:
        Address layout used to place tables and data buffers.
    warp_size:
        Threads per warp (32 in the paper's configuration).
    round_compute_cycles:
        ALU cycles modelled per round between memory phases.
    include_io:
        Also model the plaintext read and ciphertext write of the kernel.
    """
    if not traces:
        raise ConfigurationError("cannot build warp programs from zero traces")

    # Table-entry addresses depend only on (table_id, index): resolving the
    # 5x256 grid up front replaces one method call per thread-lookup
    # (16 per round per thread) with a list index. The grid is a pure
    # function of the address map, so it is cached across launches.
    table_addresses = _TABLE_ADDRESS_GRIDS.get(address_map)
    if table_addresses is None:
        table_addresses = [
            [address_map.table_entry_address(table_id, index)
             for index in range(256)]
            for table_id in range(5)
        ]
        _TABLE_ADDRESS_GRIDS[address_map] = table_addresses

    programs: List[WarpProgram] = []
    for warp_id in range(0, (len(traces) + warp_size - 1) // warp_size):
        warp_traces = traces[warp_id * warp_size:(warp_id + 1) * warp_size]
        num_threads = len(warp_traces)
        active: Optional[Tuple[bool, ...]] = None
        if num_threads < warp_size:
            active = tuple(i < num_threads for i in range(warp_size))

        def lane_addresses(per_thread: List[int]) -> Tuple[int, ...]:
            """Pad partial warps: inactive lanes repeat the last address."""
            if num_threads == warp_size:
                return tuple(per_thread)
            pad = per_thread + [per_thread[-1]] * (warp_size - num_threads)
            return tuple(pad)

        program = WarpProgram(warp_id=warp_id, num_threads=num_threads)

        if include_io:
            input_addresses = [
                address_map.line_address(PLAINTEXT_REGION_BASE,
                                         warp_id * warp_size + tid)
                for tid in range(num_threads)
            ]
            program.instructions.append(MemoryInstruction(
                addresses=lane_addresses(input_addresses),
                kind=AccessKind.INPUT_LOAD,
                round_index=0,
                request_size=16,
                active_mask=active,
            ))

        for round_index in range(1, NUM_ROUNDS + 1):
            program.instructions.append(
                ComputeInstruction(round_compute_cycles, round_index)
            )
            round_lookups = [trace.rounds[round_index - 1].lookups
                             for trace in warp_traces]
            for k in range(LOOKUPS_PER_ROUND):
                per_thread = []
                append = per_thread.append
                for lookups in round_lookups:
                    table_id, index = lookups[k]
                    append(table_addresses[table_id][index])
                program.instructions.append(MemoryInstruction(
                    addresses=lane_addresses(per_thread),
                    kind=AccessKind.TABLE_LOAD,
                    round_index=round_index,
                    request_size=4,
                    active_mask=active,
                ))

        if include_io:
            output_addresses = [
                address_map.line_address(CIPHERTEXT_REGION_BASE,
                                         warp_id * warp_size + tid)
                for tid in range(num_threads)
            ]
            # round_index None: the store is outside the round windows, so
            # it never extends the measured last-round span.
            program.instructions.append(MemoryInstruction(
                addresses=lane_addresses(output_addresses),
                kind=AccessKind.OUTPUT_STORE,
                round_index=None,
                is_write=True,
                request_size=16,
                active_mask=active,
            ))

        programs.append(program)
    return programs
