"""The discrete-event GPU kernel simulator.

:class:`GPUSimulator` executes a set of :class:`~repro.gpu.warp.WarpProgram`
instances against the configured machine: warps issue through their SM's
schedulers, memory instructions pass the coalescing unit (grouped by the
per-warp subwarp-id map supplied by a coalescing policy), accesses traverse
the forward crossbar to their memory partition, get serviced by the FR-FCFS
GDDR5 model, and replies return over the reply crossbar to unblock the warp.

The engine is policy-agnostic: it consumes only a ``sid_map`` per warp (the
thread → subwarp-id assignment of Fig 11). Policies that produce those maps
live in :mod:`repro.core.policies`, keeping the substrate reusable.

Event kinds, in processing order per cycle: warp issue, coalescer egress
("inject"), partition arrival, DRAM completion, reply delivery. Events are
totally ordered by (cycle, sequence number), so runs are deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.gpu.address import AddressMap
from repro.gpu.coalescer import CoalescingUnit
from repro.gpu.config import GPUConfig
from repro.gpu.interconnect import Crossbar
from repro.gpu.partition import MemoryPartition
from repro.gpu.request import MemoryAccess
from repro.gpu.scheduler import SchedulerSet
from repro.gpu.stats import KernelResult, RoundWindow
from repro.gpu.warp import ComputeInstruction, WarpProgram
from repro.telemetry import PID_ICNT, Telemetry, get_logger
from repro.utils import batched_timing_mode

__all__ = ["GPUSimulator", "KernelResult", "RoundAwareSidMap"]

log = get_logger(__name__)


@dataclass
class _SMState:
    """Per-SM runtime state."""

    schedulers: SchedulerSet
    coalescer: CoalescingUnit
    ldst_free: int = 0


class RoundAwareSidMap:
    """A subwarp-id map that varies by AES round.

    Models the selective-RCoal hardware of the paper's Section VII: the
    coalescing unit can swap sid tables between rounds, protecting only
    the vulnerable code (e.g. the last round) and running the efficient
    single-subwarp mapping elsewhere. ``default`` covers instructions
    outside any round window (e.g. the output store).
    """

    def __init__(self, per_round: Mapping[int, Sequence[int]],
                 default: Sequence[int]):
        self._per_round = {r: tuple(m) for r, m in per_round.items()}
        self._default = tuple(default)
        lengths = {len(self._default)}
        lengths.update(len(m) for m in self._per_round.values())
        if len(lengths) != 1:
            raise ConfigurationError(
                "all per-round sid maps must cover the same lane count"
            )

    def __len__(self) -> int:
        return len(self._default)

    def __iter__(self):
        return iter(self._default)

    def for_round(self, round_index: Optional[int]) -> Tuple[int, ...]:
        if round_index is None:
            return self._default
        return self._per_round.get(round_index, self._default)


@dataclass
class _WarpState:
    """Per-warp runtime state.

    ``instructions``, ``scheduler`` and ``round_aware`` duplicate state
    reachable through ``program``/the SM, resolved once at launch: the
    warp handler runs once per instruction, so a method call plus a
    modulo (scheduler lookup) and an isinstance dispatch (sid-map
    resolution) per event are measurable against the simulator's
    throughput.
    """

    program: WarpProgram
    sm_id: int
    slot: int
    sid_map: object  # Tuple[int, ...] or RoundAwareSidMap
    instructions: Sequence[object] = ()
    scheduler: object = None
    #: True when ``sid_map`` varies by round (RoundAwareSidMap).
    round_aware: bool = False
    pc: int = 0
    outstanding: int = 0
    #: True while stalled at a barrier (compute / end) draining loads.
    waiting: bool = False
    finished: bool = False


class GPUSimulator:
    """Executes kernel launches on the simulated GPU.

    Parameters
    ----------
    config:
        Machine description (defaults reproduce the paper's Table I).
    """

    def __init__(self, config: Optional[GPUConfig] = None,
                 address_map: Optional[AddressMap] = None,
                 telemetry: Optional[Telemetry] = None,
                 batched_timing: Optional[bool] = None):
        self.config = config or GPUConfig()
        self.address_map = address_map or AddressMap(self.config)
        #: Observability sink; the disabled null object by default, so the
        #: hot path pays one boolean check per instrumentation site.
        self.telemetry = Telemetry.ensure(telemetry)
        #: Engine selection for exact timing: tri-state (None = resolve
        #: from ``REPRO_BATCHED_TIMING``/default at first launch).
        self._batched_timing = batched_timing
        self._timed_core = None
        self._timed_core_resolved = False

    def _resolve_timed_core(self):
        """Resolve the wavefront-batched core once, lazily.

        The core only covers the uninstrumented fast-memory machine; any
        launch it cannot reproduce exactly raises ``UnsupportedLaunch``
        at run time and we fall back to the event path for that launch.
        """
        self._timed_core_resolved = True
        if not batched_timing_mode(self._batched_timing):
            return
        if self.telemetry.enabled:
            return
        if self.config.enable_l2 or self.config.enable_mshr:
            return
        from repro.gpu.timed_batch import BatchedTimingCore

        self._timed_core = BatchedTimingCore.try_create(
            self.config, self.address_map)

    def run(
        self,
        programs: Sequence[WarpProgram],
        sid_maps: Mapping[int, Sequence[int]],
    ) -> KernelResult:
        """Simulate one kernel launch.

        Parameters
        ----------
        programs:
            One warp program per warp (warp ids must be unique).
        sid_maps:
            ``warp_id -> per-thread subwarp id``; every warp needs a map
            covering all ``config.warp_size`` lanes. The baseline machine is
            expressed as the all-zeros map (one subwarp per warp).
        """
        if not programs:
            raise ConfigurationError("a kernel launch needs at least one warp")

        if not self._timed_core_resolved:
            self._resolve_timed_core()
        if self._timed_core is not None:
            from repro.gpu.timed_batch import UnsupportedLaunch

            try:
                return self._timed_core.run(programs, sid_maps)
            except UnsupportedLaunch:
                # The core mutated no engine-visible state; replay the
                # launch on the event path from scratch.
                pass

        config = self.config
        telemetry = self.telemetry
        # Resolved once per launch: None on the uninstrumented hot path, so
        # per-event sites cost a single identity check.
        tracer = telemetry.tracer if telemetry.enabled else None
        trace_base = tracer.time_base if tracer is not None else 0
        tele_arg = telemetry if telemetry.enabled else None
        # Cost-center counters, bound once per launch (None when off so the
        # hot path pays a single identity check, like ``tracer``).
        if telemetry.enabled:
            ctr_serialize = telemetry.metrics.counter(
                "coalescer.serialize_cycles")
            ctr_ldst_wait = telemetry.metrics.counter(
                "coalescer.ldst_wait_cycles")
        else:
            ctr_serialize = ctr_ldst_wait = None
        partitions = [
            MemoryPartition(p, config, self.address_map, telemetry=tele_arg)
            for p in range(config.num_partitions)
        ]
        forward = Crossbar(config.num_partitions, config.icnt_latency,
                           config.icnt_requests_per_cycle,
                           telemetry=tele_arg, name="fwd")
        reply_net = Crossbar(config.num_sms, config.icnt_latency,
                             config.icnt_requests_per_cycle,
                             telemetry=tele_arg, name="reply")
        sms = [
            _SMState(
                schedulers=SchedulerSet(config.warp_schedulers_per_sm,
                                        config.issue_cycles),
                coalescer=CoalescingUnit(config.access_bytes,
                                         telemetry=tele_arg),
            )
            for _ in range(config.num_sms)
        ]

        warps: Dict[int, _WarpState] = {}
        for program in programs:
            if program.warp_id in warps:
                raise ConfigurationError(
                    f"duplicate warp id {program.warp_id}"
                )
            raw_map = sid_maps[program.warp_id]
            sid_map = (raw_map if isinstance(raw_map, RoundAwareSidMap)
                       else tuple(raw_map))
            if len(sid_map) != config.warp_size:
                raise ConfigurationError(
                    f"sid map for warp {program.warp_id} covers "
                    f"{len(sid_map)} lanes, expected {config.warp_size}"
                )
            sm_id = program.warp_id % config.num_sms
            slot = program.warp_id // config.num_sms
            if slot >= config.max_warps_per_sm:
                raise ConfigurationError(
                    "too many warps for the configured SM occupancy"
                )
            warps[program.warp_id] = _WarpState(
                program=program, sm_id=sm_id, slot=slot, sid_map=sid_map,
                instructions=program.instructions,
                scheduler=sms[sm_id].schedulers.for_warp(slot),
                round_aware=isinstance(sid_map, RoundAwareSidMap),
            )

        # A 64 B data reply spans multiple flits at the SM's ejection port.
        reply_flits = 1 + -(-config.access_bytes // config.icnt_flit_bytes)

        result = KernelResult(num_warps=len(warps))
        events: List[Tuple[int, int, str, object]] = []
        seq = itertools.count()
        # Launch-local access ids, assigned in generation order: the same
        # access gets the same id on every rerun and in every worker
        # process, giving traced events a stable join key (attribution).
        next_uid = itertools.count().__next__
        last_completion = 0

        # Hot-path locals: the event loop dispatches ~5 events per coalesced
        # access, so global/attribute lookups inside the handlers are a
        # measurable fraction of simulation time. Bind them once per launch.
        # Event *push order is behaviour*: events are totally ordered by
        # (cycle, seq), so any reordering of pushes reorders same-cycle ties
        # and changes FR-FCFS decisions — optimizations here must keep every
        # push exactly where it was.
        heappush = heapq.heappush
        heappop = heapq.heappop
        next_seq = seq.__next__
        issue_cycles = config.issue_cycles
        per_access = config.coalescer_cycles_per_access
        partition_of = self.address_map.partition_of
        decode = self.address_map.decode
        forward_traverse = forward.traverse
        reply_traverse = reply_net.traverse
        windows = result.round_windows
        controllers = [p.controller for p in partitions]
        # With L2 and MSHRs disabled (the paper's Table I machine) an
        # arrival always decodes + enqueues and a DRAM completion always
        # releases exactly its own access, so the partition's general
        # arrive/service_complete bookkeeping can be bypassed.
        fast_memory = not config.enable_l2 and not config.enable_mshr

        def push(cycle: int, tag: str, payload: object) -> None:
            heappush(events, (cycle, next_seq(), tag, payload))

        for warp_id in warps:
            push(0, "warp", warp_id)

        def kick_controller(controller, partition_id: int,
                            cycle: int) -> None:
            """Start the controller's next request if its command slot frees."""
            if controller.busy:
                return
            started = controller.start_next(cycle)
            if started is not None:
                access, completion, next_slot = started
                heappush(events, (completion, next_seq(), "dram",
                                  (partition_id, access)))
                heappush(events, (next_slot, next_seq(), "dslot",
                                  partition_id))

        def complete_access(access: MemoryAccess, cycle: int) -> None:
            """An access finished at memory; route the reply if needed."""
            nonlocal last_completion
            if cycle > last_completion:
                last_completion = cycle
            if access.is_write:
                return
            reply_cycle = reply_traverse(access.sm_id, cycle,
                                         flits=reply_flits)
            if tracer is not None:
                tracer.complete("reply_xbar", "interconnect",
                                trace_base + cycle, reply_cycle - cycle,
                                pid=PID_ICNT, tid=access.sm_id,
                                args={"warp": access.warp_id,
                                      "uid": access.uid,
                                      "round": access.round_index})
            heappush(events, (reply_cycle, next_seq(), "reply", access))

        # -- event handlers ---------------------------------------------------

        def handle_warp(warp_id: int, cycle: int) -> None:
            warp = warps[warp_id]
            instructions = warp.instructions
            if warp.pc >= len(instructions):
                if warp.outstanding > 0:
                    warp.waiting = True
                    return
                warp.finished = True
                result.warp_finish[warp_id] = cycle
                if tracer is not None:
                    tracer.instant("warp_finish", "warp",
                                   trace_base + cycle, tid=warp_id)
                return
            instruction = instructions[warp.pc]
            # Loads are independent within a round and stay in flight
            # (memory-level parallelism); compute consumes their results,
            # so it acts as the scoreboard barrier.
            is_compute = isinstance(instruction, ComputeInstruction)
            if is_compute and warp.outstanding > 0:
                warp.waiting = True
                return
            warp.pc += 1
            sm = sms[warp.sm_id]
            issue = warp.scheduler.issue_at(cycle)
            round_index = instruction.round_index

            if is_compute:
                done = issue + issue_cycles + instruction.cycles
                key = (warp_id, round_index)
                window = windows.get(key)
                if window is None:
                    window = RoundWindow()
                    windows[key] = window
                window.observe_start(issue)
                window.observe_end(done)
                if tracer is not None:
                    tracer.complete("compute", "warp", trace_base + issue,
                                    done - issue, tid=warp_id,
                                    args={"round": round_index})
                push(done, "warp", warp_id)
                return

            # Not compute => MemoryInstruction (programs hold nothing else).
            if round_index is not None:
                key = (warp_id, round_index)
                window = windows.get(key)
                if window is None:
                    window = RoundWindow()
                    windows[key] = window
                window.observe_start(issue)

            # Lane->sid resolution: one flag check instead of an
            # isinstance dispatch per memory instruction.
            sid_map = warp.sid_map
            if warp.round_aware:
                sid_map = sid_map.for_round(round_index)
            groups = sm.coalescer.coalesce(
                instruction.addresses,
                sid_map,
                request_size=instruction.request_size,
                active_mask=instruction.active_mask,
            )
            num_blocks = 0
            kind = instruction.kind
            is_write = instruction.is_write
            sm_id = warp.sm_id
            inject = max(issue + issue_cycles, sm.ldst_free)
            for group in groups:
                for block_address in group.block_addresses:
                    access = MemoryAccess(block_address, kind, warp_id,
                                          sm_id, round_index, is_write,
                                          uid=next_uid())
                    access.inject_cycle = inject
                    heappush(events,
                             (inject, next_seq(), "inject", access))
                    inject += per_access
                    num_blocks += 1
            if not num_blocks:
                raise ProtocolError("memory instruction produced no accesses")
            result.count_accesses(kind, round_index, num_blocks)
            sm.ldst_free = inject

            if tracer is not None:
                tracer.complete(
                    "coalesce", "coalescer", trace_base + issue,
                    sm.ldst_free - issue, tid=warp_id,
                    args={"round": round_index,
                          "kind": kind.value,
                          "accesses": num_blocks,
                          "subwarps": len(groups)},
                )
                # Egress serialization (one LD/ST slot per coalesced block)
                # vs waiting behind an earlier instruction's egress.
                ctr_serialize.inc(num_blocks * per_access)
                ctr_ldst_wait.inc(sm.ldst_free - num_blocks * per_access
                                  - issue - issue_cycles)

            if is_write:
                # Stores retire at LD/ST egress; the warp does not wait.
                push(sm.ldst_free, "warp", warp_id)
            else:
                warp.outstanding += num_blocks
                # The warp keeps issuing: the next instruction may enter
                # the pipeline while these loads are in flight.
                push(issue + issue_cycles, "warp", warp_id)

        def handle_inject(access: MemoryAccess, cycle: int) -> None:
            partition_id = partition_of(access.address)
            arrival = forward_traverse(partition_id, cycle)
            if tracer is not None:
                tracer.complete("fwd_xbar", "interconnect",
                                trace_base + cycle, arrival - cycle,
                                pid=PID_ICNT, tid=partition_id,
                                args={"warp": access.warp_id,
                                      "uid": access.uid,
                                      "round": access.round_index})
            heappush(events, (arrival, next_seq(), "arrive",
                              (partition_id, access)))

        def handle_arrive(partition_id: int, access: MemoryAccess,
                          cycle: int) -> None:
            if fast_memory:
                access.arrival_cycle = cycle
                controller = controllers[partition_id]
                controller.enqueue(access, decode(access.address), cycle)
                kick_controller(controller, partition_id, cycle)
                return
            partition = partitions[partition_id]
            outcome = partition.arrive(access, cycle)
            for finished, completion in outcome.immediate:
                complete_access(finished, completion)
            if outcome.queued:
                kick_controller(partition.controller, partition_id, cycle)

        def handle_dram(partition_id: int, access: MemoryAccess,
                        cycle: int) -> None:
            if fast_memory:
                access.complete_cycle = cycle
                complete_access(access, cycle)
                return
            partition = partitions[partition_id]
            released = partition.service_complete(access, cycle)
            for finished in released:
                complete_access(finished, cycle)

        def handle_dslot(partition_id: int, cycle: int) -> None:
            controller = controllers[partition_id]
            controller.release()
            kick_controller(controller, partition_id, cycle)

        def handle_reply(access: MemoryAccess, cycle: int) -> None:
            warp = warps[access.warp_id]
            round_index = access.round_index
            if round_index is not None:
                # The window exists: the issuing instruction created it.
                window = windows[(access.warp_id, round_index)]
                if window.end is None or cycle > window.end:
                    window.end = cycle
            outstanding = warp.outstanding - 1
            warp.outstanding = outstanding
            if outstanding < 0:
                raise ProtocolError("reply for a warp with no pending load")
            if outstanding == 0 and warp.waiting:
                warp.waiting = False
                push(cycle, "warp", access.warp_id)

        # -- main loop --------------------------------------------------------
        # Tags ordered by event frequency (~1 warp event per instruction vs
        # one inject/arrive/dram/dslot/reply each per coalesced access).
        #
        # Two dispatch loops, cycle-for-cycle identical: on the default
        # machine (no L2/MSHRs) with telemetry off, the per-access handlers
        # reduce to a few statement bodies, and the function-call overhead
        # of dispatching ~5 of them per coalesced access is a measurable
        # slice of simulation time — so the hot loop inlines them. Every
        # heappush below sits exactly where the handler version pushes it
        # (push order is behaviour: (cycle, seq) ordering means a reordered
        # push reorders same-cycle ties and changes FR-FCFS decisions).
        # The golden engine battery pins both loops to the same digest.

        if fast_memory and tracer is None:
            while events:
                cycle, _seq, tag, payload = heappop(events)
                if tag == "inject":
                    # handle_inject, inlined.
                    partition_id = partition_of(payload.address)
                    arrival = forward_traverse(partition_id, cycle)
                    heappush(events, (arrival, next_seq(), "arrive",
                                      (partition_id, payload)))
                elif tag == "arrive":
                    # handle_arrive fast path + kick_controller, inlined.
                    partition_id, access = payload
                    access.arrival_cycle = cycle
                    controller = controllers[partition_id]
                    controller.enqueue(access, decode(access.address),
                                       cycle)
                    if not controller.busy:
                        started = controller.start_next(cycle)
                        if started is not None:
                            started_access, completion, next_slot = started
                            heappush(events,
                                     (completion, next_seq(), "dram",
                                      (partition_id, started_access)))
                            heappush(events, (next_slot, next_seq(),
                                              "dslot", partition_id))
                elif tag == "dram":
                    # handle_dram fast path + complete_access, inlined.
                    _partition_id, access = payload
                    access.complete_cycle = cycle
                    if cycle > last_completion:
                        last_completion = cycle
                    if not access.is_write:
                        reply_cycle = reply_traverse(access.sm_id, cycle,
                                                     flits=reply_flits)
                        heappush(events, (reply_cycle, next_seq(),
                                          "reply", access))
                elif tag == "dslot":
                    # handle_dslot + kick_controller, inlined.
                    controller = controllers[payload]
                    controller.release()
                    if not controller.busy:
                        started = controller.start_next(cycle)
                        if started is not None:
                            started_access, completion, next_slot = started
                            heappush(events,
                                     (completion, next_seq(), "dram",
                                      (payload, started_access)))
                            heappush(events, (next_slot, next_seq(),
                                              "dslot", payload))
                elif tag == "reply":
                    # handle_reply, inlined.
                    access = payload
                    warp = warps[access.warp_id]
                    round_index = access.round_index
                    if round_index is not None:
                        window = windows[(access.warp_id, round_index)]
                        if window.end is None or cycle > window.end:
                            window.end = cycle
                    outstanding = warp.outstanding - 1
                    warp.outstanding = outstanding
                    if outstanding < 0:
                        raise ProtocolError(
                            "reply for a warp with no pending load")
                    if outstanding == 0 and warp.waiting:
                        warp.waiting = False
                        heappush(events, (cycle, next_seq(), "warp",
                                          access.warp_id))
                elif tag == "warp":
                    handle_warp(payload, cycle)  # type: ignore[arg-type]
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"unknown event tag {tag!r}")
        else:
            while events:
                cycle, _seq, tag, payload = heappop(events)
                if tag == "inject":
                    handle_inject(payload, cycle)  # type: ignore[arg-type]
                elif tag == "arrive":
                    partition_id, access = payload  # type: ignore[misc]
                    handle_arrive(partition_id, access, cycle)
                elif tag == "dram":
                    partition_id, access = payload  # type: ignore[misc]
                    handle_dram(partition_id, access, cycle)
                elif tag == "dslot":
                    handle_dslot(payload, cycle)  # type: ignore[arg-type]
                elif tag == "reply":
                    handle_reply(payload, cycle)  # type: ignore[arg-type]
                elif tag == "warp":
                    handle_warp(payload, cycle)  # type: ignore[arg-type]
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"unknown event tag {tag!r}")

        unfinished = [w for w, s in warps.items() if not s.finished]
        if unfinished:
            raise ProtocolError(f"warps never finished: {unfinished}")

        result.total_cycles = max(result.warp_finish.values())
        result.drain_cycles = max(result.total_cycles, last_completion)
        result.dram_stats = [p.controller.stats for p in partitions]

        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.counter("sim.kernels").inc()
            metrics.counter("sim.warps").inc(len(warps))
            metrics.counter("sim.cycles").inc(result.total_cycles)
            metrics.counter("sched.stall_cycles").inc(
                sum(sm.schedulers.total_stall_cycles for sm in sms))
            round_hist = metrics.histogram("warp.round_cycles")
            for (warp_id, round_index), window in \
                    sorted(result.round_windows.items()):
                if window.start is None or window.end is None:
                    continue
                round_hist.observe(window.duration)
                if tracer is not None:
                    tracer.complete("round", "warp",
                                    trace_base + window.start,
                                    window.duration, tid=warp_id,
                                    args={"round": round_index})
            if tracer is not None:
                tracer.instant("kernel_end", "sim",
                               trace_base + result.drain_cycles,
                               args={"total_cycles": result.total_cycles})
                # Lay successive kernels end-to-end on the trace timeline.
                tracer.advance_time_base(result.drain_cycles)
            result.metrics = metrics.snapshot()
            log.debug("kernel done: %d warps, %d cycles, %d accesses",
                      len(warps), result.total_cycles,
                      result.total_accesses)
        return result
