"""Banked GDDR5 DRAM with FR-FCFS scheduling.

Event-driven bank/bus model. Each memory controller owns a request queue,
per-bank row-buffer state, and a shared data bus. Scheduling is
first-ready / first-come-first-served: among queued requests, one whose bank
has the target row open wins (oldest such); otherwise the oldest request is
picked. Service latencies come from the Hynix GDDR5 parameters of Table I
(converted to core cycles): a row-buffer hit costs tCL, a row miss costs
tRP + tRCD + tCL with tRC/tRAS respected between activates, and every access
occupies the data bus for one burst.

The model is analytic per request — no per-cycle simulation — so a kernel
with tens of thousands of accesses is serviced in milliseconds while
preserving queueing behaviour: bus saturation makes execution time grow
~linearly in the number of coalesced accesses, which is precisely the
signal the timing attack reads and the defenses perturb.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Deque, Optional, Tuple

from repro.errors import ProtocolError
from repro.gpu.address import DecodedAddress
from repro.gpu.config import DramTiming
from repro.gpu.request import MemoryAccess
from repro.telemetry import PID_DRAM, Telemetry

__all__ = ["BankState", "DramStats", "MemoryController"]


@dataclass
class BankState:
    """Row-buffer and timing state of one DRAM bank."""

    open_row: Optional[int] = None
    #: Earliest cycle a new ACTIVATE may issue (tRC from the previous one).
    next_activate: int = 0
    #: Earliest cycle a PRECHARGE may issue (tRAS from the last activate).
    next_precharge: int = 0
    #: Earliest cycle the next column command may issue (tCCD pipelining).
    next_cas: int = 0


@dataclass
class DramStats:
    """Aggregate service statistics for one memory controller."""

    row_hits: int = 0
    row_misses: int = 0
    reads: int = 0
    writes: int = 0
    bus_busy_cycles: int = 0
    queue_wait_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


# Queue entries are plain (access, decoded, arrival) tuples: one is
# allocated per enqueued request, so tuple packing beats a dataclass on
# the hot path.


class MemoryController:
    """FR-FCFS controller for one memory partition."""

    def __init__(self, num_banks: int, timing: DramTiming,
                 queue_capacity: int = 65536, frfcfs_window: int = 64,
                 telemetry: Optional[Telemetry] = None,
                 partition_id: int = 0):
        self.timing = timing
        self.banks = [BankState() for _ in range(num_banks)]
        self.queue_capacity = queue_capacity
        #: FR-FCFS searches row hits only within the oldest ``window``
        #: entries (hardware schedulers have a bounded associative search).
        self.frfcfs_window = frfcfs_window
        self.stats = DramStats()
        self.partition_id = partition_id
        self._telemetry = Telemetry.ensure(telemetry)
        #: Instruments bound once, on first use, so the hot paths skip the
        #: per-call registry lookups. Each binds individually (not all in
        #: ``__init__``) because instrument *creation* order is part of the
        #: gated metrics baselines — e.g. ``dram.row_misses`` must not
        #: exist on a run that never missed a row.
        self._m_enqueue = None
        self._m_hit = None
        self._m_miss = None
        self._m_read = None
        self._m_write = None
        self._m_service = None
        self._m_activate = None
        self._queue: Deque[Tuple[MemoryAccess, DecodedAddress, int]] = deque()
        #: Cycle at which the data bus next frees.
        self.bus_free: int = 0
        #: True while a completion event for this controller is in flight.
        self._busy = False

    # -- queue interface ------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._busy

    def enqueue(self, access: MemoryAccess, decoded: DecodedAddress,
                cycle: int) -> None:
        """Accept a request into the controller queue."""
        if len(self._queue) >= self.queue_capacity:
            raise ProtocolError("memory controller queue overflow")
        self._queue.append((access, decoded, cycle))
        if self._telemetry.enabled:
            inst = self._m_enqueue
            if inst is None:
                metrics = self._telemetry.metrics
                inst = self._m_enqueue = (
                    metrics.counter("dram.enqueued"),
                    metrics.histogram(
                        "dram.queue_depth",
                        buckets=(1, 2, 4, 8, 16, 32, 64, 128,
                                 256, 512, 1024)),
                    metrics.gauge("dram.queue_depth.last"),
                )
            enqueued, depth_hist, depth_gauge = inst
            enqueued.inc()
            depth_hist.observe(len(self._queue))
            depth_gauge.set(len(self._queue))

    # -- scheduling -------------------------------------------------------------

    def start_next(self, cycle: int
                   ) -> Optional[Tuple[MemoryAccess, int, int]]:
        """Pick and service the next request per FR-FCFS.

        Returns ``(access, completion_cycle, next_slot_cycle)`` for the
        chosen request, or ``None`` when the queue is empty.

        ``next_slot_cycle`` is when the controller's command slot frees
        (one column command per tCCD): the next scheduling decision happens
        then, so column accesses pipeline — tCL is latency, and only the
        command rate and the data bus serialize the stream. The caller must
        invoke :meth:`release` at ``next_slot_cycle`` before scheduling
        again.
        """
        if self._busy:
            raise ProtocolError("controller already holds the command slot")
        if not self._queue:
            return None

        index = self._select(cycle)
        if index == 0:
            queued = self._queue.popleft()
        else:
            # O(window) removal from the front region of the deque.
            self._queue.rotate(-index)
            queued = self._queue.popleft()
            self._queue.rotate(index)
        completion, next_slot = self._service(queued, cycle)
        self._busy = True
        return queued[0], completion, next_slot

    def release(self) -> None:
        """Free the command slot (engine callback at next_slot_cycle)."""
        if not self._busy:
            raise ProtocolError("controller release() without a held slot")
        self._busy = False

    def _select(self, cycle: int) -> int:
        """FR-FCFS: oldest row-hit request in the window, else oldest."""
        banks = self.banks
        for i, (_access, decoded, _arrival) in enumerate(
                islice(self._queue, self.frfcfs_window)):
            if banks[decoded.bank].open_row == decoded.row:
                return i
        return 0

    def _service(self, queued: Tuple[MemoryAccess, DecodedAddress, int],
                 cycle: int) -> Tuple[int, int]:
        """Compute (completion, next command slot) for one request."""
        access, decoded, arrival = queued
        timing = self.timing
        bank = self.banks[decoded.bank]
        row = decoded.row
        row_hit = bank.open_row == row
        activate = None

        if row_hit:
            # Column accesses to an open row pipeline every tCCD; tCL is
            # latency, not occupancy.
            self.stats.row_hits += 1
            cas_issue = max(cycle, bank.next_cas)
            data_ready = cas_issue + timing.t_cl
        else:
            self.stats.row_misses += 1
            precharge = max(cycle, bank.next_cas, bank.next_precharge)
            activate = max(precharge + timing.t_rp, bank.next_activate)
            bank.next_activate = activate + timing.t_rc
            bank.next_precharge = activate + timing.t_ras
            bank.open_row = row
            cas_issue = activate + timing.t_rcd
            data_ready = cas_issue + timing.t_cl
        bank.next_cas = cas_issue + timing.t_ccd

        # The data bus serializes bursts across banks.
        burst_start = max(data_ready, self.bus_free)
        completion = burst_start + timing.t_burst
        self.bus_free = completion

        queue_wait = max(0, burst_start - arrival)
        stats = self.stats
        stats.bus_busy_cycles += timing.t_burst
        stats.queue_wait_cycles += queue_wait
        if access.is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        if self._telemetry.enabled:
            metrics = self._telemetry.metrics
            if row_hit:
                ctr = self._m_hit
                if ctr is None:
                    ctr = self._m_hit = metrics.counter("dram.row_hits")
            else:
                ctr = self._m_miss
                if ctr is None:
                    ctr = self._m_miss = metrics.counter("dram.row_misses")
            ctr.inc()
            if access.is_write:
                ctr = self._m_write
                if ctr is None:
                    ctr = self._m_write = metrics.counter("dram.writes")
            else:
                ctr = self._m_read
                if ctr is None:
                    ctr = self._m_read = metrics.counter("dram.reads")
            ctr.inc()
            inst = self._m_service
            if inst is None:
                inst = self._m_service = (
                    metrics.counter("dram.bus_busy_cycles"),
                    metrics.histogram("dram.queue_wait_cycles"),
                    metrics.counter("dram.service_cycles"),
                )
            bus_busy, qwait_hist, service = inst
            bus_busy.inc(timing.t_burst)
            qwait_hist.observe(queue_wait)
            # Cost-center cycle totals: column/burst service after CAS, and
            # the precharge+activate overhead a row miss pays before it.
            service.inc(completion - cas_issue)
            if activate is not None:
                ctr = self._m_activate
                if ctr is None:
                    ctr = self._m_activate = metrics.counter(
                        "dram.activate_cycles")
                ctr.inc(cas_issue - precharge)
            tracer = self._telemetry.tracer
            base = tracer.time_base
            args = {"bank": decoded.bank, "row": row,
                    "warp": access.warp_id, "uid": access.uid,
                    "round": access.round_index,
                    "kind": access.kind.value}
            if activate is not None:
                tracer.complete("activate", "dram", base + activate,
                                timing.t_rcd, pid=PID_DRAM,
                                tid=self.partition_id, args=args)
            tracer.complete("column_hit" if row_hit else "column_miss",
                            "dram", base + cas_issue,
                            completion - cas_issue, pid=PID_DRAM,
                            tid=self.partition_id,
                            args={**args, "queue_wait": queue_wait})

        return completion, cas_issue + timing.t_ccd
