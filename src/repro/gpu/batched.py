"""Batched structure-of-arrays collection core (counts-only path).

The discrete-event engine dispatches ~5 Python events per coalesced access;
even the combinatorial counts-only fast path of
:class:`repro.workloads.server.EncryptionServer` walks every lane of every
memory instruction in Python. This module replaces both loops for
counts-only collection with numpy array arithmetic over a whole *batch* of
launches:

1. :func:`repro.aes.batch.encrypt_batch` produces the ciphertexts and the
   per-round table indices of all lines of all samples at once;
2. table indices gather through a precomputed ``(table, index) -> block``
   grid (derived from the server's address map, so permuted layouts work
   unchanged) into one ``(samples, lanes, instructions)`` block matrix;
3. each lane's ``(block, sid)`` pair is packed into one int64 key —
   exactly the packing of the scalar ``_distinct_blocks`` — and distinct
   pairs per (warp, instruction) are counted by sorting along the lane
   axis and counting value transitions (cf. the ``calculate_bursts``
   distinct-blocks-per-subwarp arithmetic the ROADMAP cites).

Policy randomization is reproduced *exactly*: the core draws one partition
per warp per sample from the same per-sample RNG stream, in the same order,
as :meth:`repro.core.rcoal.RCoalGPU.draw_partitions` — the draws are a few
thousand cheap calls, the per-lane loops they parameterize are what
vectorization removes. Records, telemetry metrics, and checksums are
bit-identical to the event engine's counts (see ``tests/gpu/test_batched``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.aes.batch import encrypt_batch, table_id_grid
from repro.aes.key_schedule import NUM_ROUNDS
from repro.aes.ttable import LOOKUPS_PER_ROUND
from repro.errors import BlockSizeError, ConfigurationError
from repro.gpu.address import CIPHERTEXT_REGION_BASE, PLAINTEXT_REGION_BASE
from repro.rng import RngStream
from repro.workloads.server import EncryptionRecord, EncryptionServer

__all__ = ["BatchedCountsCore"]

#: Memory instructions per warp: input load + 10x16 table loads + store.
_NCOLS = 2 + NUM_ROUNDS * LOOKUPS_PER_ROUND

#: Column index of the first table load of round ``r`` (1-based rounds).
def _round_col(round_index: int) -> int:
    return 1 + (round_index - 1) * LOOKUPS_PER_ROUND


#: Soft cap on the per-slab key matrix (bytes); batches larger than this
#: are processed in sample slabs so Fig 18-scale sweeps stay in-cache.
_SLAB_KEY_BYTES = 48_000_000


class BatchedCountsCore:
    """Vectorized counts-only collection for one :class:`EncryptionServer`.

    The core borrows the server's key, policy, GPU config, address map and
    telemetry sink; :meth:`encrypt_batch` then simulates many launches as
    array ops, returning :class:`EncryptionRecord` objects equal (``==``)
    to what ``server.encrypt`` would produce in counts-only mode.
    """

    def __init__(self, server: EncryptionServer):
        if not server.counts_only:
            raise ConfigurationError(
                "the batched core only implements counts-only collection; "
                "build the server with counts_only=True"
            )
        self._server = server
        self.policy = server.policy
        config = server.gpu.config
        self.config = config
        self.telemetry = server.gpu.telemetry
        self._key = server.secret_key
        self.warp_size = config.warp_size
        self._block_mask = ~(config.access_bytes - 1)
        address_map = server.gpu.address_map
        self._address_map = address_map
        # (5, 256) block address of each table entry, through the server's
        # address map (a permuted map changes these — and nothing else).
        self._table_blocks = np.array(
            [[address_map.table_entry_address(t, i) & self._block_mask
              for i in range(256)] for t in range(5)],
            dtype=np.int64,
        )
        # round of each instruction column: input load is round 0, the
        # output store sits outside any round (None -> resolved like the
        # engine's sid-map default).
        self._col_rounds: List[Optional[int]] = (
            [0]
            + [r for r in range(1, NUM_ROUNDS + 1)
               for _ in range(LOOKUPS_PER_ROUND)]
            + [None]
        )
        self._line_blocks: Dict[int, np.ndarray] = {}

    # -- internals ---------------------------------------------------------

    def _io_blocks(self, num_lines: int) -> np.ndarray:
        """(2, num_lines) input/output line block addresses (cached)."""
        cached = self._line_blocks.get(num_lines)
        if cached is None:
            line_address = self._address_map.line_address
            mask = self._block_mask
            cached = np.array(
                [[line_address(PLAINTEXT_REGION_BASE, line) & mask
                  for line in range(num_lines)],
                 [line_address(CIPHERTEXT_REGION_BASE, line) & mask
                  for line in range(num_lines)]],
                dtype=np.int64,
            )
            self._line_blocks[num_lines] = cached
        return cached

    def _draw_partitions(self, num_warps: int, rng: Optional[RngStream]):
        """One partition per warp, in warp order — the exact RNG
        consumption of ``RCoalGPU.draw_partitions``."""
        policy = self.policy
        return {warp_id: policy.draw(rng) for warp_id in range(num_warps)}

    def _sid_matrix(self, partitions, num_warps: int,
                    round_aware: bool) -> np.ndarray:
        """Per-lane sid matrix for one sample.

        Returns ``(lanes,)`` when every partition is round-invariant, or
        ``(lanes, ncols)`` when partitions resolve per round (selective
        RCoal).
        """
        if not round_aware:
            return np.array(
                [partitions[w].assignment for w in range(num_warps)],
                dtype=np.int64,
            ).reshape(-1)
        distinct_rounds = sorted(
            {r for r in self._col_rounds if r is not None}
        )
        col_of_round = {r: i for i, r in enumerate(distinct_rounds)}
        col_index = np.array(
            [len(distinct_rounds) if r is None else col_of_round[r]
             for r in self._col_rounds],
            dtype=np.int64,
        )
        per_warp = []
        for w in range(num_warps):
            partition = partitions[w]
            if hasattr(partition, "assignment_for_round"):
                rows = [partition.assignment_for_round(r)
                        for r in distinct_rounds]
                rows.append(partition.assignment_for_round(None))
            else:
                rows = [partition.assignment] * (len(distinct_rounds) + 1)
            # (rounds+1, warp_size) -> per-column sids (warp_size, ncols)
            table = np.array(rows, dtype=np.int64)
            per_warp.append(table[col_index].T)
        return np.concatenate(per_warp, axis=0)  # (lanes, ncols)

    @staticmethod
    def _distinct_along_last_axis(values: np.ndarray) -> np.ndarray:
        """Distinct value count along the last axis (sort + transitions)."""
        ordered = np.sort(values, axis=-1)
        return (np.diff(ordered, axis=-1) != 0).sum(axis=-1) + 1

    def _record_metrics(self, counts: np.ndarray,
                        subwarps: np.ndarray) -> None:
        """Feed the counts-path coalescing metrics in bulk.

        Instrument names and bucket shapes mirror the scalar counts path
        (and the engine's :class:`CoalescingUnit`), and histogram feeding
        goes value-by-value via ``observe_many``, so snapshots are equal
        to a per-instruction loop's.
        """
        metrics = self.telemetry.metrics
        num_instructions = int(counts.size)
        metrics.counter("coalescer.instructions").inc(num_instructions)
        metrics.counter("coalescer.accesses").inc(int(counts.sum()))
        access_hist = metrics.histogram(
            "coalescer.accesses_per_instruction",
            buckets=tuple(range(1, 65)),
        )
        for value, times in enumerate(np.bincount(counts.ravel())):
            if times:
                access_hist.observe_many(value, int(times))
        subwarp_hist = metrics.histogram(
            "coalescer.subwarps_per_instruction",
            buckets=tuple(range(1, 33)),
        )
        for value, times in enumerate(np.bincount(subwarps.ravel())):
            if times:
                subwarp_hist.observe_many(value, int(times))

    # -- public API --------------------------------------------------------

    def encrypt_batch(
        self,
        plaintexts: Sequence[bytes],
        rngs: Sequence[Optional[RngStream]],
        on_record: Optional[Callable[[EncryptionRecord], None]] = None,
    ) -> List[EncryptionRecord]:
        """Counts-only records for ``plaintexts[i]`` under ``rngs[i]``.

        Equivalent to ``[server.encrypt(p, rng=r) for p, r in zip(...)]``
        on a counts-only server — same ciphertexts, counts, partitions,
        and telemetry — with the per-lane work batched across samples.
        ``on_record`` fires once per finished sample (progress reporting).
        """
        if len(plaintexts) != len(rngs):
            raise ConfigurationError(
                f"{len(plaintexts)} plaintexts vs {len(rngs)} RNG streams"
            )
        if not plaintexts:
            return []
        num_bytes = len(plaintexts[0])
        if num_bytes % 16 != 0:
            raise BlockSizeError(
                f"plaintext length {num_bytes} is not a multiple of 16"
            )
        if any(len(p) != num_bytes for p in plaintexts):
            raise ConfigurationError(
                "batched collection needs equal-length plaintexts"
            )
        num_lines = num_bytes // 16
        warp_size = self.warp_size
        num_warps = -(-num_lines // warp_size)
        lanes = num_warps * warp_size

        per_sample_bytes = lanes * _NCOLS * 8
        slab_samples = max(1, _SLAB_KEY_BYTES // per_sample_bytes)

        records: List[EncryptionRecord] = []
        for start in range(0, len(plaintexts), slab_samples):
            chunk = plaintexts[start:start + slab_samples]
            chunk_rngs = rngs[start:start + slab_samples]
            records.extend(
                self._encrypt_slab(chunk, chunk_rngs, num_lines,
                                   num_warps, on_record)
            )
        return records

    def _encrypt_slab(self, plaintexts, rngs, num_lines: int,
                      num_warps: int, on_record) -> List[EncryptionRecord]:
        warp_size = self.warp_size
        lanes = num_warps * warp_size
        slab = len(plaintexts)

        # Policy draws, sample by sample, warp by warp — RNG parity.
        partitions = [self._draw_partitions(num_warps, rng) for rng in rngs]

        lines = np.frombuffer(b"".join(plaintexts), dtype=np.uint8)
        lines = lines.reshape(slab * num_lines, 16)
        ciphertexts, indices = encrypt_batch(self._key, lines)
        ciphertexts = ciphertexts.reshape(slab, num_lines * 16)
        indices = indices.reshape(slab, num_lines, NUM_ROUNDS,
                                  LOOKUPS_PER_ROUND)

        # Per-thread block address of every memory instruction column.
        io_blocks = self._io_blocks(num_lines)
        blocks = np.empty((slab, num_lines, _NCOLS), dtype=np.int64)
        blocks[:, :, 0] = io_blocks[0]
        blocks[:, :, -1] = io_blocks[1]
        blocks[:, :, 1:-1] = self._table_blocks[
            table_id_grid()[None, None], indices
        ].reshape(slab, num_lines, NUM_ROUNDS * LOOKUPS_PER_ROUND)

        # Pack (block, sid) into one key per lane — the scalar fast path's
        # ``((address & mask) << 8) | sid`` — and pad a partial final warp
        # by repeating the last real thread's keys, which merges into that
        # thread's (block, sid) pair exactly like skipping inactive lanes.
        round_aware = any(
            hasattr(partitions[s][w], "assignment_for_round")
            for s in range(slab) for w in range(num_warps)
        )
        sids = np.stack([
            self._sid_matrix(partitions[s], num_warps, round_aware)
            for s in range(slab)
        ])
        if round_aware:
            thread_sids = sids[:, :num_lines, :]       # (slab, N, ncols)
        else:
            thread_sids = sids[:, :num_lines, None]    # (slab, N, 1)
        keys = np.empty((slab, lanes, _NCOLS), dtype=np.int64)
        keys[:, :num_lines] = (blocks << 8) | thread_sids
        if lanes > num_lines:
            keys[:, num_lines:] = keys[:, num_lines - 1:num_lines]

        counts = self._distinct_along_last_axis(
            keys.reshape(slab, num_warps, warp_size, _NCOLS)
                .swapaxes(2, 3)
        )  # (slab, num_warps, ncols)

        if self.telemetry.enabled:
            # Distinct sids among active lanes, per instruction; padded
            # lanes repeat the last active lane's sid (merging harmlessly,
            # as above).
            if round_aware:
                sid_lanes = np.empty((slab, lanes, _NCOLS), dtype=np.int64)
                sid_lanes[:, :num_lines] = sids[:, :num_lines]
                if lanes > num_lines:
                    sid_lanes[:, num_lines:] = \
                        sid_lanes[:, num_lines - 1:num_lines]
                subwarps = self._distinct_along_last_axis(
                    sid_lanes.reshape(slab, num_warps, warp_size, _NCOLS)
                             .swapaxes(2, 3)
                )
            else:
                sid_lanes = np.empty((slab, lanes), dtype=np.int64)
                sid_lanes[:, :num_lines] = sids[:, :num_lines]
                if lanes > num_lines:
                    sid_lanes[:, num_lines:] = \
                        sid_lanes[:, num_lines - 1:num_lines]
                per_warp = self._distinct_along_last_axis(
                    sid_lanes.reshape(slab, num_warps, warp_size)
                )  # (slab, num_warps)
                subwarps = np.broadcast_to(
                    per_warp[:, :, None], counts.shape
                )
            self._record_metrics(counts, subwarps)

        totals = counts.sum(axis=(1, 2))
        table_counts = counts[:, :, 1:-1].reshape(
            slab, num_warps, NUM_ROUNDS, LOOKUPS_PER_ROUND
        ).sum(axis=1)                                  # (slab, 10, 16)
        round_totals = table_counts.sum(axis=2)        # (slab, 10)
        last_round_bytes = table_counts[:, NUM_ROUNDS - 1]  # (slab, 16)

        records: List[EncryptionRecord] = []
        for s in range(slab):
            record = EncryptionRecord(
                ciphertext=ciphertexts[s].tobytes(),
                total_time=0,
                last_round_time=0,
                total_accesses=int(totals[s]),
                last_round_accesses=int(round_totals[s, NUM_ROUNDS - 1]),
                round_accesses={r: int(round_totals[s, r - 1])
                                for r in range(1, NUM_ROUNDS + 1)},
                last_round_byte_accesses=[int(v)
                                          for v in last_round_bytes[s]],
                partitions=partitions[s],
            )
            records.append(record)
            if on_record is not None:
                on_record(record)
        return records
