"""Crossbar interconnect between SMs and memory partitions.

One crossbar per direction (Table I). The model captures the two effects
that matter for timing: a fixed traversal latency, and serialization at each
partition's ingress port (one request per interconnect cycle). Reply traffic
is modelled symmetrically on the return crossbar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.telemetry import Telemetry

__all__ = ["Crossbar"]


@dataclass
class _Port:
    next_free: int = 0
    accepted: int = 0


class Crossbar:
    """A per-direction crossbar with per-output-port serialization."""

    def __init__(self, num_ports: int, latency: int,
                 requests_per_cycle: int = 1,
                 telemetry: Optional[Telemetry] = None,
                 name: str = "icnt"):
        if num_ports <= 0:
            raise ConfigurationError(f"port count must be positive: {num_ports}")
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0: {latency}")
        if requests_per_cycle <= 0:
            raise ConfigurationError(
                f"requests_per_cycle must be positive: {requests_per_cycle}"
            )
        self.latency = latency
        self.name = name
        self._interval = 1  # cycles between accepts at full rate
        self._rate = requests_per_cycle
        self._ports: List[_Port] = [_Port() for _ in range(num_ports)]
        self._telemetry = Telemetry.ensure(telemetry)
        #: Instruments bound once, on the first instrumented packet, so
        #: ``traverse`` never repeats the registry lookup / name
        #: formatting. Lazy (not in ``__init__``) so a crossbar that never
        #: carries a packet registers no metrics — creation timing is part
        #: of the gated metrics baselines.
        self._instruments = None

    def traverse(self, port: int, inject_cycle: int, flits: int = 1) -> int:
        """Send one ``flits``-flit packet to ``port``; returns arrival cycle.

        The output port drains one flit per cycle (at ``requests_per_cycle``
        packet granularity for single-flit packets), so multi-flit packets —
        e.g. 64-byte data replies — serialize traffic at the port. This is
        the main linear-in-access-count component of load latency and the
        reason execution time tracks the number of coalesced accesses.
        """
        if flits <= 0:
            raise ConfigurationError(f"packets need at least one flit: {flits}")
        state = self._ports[port]
        accept = max(inject_cycle, state.next_free)
        state.accepted += 1
        if self._telemetry.enabled:
            inst = self._instruments
            if inst is None:
                metrics = self._telemetry.metrics
                inst = self._instruments = (
                    metrics.counter(f"icnt.{self.name}.packets"),
                    metrics.counter(f"icnt.{self.name}.flits"),
                    metrics.counter(f"icnt.{self.name}.stall_cycles"),
                    metrics.counter(f"icnt.{self.name}.transit_cycles"),
                )
            packets, flit_ctr, stall, transit = inst
            packets.inc()
            flit_ctr.inc(flits)
            # Port-contention stall: cycles the packet waited for the
            # output port beyond its injection time (the serialization
            # component the timing attack reads).
            stall.inc(accept - inject_cycle)
            # Wire + serialization occupancy per packet (cost-center total).
            transit.inc(self.latency + flits - 1)
        if flits > 1:
            state.next_free = accept + flits
        elif state.accepted % self._rate == 0:
            state.next_free = accept + self._interval
        else:
            state.next_free = accept
        return accept + self.latency + flits - 1

    def port_utilization(self, port: int) -> int:
        """Total flits accepted by a port (for statistics)."""
        return self._ports[port].accepted
