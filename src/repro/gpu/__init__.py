"""GPU timing-simulator substrate.

A discrete-event stand-in for GPGPU-Sim, modelling the parts of the machine
the RCoal evaluation depends on (Table I of the paper):

* SMs with dual warp schedulers issuing warp instructions in lock step;
* the LD/ST-unit **memory coalescing unit** with its pending-request table
  (PRT), extended with the subwarp-id (sid) field of Fig 11 — the hardware
  hook all three defenses plug into;
* a crossbar interconnect to 6 memory partitions, global address space
  interleaved in 256-byte chunks;
* banked GDDR5 DRAM with FR-FCFS scheduling and Hynix timing parameters;
* optional MSHR merging and caching (both **disabled by default** to match
  the paper's evaluation, Section VII).

The simulator is event-driven (no per-cycle loop), so kernel launches with
tens of thousands of memory requests simulate in milliseconds while
preserving the property the attack exploits: execution time grows with the
number of coalesced accesses, with realistic DRAM queueing noise.
"""

from repro.gpu.config import GPUConfig
from repro.gpu.coalescer import CoalescingUnit, PendingRequestTable
from repro.gpu.energy import EnergyBreakdown, EnergyModel
from repro.gpu.engine import GPUSimulator, KernelResult, RoundAwareSidMap
from repro.gpu.warp import WarpProgram, build_warp_programs

__all__ = [
    "GPUConfig",
    "CoalescingUnit",
    "PendingRequestTable",
    "GPUSimulator",
    "KernelResult",
    "RoundAwareSidMap",
    "WarpProgram",
    "build_warp_programs",
    "EnergyModel",
    "EnergyBreakdown",
]
