"""Wavefront-batched exact timing engine.

:class:`BatchedTimingCore` produces the *same* :class:`KernelResult` as the
discrete-event engine (:class:`repro.gpu.engine.GPUSimulator`) without
dispatching ~5 heap events per coalesced access. It exploits two structural
facts about the simulated machine:

**Wavefront decomposition.** Within one warp, loads stay in flight and only
:class:`~repro.gpu.warp.ComputeInstruction` waits on ``outstanding == 0``,
so the issue stream between two compute barriers is memory-independent: the
issue/coalesce/inject timestamps of every access in that *wavefront* are
pure scheduler arithmetic. When the barrier resolves, every load of the
wavefront has replied — and because a reply trails its DRAM completion by
the reply-crossbar latency while the controller's command slot frees a mere
``tCCD`` after CAS, every partition is fully drained *before* the warp
resumes. Each wavefront therefore sees an empty memory system (bank row
state, bus recurrences and crossbar ports carry over as plain integers),
and the launch is an alternation of vectorized issue phases and independent
per-partition FR-FCFS replays.

**Exact tie resolution without a heap.** The event engine orders events by
``(cycle, seq)`` where ``seq`` is global push order. Push order is exactly
"parent event's processing order, then intra-parent push index", so every
event has an order key ``(cycle, parent_key, index)`` — nested tuples whose
lexicographic order provably equals the heap's ``(cycle, seq)`` order. The
core never materializes these keys on the hot path: the only places a tie
can matter are an arrival landing on the same cycle as a controller's
command-slot event (decided by a one-int compare of the parents' cycles,
with full key reconstruction as the rare second level), same-cycle DRAM
completions from different partitions meeting at the reply port (the reply
*cycle multiset* is permutation-invariant, so order only matters when the
tied accesses feed different round windows — never within a single-round
wavefront), and a barrier resolving on the exact cycle of its last reply.

Coverage contract: the core handles single-warp launches (the shape of
every timed experiment in this repository — 32-line plaintexts are one
warp) on the fast-memory machine (no L2, no MSHRs) with telemetry
disabled, including partial warps, stores, ``RoundAwareSidMap`` selective
maps and permuted address maps. Anything else — multi-warp launches,
instrumented runs, cache configurations, exotic address maps, or a
wavefront whose store traffic is still queued when the next wavefront
arrives — raises :class:`UnsupportedLaunch` and the caller falls back to
the event engine, which remains the semantic reference.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.gpu.address import AddressMap, PermutedAddressMap
from repro.gpu.config import GPUConfig
from repro.gpu.dram import DramStats
from repro.gpu.engine import RoundAwareSidMap
from repro.gpu.stats import KernelResult, RoundWindow
from repro.gpu.warp import ComputeInstruction, WarpProgram

__all__ = ["BatchedTimingCore", "UnsupportedLaunch"]


class UnsupportedLaunch(Exception):
    """This launch needs machinery only the event engine has.

    Internal control flow: :meth:`GPUSimulator.run` catches it and re-runs
    the launch on the event engine. The core mutates no engine-visible
    state, so the retry starts from scratch.
    """


#: The engine builds its CoalescingUnit/MemoryController with defaults.
_PRT_CAPACITY = 64
_FRFCFS_WINDOW = 64
_QUEUE_CAPACITY = 65536

#: Wavefront window-tracking sentinels (identity-compared).
_UNSET = object()
_MULTI = object()


class BatchedTimingCore:
    """Exact-cycle wavefront replay of one single-warp kernel launch."""

    def __init__(self, config: GPUConfig, address_map: AddressMap):
        am_type = type(address_map)
        if am_type is AddressMap:
            self._part_perm = None
            self._bank_perm = None
        elif am_type is PermutedAddressMap:
            self._part_perm = np.array(address_map._partition_perm,
                                       dtype=np.int64)
            self._bank_perm = np.array(address_map._bank_perm,
                                       dtype=np.int64)
        else:
            # Unknown decode semantics: only the event engine (which calls
            # the map's own methods) can honour them.
            raise UnsupportedLaunch(f"address map {am_type.__name__}")
        self.config = config
        timing = config.dram_timing_core
        self._t_cl = timing.t_cl
        self._t_rp = timing.t_rp
        self._t_rc = timing.t_rc
        self._t_ras = timing.t_ras
        self._t_ccd = timing.t_ccd
        self._t_rcd = timing.t_rcd
        self._t_burst = timing.t_burst
        self._reply_flits = 1 + -(-config.access_bytes
                                  // config.icnt_flit_bytes)
        self._block_mask = ~(config.access_bytes - 1)
        self._chunk = config.partition_chunk_bytes
        self._rows_chunks = config.row_bytes // self._chunk
        self._reply_next_free = 0
        self._last_completion = 0

    @classmethod
    def try_create(cls, config: GPUConfig,
                   address_map: AddressMap) -> Optional["BatchedTimingCore"]:
        try:
            return cls(config, address_map)
        except UnsupportedLaunch:
            return None

    # -- launch-wide vectorized coalesce ------------------------------------

    def _coalesce_program(self, mem_instrs, sid_source, round_aware, W):
        """Coalesce every memory instruction of the launch at once.

        Returns per-instruction access counts/offsets plus flat per-access
        DRAM coordinates, all in the engine's exact generation order:
        groups ascending by sid, blocks in first-touch thread order within
        a group (the contract of ``CoalescingUnit.coalesce``).
        """
        M = len(mem_instrs)
        addr_rows = []
        sid_rows = []
        masks = []
        any_mask = False
        for ins in mem_instrs:
            if len(ins.addresses) != W:
                raise UnsupportedLaunch("lane count mismatch")
            mask = ins.active_mask
            if mask is not None:
                if len(mask) != W:
                    raise UnsupportedLaunch("active mask length mismatch")
                any_mask = True
            masks.append(mask)
            addr_rows.append(ins.addresses)
            sid_rows.append(sid_source(ins.round_index) if round_aware
                            else sid_source)
        addr = np.array(addr_rows, dtype=np.int64)
        sid = np.array(sid_rows, dtype=np.int64)
        blk = addr & self._block_mask

        if any_mask:
            active = np.array(
                [[True] * W if m is None else m for m in masks], dtype=bool
            ).ravel()
            flat = np.nonzero(active)[0]
        else:
            flat = np.arange(M * W, dtype=np.int64)
        r = flat // W
        t = flat - r * W
        b = blk.ravel()[flat]
        s = sid.ravel()[flat]
        logged = np.bincount(r, minlength=M)

        # First-touch thread per (instruction, sid, block), then the final
        # generation order (instruction, sid asc, first-touch asc).
        order = np.lexsort((t, b, s, r))
        r1, s1, b1, t1 = r[order], s[order], b[order], t[order]
        first = np.empty(len(order), dtype=bool)
        if len(order):
            first[0] = True
            first[1:] = ((r1[1:] != r1[:-1]) | (s1[1:] != s1[:-1])
                         | (b1[1:] != b1[:-1]))
        ru, su, bu, tu = r1[first], s1[first], b1[first], t1[first]
        order2 = np.lexsort((tu, su, ru))
        rB = ru[order2]
        bB = bu[order2]
        counts = np.bincount(rB, minlength=M)

        # DRAM coordinates, vectorized (same floor-div/mod arithmetic as
        # AddressMap._decode_uncached on the block address).
        cfg = self.config
        cid = bB // self._chunk
        part = cid % cfg.num_partitions
        lc = cid // cfg.num_partitions
        bank = lc % cfg.num_banks
        row = lc // cfg.num_banks // self._rows_chunks
        if self._part_perm is not None:
            part = self._part_perm[part]
            bank = self._bank_perm[bank]
        starts = np.concatenate(([0], np.cumsum(counts)))
        return (counts.tolist(), starts.tolist(), logged.tolist(),
                part, bank, row,
                np.repeat(np.arange(M), counts).tolist(),
                (np.arange(len(rB)) - np.repeat(starts[:-1],
                                                counts)).tolist())

    # -- the launch ----------------------------------------------------------

    def run(self, programs: Sequence[WarpProgram],
            sid_maps: Mapping[int, Sequence[int]]) -> KernelResult:
        if len(programs) != 1:
            raise UnsupportedLaunch("multi-warp launch")
        config = self.config
        program = programs[0]
        warp_id = program.warp_id
        raw_map = sid_maps.get(warp_id)
        if raw_map is None:
            raise UnsupportedLaunch("missing sid map")
        round_aware = isinstance(raw_map, RoundAwareSidMap)
        if round_aware:
            sid_source = raw_map.for_round
        else:
            sid_source = tuple(raw_map)
        W = config.warp_size
        if (len(raw_map) if round_aware else len(sid_source)) != W:
            raise UnsupportedLaunch("sid map lane count")
        if warp_id // config.num_sms >= config.max_warps_per_sm:
            raise UnsupportedLaunch("SM occupancy")

        instructions = program.instructions
        mem_instrs = [ins for ins in instructions
                      if not isinstance(ins, ComputeInstruction)]
        result = KernelResult(num_warps=1)
        windows = result.round_windows

        if mem_instrs:
            (m_counts, m_starts, m_logged, A_part, A_bank, A_row,
             a_instr, a_jpos) = self._coalesce_program(
                mem_instrs, sid_source, round_aware, W)
        else:
            m_counts = m_starts = m_logged = a_instr = a_jpos = []
            A_part = A_bank = A_row = np.empty(0, dtype=np.int64)

        M = len(mem_instrs)
        m_write = [getattr(ins, "is_write", False) for ins in mem_instrs]
        if M:
            A_write = np.repeat(np.array(m_write, dtype=bool),
                                np.array(m_counts))
        else:
            A_write = np.empty(0, dtype=bool)
        a_write = A_write.tolist()
        m_win: List[Optional[RoundWindow]] = [None] * M
        ibase = [0] * M        # per-instruction first-access inject cycle
        iwkey: List[object] = [None] * M   # warp-event key at issue

        # Timing constants / launch-local machine state -----------------------
        issue_cycles = config.issue_cycles
        per_access = config.coalescer_cycles_per_access
        icnt_lat = config.icnt_latency
        rate = config.icnt_requests_per_cycle
        reply_flits = self._reply_flits
        reply_lat = icnt_lat + reply_flits - 1
        t_cl, t_rp, t_rc = self._t_cl, self._t_rp, self._t_rc
        t_ras, t_ccd, t_rcd = self._t_ras, self._t_ccd, self._t_rcd
        t_burst = self._t_burst
        P = config.num_partitions
        B = config.num_banks

        bank_row = [[None] * B for _ in range(P)]
        #: numpy mirror of bank_row (-1 = closed) for the vectorized
        #: all-row-hit precheck; rows are non-negative so -1 never hits.
        brow_np = [np.full(B, -1, dtype=np.int64) for _ in range(P)]
        bank_cas = [[0] * B for _ in range(P)]
        bank_act = [[0] * B for _ in range(P)]
        bank_pre = [[0] * B for _ in range(P)]
        bus_free = [0] * P
        dstats = [DramStats() for _ in range(P)]
        part_idle = [0] * P
        fwd_next_free = [0] * P
        fwd_accepted = [0] * P
        self._reply_next_free = 0
        self._last_completion = 0

        def inject_key(g):
            ai = a_instr[g]
            jp = a_jpos[g]
            return (ibase[ai] + jp * per_access, iwkey[ai], jp)

        def dec_key(ctx, di):
            """Order key of the event that triggered decision ``di``.

            ``ctx = (g_l, arr_l, dec_slot, dec_trig)`` of one partition's
            wavefront replay. Keys are ``(cycle, parent_key, push_index)``
            nested tuples — only built on the rare tie paths.

            A ``dec_trig`` of None marks a fast-path (all-row-hit FIFO)
            replay, which never materialized trigger identities; they are
            reconstructed here from the arrival/slot chains: decision j was
            command-slot-triggered iff arrival j was queued (absorbed) when
            slot j-1 freed, which on an exact cycle tie is itself an event
            order comparison.
            """
            g_l, arr_l, dec_slot, dec_trig = ctx
            if dec_trig is not None:
                base = di
                while dec_trig[base] < 0:
                    base -= 1
                k = dec_trig[base]
                g = g_l[k]
                key = (arr_l[k], inject_key(g), 0)
                for j in range(base, di):
                    key = (dec_slot[j], key, 1)
                return key
            # Descend to a definite arrival-triggered base, then ascend;
            # ties are resolved on the way up (the deeper key is at hand).
            steps = []
            j = di
            while j > 0:
                sp = dec_slot[j - 1]
                a = arr_l[j]
                if a > sp:
                    break
                steps.append(j)
                j -= 1
            key = (arr_l[j], inject_key(g_l[j]), 0)
            for j in reversed(steps):
                sp = dec_slot[j - 1]
                if arr_l[j] < sp:
                    key = (sp, key, 1)
                    continue
                ka = inject_key(g_l[j])
                if (ka, 0) < (key, 1):
                    # Arrival beat the slot event: it was absorbed, so the
                    # decision was slot-triggered.
                    key = (sp, key, 1)
                else:
                    key = (arr_l[j], ka, 0)
            return key

        self._dec_key = dec_key

        def flush(g0, g1, mw0, mw1, ready, wkey, wf_win, wf_writes):
            """Replay the accumulated wavefront through the memory system.

            Accesses ``[g0, g1)`` of instructions ``[mw0, mw1)``. Returns
            the warp's (ready cycle, warp-event key) after the barrier:
            unchanged when every reply (if any) lands before the pending
            warp event, else the wake pushed by the zeroing reply.
            """
            if per_access == 1:
                inj = (np.repeat(np.asarray(ibase[mw0:mw1], dtype=np.int64),
                                 np.asarray(m_counts[mw0:mw1]))
                       + np.array(a_jpos[g0:g1], dtype=np.int64))
            else:
                inj = (np.repeat(np.asarray(ibase[mw0:mw1], dtype=np.int64),
                                 np.asarray(m_counts[mw0:mw1]))
                       + np.array(a_jpos[g0:g1], dtype=np.int64)
                       * per_access)
            partv = A_part[g0:g1]
            wv_bank = A_bank[g0:g1]
            wv_row = A_row[g0:g1]
            order = np.argsort(partv, kind="stable")
            sortedp = partv[order]
            bounds = np.searchsorted(sortedp, np.arange(P + 1))
            part_data = []
            for p in range(P):
                lo = int(bounds[p])
                hi = int(bounds[p + 1])
                if lo == hi:
                    continue
                sel = order[lo:hi]
                n = hi - lo
                idxn = np.arange(n)

                # Forward crossbar: per-partition ingress port recurrence.
                # accept_k = max(inject_k, accept_{k-1} + 1) unrolls to
                # k + max(next_free, max_{j<=k}(inject_j - j)).
                if rate == 1:
                    inj_seg = inj[sel]
                    acc = idxn + np.maximum(
                        np.maximum.accumulate(inj_seg - idxn),
                        fwd_next_free[p])
                    fwd_next_free[p] = int(acc[-1]) + 1
                    arr_np = acc + icnt_lat
                else:
                    nf = fwd_next_free[p]
                    ct = fwd_accepted[p]
                    arr_l = []
                    append_arr = arr_l.append
                    for c in inj[sel].tolist():
                        a0 = nf if nf > c else c
                        ct += 1
                        nf = a0 + 1 if ct % rate == 0 else a0
                        append_arr(a0 + icnt_lat)
                    fwd_next_free[p] = nf
                    fwd_accepted[p] = ct
                    arr_np = np.asarray(arr_l, dtype=np.int64)
                # A prior wavefront's store may still be queued when this
                # wavefront arrives: cross-wavefront FR-FCFS interleaving
                # the per-wavefront replay cannot express.
                if int(arr_np[0]) < part_idle[p]:
                    raise UnsupportedLaunch("store drain overlaps wavefront")

                bank_seg = wv_bank[sel]
                row_seg = wv_row[sel]
                careful = n >= _QUEUE_CAPACITY
                if not careful and bool(
                        np.all(brow_np[p][bank_seg] == row_seg)):
                    # All-row-hit fast path: every select is a head hit, so
                    # FR-FCFS degenerates to FIFO and absorb-order ties
                    # cannot change service order or timing. Slots strictly
                    # increase, so per-bank CAS state never binds (the
                    # global tCCD chain dominates, and the cross-wavefront
                    # case is covered by the drain check above):
                    #   cas_k  = max(arr_k, cas_{k-1} + tCCD)
                    #   comp_k = max(cas_k + tCL, comp_{k-1}) + tBURST
                    # — two running-max recurrences in closed form.
                    cas = idxn * t_ccd + np.maximum.accumulate(
                        arr_np - idxn * t_ccd)
                    slot = cas + t_ccd
                    comp = (idxn + 1) * t_burst + np.maximum(
                        np.maximum.accumulate(cas + t_cl - idxn * t_burst),
                        bus_free[p])
                    qwait = int(comp.sum() - arr_np.sum()) - n * t_burst
                    bus_free[p] = int(comp[-1])
                    part_idle[p] = int(slot[-1])
                    slot_l = slot.tolist()
                    bcas = bank_cas[p]
                    for bk, sl in zip(bank_seg.tolist(), slot_l):
                        bcas[bk] = sl
                    g_l = (sel + g0).tolist()
                    comps_c = comp.tolist()
                    if wf_writes:
                        nw = int(np.count_nonzero(A_write[g0:g1][sel]))
                    else:
                        nw = 0
                    st = dstats[p]
                    st.row_hits += n
                    st.reads += n - nw
                    st.writes += nw
                    st.bus_busy_cycles += n * t_burst
                    st.queue_wait_cycles += qwait
                    if comps_c[-1] > self._last_completion:
                        self._last_completion = comps_c[-1]
                    part_data.append((g_l, arr_np.tolist(), slot_l, None,
                                      comps_c, range(n), nw))
                    continue

                arr_l = arr_np.tolist()
                g_l = (sel + g0).tolist()
                bank_l = bank_seg.tolist()
                row_l = row_seg.tolist()

                # FR-FCFS replay: the exact event alternation of arrivals
                # and command-slot (dslot) events, minus the heap.
                brow = bank_row[p]
                brow_np_p = brow_np[p]
                bcas = bank_cas[p]
                bact = bank_act[p]
                bpre = bank_pre[p]
                busf = bus_free[p]
                hits = misses = qwait = 0
                queue: List[int] = []
                queue_append = queue.append
                ctx = None
                i = 0
                pending = False
                d = 0
                last_s = 0
                dec_slot: List[int] = []
                dec_trig: List[int] = []
                comps_c: List[int] = []
                comps_k: List[int] = []
                while True:
                    if not pending:
                        if i >= n:
                            break
                        queue_append(i)
                        s = arr_l[i]
                        trig = i
                        i += 1
                    else:
                        while i < n:
                            a = arr_l[i]
                            if a >= d:
                                if a > d:
                                    break
                                # Same-cycle tie: does the arrival's event
                                # key precede the pending dslot's? First
                                # level is the parents' cycles — the last
                                # decision's trigger cycle vs this
                                # arrival's inject cycle.
                                g = g_l[i]
                                ai = a_instr[g]
                                ic = ibase[ai] + a_jpos[g] * per_access
                                if last_s != ic:
                                    if last_s < ic:
                                        break
                                else:
                                    if ctx is None:
                                        ctx = (g_l, arr_l, dec_slot,
                                               dec_trig)
                                    if ((dec_key(ctx, len(dec_slot) - 1), 1)
                                            < ((ic, iwkey[ai],
                                                a_jpos[g]), 0)):
                                        break
                            if careful and len(queue) >= _QUEUE_CAPACITY:
                                raise ProtocolError(
                                    "memory controller queue overflow")
                            queue_append(i)
                            i += 1
                        pending = False
                        if not queue:
                            continue
                        s = d
                        trig = -1
                    # FR-FCFS select: oldest row hit in the window, else
                    # oldest.
                    qn = len(queue)
                    if qn == 1:
                        k = queue.pop()
                    else:
                        idx = 0
                        lim = qn if qn < _FRFCFS_WINDOW else _FRFCFS_WINDOW
                        for qi in range(lim):
                            kq = queue[qi]
                            if brow[bank_l[kq]] == row_l[kq]:
                                idx = qi
                                break
                        k = queue.pop(idx)
                    bk = bank_l[k]
                    rw = row_l[k]
                    if brow[bk] == rw:
                        hits += 1
                        cas = bcas[bk]
                        if s > cas:
                            cas = s
                    else:
                        misses += 1
                        pre = bcas[bk]
                        x = bpre[bk]
                        if x > pre:
                            pre = x
                        if s > pre:
                            pre = s
                        act = pre + t_rp
                        x = bact[bk]
                        if x > act:
                            act = x
                        bact[bk] = act + t_rc
                        bpre[bk] = act + t_ras
                        brow[bk] = rw
                        brow_np_p[bk] = rw
                        cas = act + t_rcd
                    slot = cas + t_ccd
                    bcas[bk] = slot
                    drdy = cas + t_cl
                    if busf > drdy:
                        drdy = busf
                    comp = drdy + t_burst
                    busf = comp
                    w = drdy - arr_l[k]
                    if w > 0:
                        qwait += w
                    comps_c.append(comp)
                    comps_k.append(k)
                    dec_slot.append(slot)
                    dec_trig.append(trig)
                    pending = True
                    d = slot
                    last_s = s

                bus_free[p] = busf
                part_idle[p] = d
                if wf_writes:
                    nw = int(np.count_nonzero(A_write[g0:g1][sel]))
                else:
                    nw = 0
                st = dstats[p]
                st.row_hits += hits
                st.row_misses += misses
                st.reads += n - nw
                st.writes += nw
                st.bus_busy_cycles += n * t_burst
                st.queue_wait_cycles += qwait
                if comps_c[-1] > self._last_completion:
                    self._last_completion = comps_c[-1]
                part_data.append((g_l, arr_l, dec_slot, dec_trig,
                                  comps_c, comps_k, nw))
            return self._replies(part_data, ready, wkey, wf_win,
                                 wf_writes, reply_flits, reply_lat,
                                 a_write, m_win, a_instr)

        # -- issue loop -------------------------------------------------------
        sched_free = 0
        ldst_free = 0
        ready = 0
        wkey: object = (0, (), 0)
        count_accesses = result.count_accesses
        mi = 0
        wf_g0 = 0
        wf_m0 = 0
        wf_loads = 0
        wf_writes = False
        wf_win: object = _UNSET
        for ins in instructions:
            if isinstance(ins, ComputeInstruction):
                if wf_loads:
                    ready, wkey = flush(wf_g0, m_starts[mi], wf_m0, mi,
                                        ready, wkey, wf_win, wf_writes)
                    wf_g0 = m_starts[mi]
                    wf_m0 = mi
                    wf_loads = 0
                    wf_writes = False
                    wf_win = _UNSET
                issue = ready if ready > sched_free else sched_free
                sched_free = issue + issue_cycles
                done = issue + issue_cycles + ins.cycles
                key = (warp_id, ins.round_index)
                wnd = windows.get(key)
                if wnd is None:
                    wnd = RoundWindow()
                    windows[key] = wnd
                wnd.observe_start(issue)
                wnd.observe_end(done)
                ready = done
                wkey = (done, wkey, 0)
                continue
            m = mi
            mi += 1
            nb = m_counts[m]
            if m_logged[m] > _PRT_CAPACITY:
                raise ProtocolError("pending request table overflow")
            if not nb:
                raise ProtocolError("memory instruction produced no accesses")
            issue = ready if ready > sched_free else sched_free
            sched_free = issue + issue_cycles
            rix = ins.round_index
            if rix is not None:
                key = (warp_id, rix)
                wnd = windows.get(key)
                if wnd is None:
                    wnd = RoundWindow()
                    windows[key] = wnd
                wnd.observe_start(issue)
                m_win[m] = wnd
            inject = issue + issue_cycles
            if ldst_free > inject:
                inject = ldst_free
            ibase[m] = inject
            iwkey[m] = wkey
            ldst_free = inject + nb * per_access
            count_accesses(ins.kind, rix, nb)
            if m_write[m]:
                ready = ldst_free
                wf_writes = True
            else:
                wf_loads += nb
                ready = issue + issue_cycles
                w = m_win[m]
                if wf_win is _UNSET:
                    wf_win = w
                elif wf_win is not w:
                    wf_win = _MULTI
            wkey = (ready, wkey, nb)

        total = m_starts[M] if M else 0
        if wf_g0 < total:
            had_loads = wf_loads > 0
            end_ready, _end_key = flush(wf_g0, total, wf_m0, M,
                                        ready, wkey, wf_win, wf_writes)
            finish = end_ready if had_loads else ready
        else:
            finish = ready
        result.warp_finish[warp_id] = finish
        result.total_cycles = finish
        result.drain_cycles = (finish if finish > self._last_completion
                               else self._last_completion)
        result.dram_stats = dstats
        return result

    # -- reply crossbar ------------------------------------------------------

    def _replies(self, part_data, ready, wkey, wf_win, wf_writes,
                 reply_flits, reply_lat, a_write, m_win, a_instr):
        """Run the SM ejection-port recurrence over this wavefront's loads.

        The reply-cycle *multiset* is invariant under permutation of
        same-cycle completions, so the common path never materializes the
        merged reply order: it sorts raw completion cycles and computes the
        final accept with a closed-form running max. Identity (which access
        got which cycle) is reconstructed only for the last reply (the
        barrier wake) and, via :meth:`_replies_exact`, for the rare
        wavefront whose loads span several round windows.
        """
        if not part_data:
            return ready, wkey
        if wf_win is _MULTI:
            return self._replies_exact(part_data, ready, wkey,
                                       reply_flits, reply_lat, a_write,
                                       m_win, a_instr)
        load_comps = []
        for pd in part_data:
            comps_c, comps_k, nw = pd[4], pd[5], pd[6]
            if not nw:
                load_comps.append(comps_c)
            elif nw < len(comps_c):
                g_l = pd[0]
                load_comps.append(
                    [c for c, k in zip(comps_c, comps_k)
                     if not a_write[g_l[k]]])
        total = sum(len(c) for c in load_comps)
        if not total:
            return ready, wkey
        if len(load_comps) == 1:
            c = np.asarray(load_comps[0], dtype=np.int64)
        else:
            c = np.sort(np.concatenate(
                [np.asarray(x, dtype=np.int64) for x in load_comps]))
        # accept_j = max(comp_j, accept_{j-1} + flits) unrolls to
        # flits*j + max(next_free, max_{k<=j}(comp_k - flits*k)).
        peak = int((c - reply_flits * np.arange(total)).max())
        nf0 = self._reply_next_free
        accept_last = (reply_flits * (total - 1)
                       + (peak if peak > nf0 else nf0))
        last_rc = accept_last + reply_lat
        self._reply_next_free = accept_last + reply_flits
        if wf_win is not None:
            e = wf_win.end
            if e is None or last_rc > e:
                wf_win.end = last_rc
        if last_rc < ready:
            return ready, wkey
        dec_key = self._dec_key
        c_max = int(c[-1])
        cands = []
        for pd in part_data:
            g_l, comps_c, comps_k, nw = pd[0], pd[4], pd[5], pd[6]
            j = len(comps_c) - 1
            if nw:
                while j >= 0 and a_write[g_l[comps_k[j]]]:
                    j -= 1
            if j >= 0 and comps_c[j] == c_max:
                cands.append((pd, j))
        if len(cands) == 1:
            pd, j = cands[0]
        else:
            # Same-cycle final completions: the last reply belongs to the
            # last one in true dram-event order.
            pd, j = max(cands, key=lambda e: dec_key(e[0][:4], e[1]))
        rkey = (last_rc, (c_max, dec_key(pd[:4], j), 0), 0)
        if last_rc == ready and not rkey > wkey:
            return ready, wkey
        return last_rc, (last_rc, rkey, 0)

    def _replies_exact(self, part_data, ready, wkey,
                       reply_flits, reply_lat, a_write, m_win, a_instr):
        """Per-reply replay in true merged order (multi-window wavefront).

        Same-cycle completions from different partitions are reordered by
        their reconstructed dram-event keys, so each round window sees the
        exact reply cycles the event engine would give it.
        """
        dec_key = self._dec_key
        merged = []
        for pdi, pd in enumerate(part_data):
            g_l, comps_c, comps_k = pd[0], pd[4], pd[5]
            for j, comp in enumerate(comps_c):
                g = g_l[comps_k[j]]
                if not a_write[g]:
                    merged.append((comp, pdi, j, g))
        if not merged:
            return ready, wkey
        merged.sort(key=lambda e: e[0])
        run = 0
        for j in range(1, len(merged) + 1):
            if j == len(merged) or merged[j][0] != merged[run][0]:
                if j - run > 1 and len({e[1] for e in merged[run:j]}) > 1:
                    seg = merged[run:j]
                    seg.sort(key=lambda e: dec_key(part_data[e[1]][:4],
                                                   e[2]))
                    merged[run:j] = seg
                run = j
        nf = self._reply_next_free
        rc = 0
        for comp, pdi, j, g in merged:
            a0 = comp if comp > nf else nf
            nf = a0 + reply_flits
            rc = a0 + reply_lat
            wnd = m_win[a_instr[g]]
            if wnd is not None:
                e = wnd.end
                if e is None or rc > e:
                    wnd.end = rc
        last_rc = rc
        self._reply_next_free = nf
        comp, pdi, j, _g = merged[-1]
        if last_rc > ready:
            blocked = True
        elif last_rc < ready:
            blocked = False
        else:
            rkey = (last_rc, (comp, dec_key(part_data[pdi][:4], j), 0), 0)
            blocked = rkey > wkey
        if blocked:
            rkey = (last_rc, (comp, dec_key(part_data[pdi][:4], j), 0), 0)
            return last_rc, (last_rc, rkey, 0)
        return ready, wkey
