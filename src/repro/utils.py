"""Small shared helpers used across the package."""

from __future__ import annotations

import os
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")

__all__ = [
    "chunked",
    "xor_bytes",
    "env_int",
    "env_flag",
    "fast_mode",
    "scaled_samples",
]


def chunked(seq: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield consecutive chunks of ``seq`` of length ``size``.

    The final chunk may be shorter when ``len(seq)`` is not a multiple of
    ``size``.
    """
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    for start in range(0, len(seq), size):
        yield seq[start:start + size]


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Bytewise XOR of two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def env_int(name: str, default: int) -> int:
    """Read an integer environment variable with a default."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"environment variable {name}={raw!r} is not an int") from exc


def env_flag(name: str) -> bool:
    """True when the environment variable is set to a truthy marker."""
    return os.environ.get(name, "").lower() in {"1", "true", "yes", "on"}


def fast_mode() -> bool:
    """True when REPRO_FAST asks experiments to use reduced sample counts."""
    return env_flag("REPRO_FAST")


def scaled_samples(paper_count: int, fast_count: int) -> int:
    """Sample count for an experiment.

    Priority: explicit ``REPRO_SAMPLES`` override, then the reduced count when
    ``REPRO_FAST`` is set, then the paper's count.
    """
    override = os.environ.get("REPRO_SAMPLES")
    if override:
        return int(override)
    return fast_count if fast_mode() else paper_count
