"""Small shared helpers used across the package."""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Sequence, TypeVar, Union

T = TypeVar("T")

__all__ = [
    "chunked",
    "xor_bytes",
    "env_int",
    "env_flag",
    "fast_mode",
    "batched_mode",
    "batched_timing_mode",
    "scaled_samples",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
]


def chunked(seq: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield consecutive chunks of ``seq`` of length ``size``.

    The final chunk may be shorter when ``len(seq)`` is not a multiple of
    ``size``.
    """
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    for start in range(0, len(seq), size):
        yield seq[start:start + size]


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Bytewise XOR of two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def env_int(name: str, default: int) -> int:
    """Read an integer environment variable with a default."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"environment variable {name}={raw!r} is not an int") from exc


def env_flag(name: str) -> bool:
    """True when the environment variable is set to a truthy marker."""
    return os.environ.get(name, "").lower() in {"1", "true", "yes", "on"}


def fast_mode() -> bool:
    """True when REPRO_FAST asks experiments to use reduced sample counts."""
    return env_flag("REPRO_FAST")


def batched_mode(explicit: "Union[bool, None]" = None) -> bool:
    """Resolve the collection-engine selection for counts-only phases.

    Priority: an explicit ``ExperimentContext.batched`` /
    ``--batched/--no-batched`` setting, then the ``REPRO_BATCHED``
    environment variable, then the default — **on**, since the batched
    core is checksum-identical to the event engine on every count it
    produces (regression-proven by the golden parity suite).
    """
    if explicit is not None:
        return bool(explicit)
    raw = os.environ.get("REPRO_BATCHED", "").lower()
    if raw in {"0", "false", "no", "off"}:
        return False
    return True


def batched_timing_mode(explicit: "Union[bool, None]" = None) -> bool:
    """Resolve the exact-timing engine selection for timed phases.

    Priority: an explicit ``ExperimentContext.batched_timing`` /
    ``--batched-timing/--no-batched-timing`` setting, then the
    ``REPRO_BATCHED_TIMING`` environment variable, then the default —
    **on**, since the wavefront core produces a ``KernelResult``
    identical to the event engine's on every launch it accepts and
    falls back to the event engine otherwise (regression-proven by the
    golden parity battery).
    """
    if explicit is not None:
        return bool(explicit)
    raw = os.environ.get("REPRO_BATCHED_TIMING", "").lower()
    if raw in {"0", "false", "no", "off"}:
        return False
    return True


def scaled_samples(paper_count: int, fast_count: int) -> int:
    """Sample count for an experiment.

    Priority: explicit ``REPRO_SAMPLES`` override, then the reduced count when
    ``REPRO_FAST`` is set, then the paper's count.
    """
    override = os.environ.get("REPRO_SAMPLES")
    if override:
        return int(override)
    return fast_count if fast_mode() else paper_count


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` so readers never see a partial file.

    The bytes go to a temp file in the destination directory, are fsynced,
    and the temp file is renamed over the destination (``os.replace``,
    atomic on POSIX and Windows). A crash at any point leaves either the
    previous content or the new content — never a truncated mix. Every
    artifact writer in the package (bench reports, metrics baselines,
    ``--json`` exports, checkpoints) routes through here; the torn-write
    fault injection in :mod:`repro.faults` proves the property by tearing
    the temp write and asserting the destination survives.
    """
    path = Path(path)
    from repro.faults import active_plan

    plan = active_plan()
    fd, tmp = tempfile.mkstemp(dir=str(path.parent or Path(".")),
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            if plan is not None:
                spec = plan.torn_write_fires(path.name)
                if spec is not None:
                    from repro.faults import TornWriteError

                    handle.write(data[:len(data) // 2])
                    raise TornWriteError(
                        f"injected torn write {spec.describe()} while "
                        f"writing {path}"
                    )
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: Union[str, Path], text: str,
                      encoding: str = "utf-8") -> Path:
    """Crash-safe text write (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: Union[str, Path], obj, *, indent: int = 2,
                      sort_keys: bool = False,
                      trailing_newline: bool = True) -> Path:
    """Crash-safe JSON write (see :func:`atomic_write_bytes`)."""
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys)
    if trailing_newline:
        text += "\n"
    return atomic_write_text(path, text)
