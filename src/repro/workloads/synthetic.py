"""Synthetic memory-access workloads.

The paper evaluates RCoal on AES only, but the defense applies to any
kernel whose loads pass the coalescing unit. These generators build warp
programs with controlled access patterns so the cost of subwarp
randomization can be characterized as a function of *coalescibility*:

* :class:`SequentialPattern` — thread ``tid`` reads ``base + tid*stride``:
  perfectly coalescible (1 access/warp at stride 4); the worst case for
  subwarping, whose overhead is exactly the subwarp count;
* :class:`StridedPattern` — large strides spread threads over blocks,
  the classic uncoalescible kernel: subwarping costs ~nothing;
* :class:`RandomPattern` — uniform over R blocks: the AES T-table regime;
* :class:`HotspotPattern` — a skewed mix: most threads hit a small hot set.

:class:`SyntheticKernel` assembles rounds of compute + lockstep loads from
a pattern, producing the same :class:`~repro.gpu.warp.WarpProgram` objects
the AES path builds — so every policy, attack-counting utility, and the
timing engine work on them unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.gpu.address import TABLE_REGION_BASE
from repro.gpu.request import AccessKind
from repro.gpu.warp import ComputeInstruction, MemoryInstruction, WarpProgram
from repro.rng import RngStream

__all__ = [
    "AccessPattern",
    "SequentialPattern",
    "StridedPattern",
    "RandomPattern",
    "HotspotPattern",
    "SyntheticKernel",
]


class AccessPattern(ABC):
    """Generates one lockstep load's per-thread byte addresses."""

    #: Short label used in reports.
    name: str = "abstract"

    @abstractmethod
    def addresses(self, warp_size: int, instruction_index: int,
                  rng: Optional[RngStream]) -> Tuple[int, ...]:
        """Per-thread addresses (relative to the pattern's region base)."""

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class SequentialPattern(AccessPattern):
    """Thread ``tid`` reads ``tid * stride`` — fully coalescible."""

    stride: int = 4
    name: str = "sequential"

    def __post_init__(self) -> None:
        if self.stride <= 0:
            raise ConfigurationError(f"stride must be positive: {self.stride}")

    def addresses(self, warp_size, instruction_index, rng):
        base = TABLE_REGION_BASE + instruction_index * 4096
        return tuple(base + tid * self.stride for tid in range(warp_size))


@dataclass(frozen=True)
class StridedPattern(AccessPattern):
    """Thread ``tid`` reads ``tid * stride`` with a block-sized or larger
    stride — every thread touches its own block (uncoalescible)."""

    stride: int = 64
    name: str = "strided"

    def __post_init__(self) -> None:
        if self.stride < 64:
            raise ConfigurationError(
                "strided pattern means one block per thread: stride >= 64"
            )

    def addresses(self, warp_size, instruction_index, rng):
        base = TABLE_REGION_BASE + instruction_index * (self.stride * 64)
        return tuple(base + tid * self.stride for tid in range(warp_size))


@dataclass(frozen=True)
class RandomPattern(AccessPattern):
    """Each thread reads a uniformly random one of ``num_blocks`` blocks —
    the AES T-table regime (R = 16 by default)."""

    num_blocks: int = 16
    name: str = "random"

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ConfigurationError(
                f"need at least one block: {self.num_blocks}"
            )

    def addresses(self, warp_size, instruction_index, rng):
        if rng is None:
            raise ConfigurationError("random patterns need an RNG stream")
        blocks = rng.integers(0, self.num_blocks, size=warp_size)
        return tuple(TABLE_REGION_BASE + int(b) * 64 for b in blocks)


@dataclass(frozen=True)
class HotspotPattern(AccessPattern):
    """A fraction of threads hit a small hot block set; the rest are
    uniform over a larger cold set."""

    hot_blocks: int = 2
    cold_blocks: int = 64
    hot_fraction: float = 0.8
    name: str = "hotspot"

    def __post_init__(self) -> None:
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot fraction must be in [0, 1]: {self.hot_fraction}"
            )
        if self.hot_blocks <= 0 or self.cold_blocks <= 0:
            raise ConfigurationError("block counts must be positive")

    def addresses(self, warp_size, instruction_index, rng):
        if rng is None:
            raise ConfigurationError("random patterns need an RNG stream")
        out = []
        for _ in range(warp_size):
            if rng.uniform() < self.hot_fraction:
                block = int(rng.integers(0, self.hot_blocks))
            else:
                block = self.hot_blocks + int(rng.integers(0,
                                                           self.cold_blocks))
            out.append(TABLE_REGION_BASE + block * 64)
        return tuple(out)


class SyntheticKernel:
    """Builds warp programs of compute + lockstep loads from a pattern.

    Parameters
    ----------
    pattern:
        The access pattern every load follows.
    num_warps / loads_per_round / num_rounds:
        Program shape; each round is a compute phase followed by
        ``loads_per_round`` lockstep loads (mirroring the AES structure so
        per-round statistics stay meaningful).
    """

    def __init__(self, pattern: AccessPattern, num_warps: int = 1,
                 loads_per_round: int = 16, num_rounds: int = 10,
                 warp_size: int = 32, round_compute_cycles: int = 40):
        if num_warps <= 0 or loads_per_round <= 0 or num_rounds <= 0:
            raise ConfigurationError("kernel shape must be positive")
        self.pattern = pattern
        self.num_warps = num_warps
        self.loads_per_round = loads_per_round
        self.num_rounds = num_rounds
        self.warp_size = warp_size
        self.round_compute_cycles = round_compute_cycles

    def build(self, rng: Optional[RngStream] = None) -> List[WarpProgram]:
        """Materialize the warp programs (drawing pattern randomness)."""
        programs = []
        for warp_id in range(self.num_warps):
            program = WarpProgram(warp_id=warp_id,
                                  num_threads=self.warp_size)
            instruction_index = 0
            for round_index in range(1, self.num_rounds + 1):
                program.instructions.append(ComputeInstruction(
                    self.round_compute_cycles, round_index
                ))
                for _ in range(self.loads_per_round):
                    addresses = self.pattern.addresses(
                        self.warp_size, instruction_index, rng
                    )
                    program.instructions.append(MemoryInstruction(
                        addresses=addresses,
                        kind=AccessKind.TABLE_LOAD,
                        round_index=round_index,
                        request_size=4,
                    ))
                    instruction_index += 1
            programs.append(program)
        return programs
