"""Plaintext sample generation.

The attack sends "a large number of plaintexts" to the encryption server;
the paper uses 100 uniformly random samples of 32 lines (and 1024 lines for
the Fig 18 case study). Uniformly random plaintexts are also the assumption
behind the theoretical model's 1/R access probability (Section V-B1).
"""

from __future__ import annotations

from typing import List

from repro.aes.cipher import BLOCK_BYTES
from repro.errors import ConfigurationError
from repro.rng import RngStream

__all__ = ["random_plaintexts"]


def random_plaintexts(num_samples: int, lines: int,
                      rng: RngStream) -> List[bytes]:
    """``num_samples`` uniformly random plaintexts of ``lines`` 16-byte lines."""
    if num_samples <= 0:
        raise ConfigurationError(
            f"sample count must be positive: {num_samples}"
        )
    if lines <= 0:
        raise ConfigurationError(f"line count must be positive: {lines}")
    return [rng.random_bytes(lines * BLOCK_BYTES) for _ in range(num_samples)]
