"""Workloads: plaintext generation and the victim encryption service.

:class:`~repro.workloads.server.EncryptionServer` models the remote GPU AES
server of the attack setting: it accepts plaintexts, encrypts them on the
(policy-protected) simulated GPU, and exposes exactly what a strong attacker
observes — ciphertexts and execution times (total and last-round, matching
the paper's stronger-attacker assumption in Section II-C) — plus
ground-truth access counts for the counts-based evaluations (Fig 18a).
"""

from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionRecord, EncryptionServer
from repro.workloads.synthetic import (
    AccessPattern,
    HotspotPattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    SyntheticKernel,
)

__all__ = [
    "random_plaintexts",
    "EncryptionServer",
    "EncryptionRecord",
    "AccessPattern",
    "SequentialPattern",
    "StridedPattern",
    "RandomPattern",
    "HotspotPattern",
    "SyntheticKernel",
]
