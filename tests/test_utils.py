"""Tests for shared helpers."""

import pytest

from repro.utils import chunked, env_flag, env_int, scaled_samples, xor_bytes


class TestChunked:
    def test_even_chunks(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_self_inverse(self):
        a, b = b"hello!", b"world."
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"a", b"ab")


class TestEnvHelpers:
    def test_env_int_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_X", raising=False)
        assert env_int("REPRO_TEST_X", 5) == 5

    def test_env_int_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_X", "12")
        assert env_int("REPRO_TEST_X", 5) == 12

    def test_env_int_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_X", "nope")
        with pytest.raises(ValueError):
            env_int("REPRO_TEST_X", 5)

    def test_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_F", "1")
        assert env_flag("REPRO_TEST_F")
        monkeypatch.setenv("REPRO_TEST_F", "off")
        assert not env_flag("REPRO_TEST_F")

    def test_scaled_samples_priority(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLES", raising=False)
        monkeypatch.delenv("REPRO_FAST", raising=False)
        assert scaled_samples(100, 40) == 100
        monkeypatch.setenv("REPRO_FAST", "1")
        assert scaled_samples(100, 40) == 40
        monkeypatch.setenv("REPRO_SAMPLES", "7")
        assert scaled_samples(100, 40) == 7


def test_error_hierarchy():
    from repro.errors import (
        AnalysisError,
        AttackError,
        ConfigurationError,
        CryptoError,
        InsufficientSamplesError,
        KeySizeError,
        ProtocolError,
        ReproError,
        SimulationError,
    )

    assert issubclass(ConfigurationError, ReproError)
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(KeySizeError, CryptoError)
    assert issubclass(ProtocolError, SimulationError)
    assert issubclass(InsufficientSamplesError, AttackError)
    assert issubclass(AnalysisError, ReproError)
