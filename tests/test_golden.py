"""Golden regression values for the deterministic simulation pipeline.

These pin exact outputs for one fixed seed so that unintended changes to
the timing model, RNG derivation, or coalescing logic are caught
immediately. They are *regression* anchors, not correctness claims: when a
deliberate model change shifts them, re-baseline after checking the
benchmark shapes still hold.
"""

import pytest

from repro.core.policies import make_policy
from repro.rng import RngStream, derive_seed
from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionServer

GOLDEN_SEED = 777


@pytest.fixture(scope="module")
def golden_record():
    key = bytes(RngStream(GOLDEN_SEED, "key").random_bytes(16))
    plaintext = random_plaintexts(1, 32, RngStream(GOLDEN_SEED, "pt"))[0]
    server = EncryptionServer(key, make_policy("baseline"))
    return server.encrypt(plaintext)


class TestGoldenPipeline:
    def test_seed_derivation_is_stable(self):
        # SHA-256-based derivation: any change breaks all reproducibility.
        assert derive_seed(GOLDEN_SEED, "key") == 4674544707857336641

    def test_counts_are_stable(self, golden_record):
        assert golden_record.total_accesses == 2283
        assert golden_record.last_round_accesses == 233

    def test_timing_is_stable(self, golden_record):
        assert golden_record.total_time == 7805
        assert golden_record.last_round_time == 818

    def test_ciphertext_is_stable(self, golden_record):
        assert golden_record.ciphertext_lines[0].hex() \
            == golden_record.ciphertext[:16].hex()

    def test_randomized_run_is_stable(self):
        key = bytes(RngStream(GOLDEN_SEED, "key").random_bytes(16))
        plaintext = random_plaintexts(1, 32,
                                      RngStream(GOLDEN_SEED, "pt"))[0]
        server = EncryptionServer(key, make_policy("rss_rts", 8),
                                  rng=RngStream(GOLDEN_SEED, "victim"))
        record = server.encrypt(plaintext)
        partition = record.partitions[0]
        assert sum(partition.sizes) == 32
        # Pin the drawn sizes: catches RNG-stream or sampling changes.
        assert partition.sizes == record.partitions[0].sizes
        again = EncryptionServer(key, make_policy("rss_rts", 8),
                                 rng=RngStream(GOLDEN_SEED, "victim")
                                 ).encrypt(plaintext)
        assert again.partitions[0] == partition
        assert again.total_time == record.total_time
