"""Golden regression values for the deterministic simulation pipeline.

These pin exact outputs for one fixed seed so that unintended changes to
the timing model, RNG derivation, or coalescing logic are caught
immediately. They are *regression* anchors, not correctness claims: when a
deliberate model change shifts them, re-baseline after checking the
benchmark shapes still hold.
"""

import hashlib

import pytest

from repro.core.policies import make_policy
from repro.rng import RngStream, derive_seed
from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionServer

GOLDEN_SEED = 777


@pytest.fixture(scope="module")
def golden_record():
    key = bytes(RngStream(GOLDEN_SEED, "key").random_bytes(16))
    plaintext = random_plaintexts(1, 32, RngStream(GOLDEN_SEED, "pt"))[0]
    server = EncryptionServer(key, make_policy("baseline"))
    return server.encrypt(plaintext)


class TestGoldenPipeline:
    def test_seed_derivation_is_stable(self):
        # SHA-256-based derivation: any change breaks all reproducibility.
        assert derive_seed(GOLDEN_SEED, "key") == 4674544707857336641

    def test_counts_are_stable(self, golden_record):
        assert golden_record.total_accesses == 2283
        assert golden_record.last_round_accesses == 233

    def test_timing_is_stable(self, golden_record):
        assert golden_record.total_time == 7805
        assert golden_record.last_round_time == 818

    def test_ciphertext_is_stable(self, golden_record):
        assert golden_record.ciphertext_lines[0].hex() \
            == golden_record.ciphertext[:16].hex()

    def test_randomized_run_is_stable(self):
        key = bytes(RngStream(GOLDEN_SEED, "key").random_bytes(16))
        plaintext = random_plaintexts(1, 32,
                                      RngStream(GOLDEN_SEED, "pt"))[0]
        server = EncryptionServer(key, make_policy("rss_rts", 8),
                                  rng=RngStream(GOLDEN_SEED, "victim"))
        record = server.encrypt(plaintext)
        partition = record.partitions[0]
        assert sum(partition.sizes) == 32
        # Pin the drawn sizes: catches RNG-stream or sampling changes.
        assert partition.sizes == record.partitions[0].sizes
        again = EncryptionServer(key, make_policy("rss_rts", 8),
                                 rng=RngStream(GOLDEN_SEED, "victim")
                                 ).encrypt(plaintext)
        assert again.partitions[0] == partition
        assert again.total_time == record.total_time


def _record_fingerprint(record) -> bytes:
    """Everything observable about one launch, as a stable byte string."""
    kr = record.kernel_result
    return repr((
        record.ciphertext, record.total_time, record.last_round_time,
        record.total_accesses, record.last_round_accesses,
        sorted(record.round_accesses.items()),
        record.last_round_byte_accesses,
        [(d.row_hits, d.row_misses, d.reads, d.writes,
          d.bus_busy_cycles, d.queue_wait_cycles)
         for d in kr.dram_stats],
        sorted((k, v.start, v.end) for k, v in kr.round_windows.items()),
        sorted(kr.warp_finish.items()),
    )).encode()


class TestGoldenEngineDetail:
    """Deep pins of the timing engine's internal state.

    The coarse pins above would let a micro-architectural regression hide
    behind a compensating error; these check DRAM bank behaviour, the
    per-round execution windows, and a multi-seed multi-policy digest, so
    any event-ordering or state-machine change in the engine is caught —
    the guard that hot-path optimizations must be simulated-cycle-exact
    against.
    """

    @pytest.fixture(scope="class")
    def golden_kernel(self):
        key = bytes(RngStream(GOLDEN_SEED, "key").random_bytes(16))
        plaintext = random_plaintexts(
            1, 32, RngStream(GOLDEN_SEED, "pt"))[0]
        server = EncryptionServer(key, make_policy("baseline"),
                                  retain_kernel_results=True)
        return server.encrypt(plaintext).kernel_result

    def test_total_cycles_are_stable(self, golden_kernel):
        assert golden_kernel.total_cycles == 7805
        assert golden_kernel.drain_cycles == 7805
        assert golden_kernel.warp_finish == {0: 7805}

    def test_dram_bank_stats_are_stable(self, golden_kernel):
        stats = golden_kernel.dram_stats
        assert [d.row_hits for d in stats] == [388, 375, 314, 305, 439, 438]
        assert [d.queue_wait_cycles for d in stats] \
            == [17834, 16368, 14349, 14418, 24003, 23235]

    def test_round_windows_are_stable(self, golden_kernel):
        windows = golden_kernel.round_windows
        assert [(windows[(0, r)].start, windows[(0, r)].end)
                for r in range(11)] \
            == [(0, 102), (102, 911), (911, 1675), (1675, 2433),
                (2433, 3209), (3209, 3961), (3961, 4716), (4716, 5474),
                (5474, 6241), (6241, 6987), (6987, 7805)]

    def test_engine_battery_digest_is_stable(self):
        # Two seeds x four policies, fingerprinting ciphertext, timing,
        # access counts, DRAM stats, round windows, and warp finishes.
        sig = hashlib.sha256()
        for seed in (42, 777):
            key = bytes(RngStream(seed, "key").random_bytes(16))
            plaintext = random_plaintexts(
                1, 32, RngStream(seed, "pt"))[0]
            for name, subwarps in (("baseline", 1), ("rss_rts", 8),
                                   ("fss_rts", 8), ("nocoal", 1)):
                policy = make_policy(name, subwarps)
                server = EncryptionServer(
                    key, policy,
                    rng=(RngStream(seed, "victim")
                         if policy.is_randomized else None),
                    retain_kernel_results=True,
                )
                sig.update(_record_fingerprint(server.encrypt(plaintext)))
        assert sig.hexdigest() == ("89c21d9aa548795e749d680dac4a8af0"
                                   "21802d3f825736f1f559bc5fcab0923f")
