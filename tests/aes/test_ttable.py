"""Tests for the trace-generating T-table AES."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aes.cipher import encrypt_block
from repro.aes.key_schedule import NUM_ROUNDS
from repro.aes.sbox import INV_SBOX
from repro.aes.tables import LAST_ROUND_TABLE_ID
from repro.aes.ttable import (
    LOOKUPS_PER_ROUND,
    EncryptionTrace,
    RoundTrace,
    TTableAES,
    clear_trace_cache,
)
from repro.errors import BlockSizeError

keys = st.binary(min_size=16, max_size=16)
blocks = st.binary(min_size=16, max_size=16)


class TestCorrectness:
    @given(keys, blocks)
    @settings(max_examples=50)
    def test_matches_reference_cipher(self, key, plaintext):
        trace = TTableAES(key).encrypt(plaintext)
        assert trace.ciphertext == encrypt_block(plaintext, key)

    def test_rejects_bad_block(self, test_key):
        with pytest.raises(BlockSizeError):
            TTableAES(test_key).encrypt(b"short")


class TestTraceShape:
    def test_ten_rounds_sixteen_lookups_each(self, test_key):
        trace = TTableAES(test_key).encrypt(bytes(16))
        assert len(trace.rounds) == NUM_ROUNDS
        for round_trace in trace.rounds:
            assert len(round_trace.lookups) == LOOKUPS_PER_ROUND
        assert trace.total_lookups == NUM_ROUNDS * LOOKUPS_PER_ROUND

    def test_main_rounds_use_t0_to_t3_four_times_each(self, test_key):
        trace = TTableAES(test_key).encrypt(bytes(16))
        for round_trace in trace.rounds[:-1]:
            table_ids = [table for table, _ in round_trace.lookups]
            for table in range(4):
                assert table_ids.count(table) == 4

    def test_last_round_uses_t4_only(self, test_key):
        trace = TTableAES(test_key).encrypt(bytes(16))
        assert all(table == LAST_ROUND_TABLE_ID
                   for table, _ in trace.last_round.lookups)

    def test_round_trace_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            RoundTrace(1, ((0, 0),) * 3)


class TestEquationThree:
    """The attack inverts t_j = InvSBox[c_j ^ k_j]; the trace must agree."""

    @given(keys, blocks)
    @settings(max_examples=50)
    def test_last_round_indices_invert_from_ciphertext(self, key, plaintext):
        aes = TTableAES(key)
        trace = aes.encrypt(plaintext)
        k10 = aes.last_round_key
        for j, (table, index) in enumerate(trace.last_round.lookups):
            assert index == INV_SBOX[trace.ciphertext[j] ^ k10[j]]


class TestTraceCache:
    def test_cache_returns_identical_trace(self, test_key):
        aes = TTableAES(test_key)
        first = aes.encrypt(bytes(16))
        second = aes.encrypt(bytes(16))
        assert first is second  # memoized object

    def test_cache_distinguishes_keys(self):
        plaintext = bytes(16)
        trace_a = TTableAES(bytes(16)).encrypt(plaintext)
        trace_b = TTableAES(bytes([1] * 16)).encrypt(plaintext)
        assert trace_a.ciphertext != trace_b.ciphertext

    def test_clear_cache(self, test_key):
        aes = TTableAES(test_key)
        first = aes.encrypt(bytes(16))
        clear_trace_cache()
        second = aes.encrypt(bytes(16))
        assert first is not second
        assert first == second
