"""Tests for the reference AES-128 cipher."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aes.cipher import decrypt_block, encrypt_block
from repro.aes.vectors import KNOWN_ANSWERS
from repro.errors import BlockSizeError

keys = st.binary(min_size=16, max_size=16)
blocks = st.binary(min_size=16, max_size=16)


class TestKnownAnswers:
    @pytest.mark.parametrize("vector", KNOWN_ANSWERS,
                             ids=[v.name for v in KNOWN_ANSWERS])
    def test_encrypt(self, vector):
        assert encrypt_block(vector.plaintext, vector.key) \
            == vector.ciphertext

    @pytest.mark.parametrize("vector", KNOWN_ANSWERS,
                             ids=[v.name for v in KNOWN_ANSWERS])
    def test_decrypt(self, vector):
        assert decrypt_block(vector.ciphertext, vector.key) \
            == vector.plaintext


class TestProperties:
    @given(keys, blocks)
    def test_roundtrip(self, key, plaintext):
        assert decrypt_block(encrypt_block(plaintext, key), key) == plaintext

    @given(keys, blocks)
    def test_encryption_changes_the_block(self, key, plaintext):
        # AES is a permutation without trivial fixed structure; equality
        # would be astronomically unlikely and indicates a wiring bug.
        assert encrypt_block(plaintext, key) != plaintext

    @given(keys, keys, blocks)
    def test_different_keys_differ(self, key_a, key_b, plaintext):
        if key_a != key_b:
            assert encrypt_block(plaintext, key_a) \
                != encrypt_block(plaintext, key_b)

    def test_rejects_bad_block_size(self):
        with pytest.raises(BlockSizeError):
            encrypt_block(b"tiny", bytes(16))
        with pytest.raises(BlockSizeError):
            decrypt_block(b"tiny", bytes(16))
