"""Tests for CBC / CTR modes (NIST SP 800-38A vectors + properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aes.modes import (
    counter_block,
    crypt_ctr,
    ctr_keystream,
    decrypt_cbc,
    encrypt_cbc,
)
from repro.errors import BlockSizeError

keys = st.binary(min_size=16, max_size=16)
ivs = st.binary(min_size=16, max_size=16)
data16 = st.binary(min_size=16, max_size=96).filter(
    lambda b: len(b) % 16 == 0)

# NIST SP 800-38A F.2.1 (CBC-AES128).
NIST_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NIST_IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
NIST_CBC_PT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
)
NIST_CBC_CT = bytes.fromhex(
    "7649abac8119b246cee98e9b12e9197d"
    "5086cb9b507219ee95db113a917678b2"
)

# NIST SP 800-38A F.5.1 (CTR-AES128). The 16-byte initial counter block
# f0f1..ff maps to nonce = first 8 bytes, counter = last 8 bytes.
NIST_CTR_NONCE = bytes.fromhex("f0f1f2f3f4f5f6f7")
NIST_CTR_COUNTER = int.from_bytes(bytes.fromhex("f8f9fafbfcfdfeff"), "big")
NIST_CTR_PT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
)
NIST_CTR_CT = bytes.fromhex(
    "874d6191b620e3261bef6864990db6ce"
    "9806f66b7970fdff8617187bb9fffdff"
)


class TestCbc:
    def test_nist_vector(self):
        assert encrypt_cbc(NIST_CBC_PT, NIST_KEY, NIST_IV) == NIST_CBC_CT
        assert decrypt_cbc(NIST_CBC_CT, NIST_KEY, NIST_IV) == NIST_CBC_PT

    @given(keys, ivs, data16)
    @settings(max_examples=25)
    def test_roundtrip(self, key, iv, plaintext):
        assert decrypt_cbc(encrypt_cbc(plaintext, key, iv), key, iv) \
            == plaintext

    def test_chaining_breaks_ecb_equality(self):
        # Two identical plaintext blocks produce different ciphertexts.
        ciphertext = encrypt_cbc(bytes(32), NIST_KEY, NIST_IV)
        assert ciphertext[:16] != ciphertext[16:]

    def test_rejects_bad_iv(self):
        with pytest.raises(BlockSizeError):
            encrypt_cbc(bytes(16), NIST_KEY, b"short")


class TestCtr:
    def test_nist_vector(self):
        assert crypt_ctr(NIST_CTR_PT, NIST_KEY, NIST_CTR_NONCE,
                         NIST_CTR_COUNTER) == NIST_CTR_CT

    @given(keys, st.binary(min_size=8, max_size=8),
           st.binary(min_size=1, max_size=70))
    @settings(max_examples=25)
    def test_self_inverse_any_length(self, key, nonce, data):
        once = crypt_ctr(data, key, nonce)
        assert crypt_ctr(once, key, nonce) == data
        assert len(once) == len(data)

    def test_keystream_blocks_are_counter_encryptions(self):
        from repro.aes.cipher import encrypt_block

        stream = ctr_keystream(NIST_KEY, bytes(8), 3, initial_counter=5)
        for i in range(3):
            expected = encrypt_block(counter_block(bytes(8), 5 + i),
                                     NIST_KEY)
            assert stream[16 * i: 16 * (i + 1)] == expected

    def test_counter_block_layout(self):
        block = counter_block(b"\x01" * 8, 0x0203)
        assert block == b"\x01" * 8 + (0x0203).to_bytes(8, "big")

    def test_counter_block_validation(self):
        with pytest.raises(BlockSizeError):
            counter_block(b"short", 0)
        with pytest.raises(BlockSizeError):
            counter_block(bytes(8), 2 ** 64)
