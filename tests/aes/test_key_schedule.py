"""Tests for AES-128 key expansion and its inversion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aes.key_schedule import (
    NUM_ROUNDS,
    expand_key,
    last_round_key,
    rcon,
    recover_master_key,
)
from repro.aes.vectors import FIPS197_EXPANDED_KEY_FIRST_WORDS
from repro.errors import KeySizeError

keys = st.binary(min_size=16, max_size=16)

FIPS_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


class TestExpansion:
    def test_round_zero_is_master_key(self):
        assert expand_key(FIPS_KEY)[0] == FIPS_KEY

    def test_produces_eleven_round_keys(self):
        round_keys = expand_key(FIPS_KEY)
        assert len(round_keys) == NUM_ROUNDS + 1
        assert all(len(k) == 16 for k in round_keys)

    def test_fips197_appendix_a_words(self):
        round_keys = expand_key(FIPS_KEY)
        for round_index, word_index, expected in \
                FIPS197_EXPANDED_KEY_FIRST_WORDS:
            word = round_keys[round_index][4 * word_index: 4 * word_index + 4]
            assert int.from_bytes(word, "big") == expected

    def test_rcon_sequence(self):
        expected = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80,
                    0x1B, 0x36]
        assert [rcon(i) for i in range(1, 11)] == expected

    def test_rcon_rejects_zero(self):
        with pytest.raises(ValueError):
            rcon(0)

    def test_rejects_wrong_key_size(self):
        with pytest.raises(KeySizeError):
            expand_key(b"short")


class TestInversion:
    @given(keys)
    def test_roundtrip_from_last_round(self, key):
        assert recover_master_key(last_round_key(key)) == key

    @given(keys, st.integers(min_value=0, max_value=NUM_ROUNDS))
    def test_roundtrip_from_any_round(self, key, round_index):
        round_keys = expand_key(key)
        assert recover_master_key(round_keys[round_index],
                                  round_index) == key

    def test_rejects_wrong_round_key_size(self):
        with pytest.raises(KeySizeError):
            recover_master_key(b"bad")

    def test_rejects_out_of_range_round(self):
        with pytest.raises(ValueError):
            recover_master_key(bytes(16), 11)
