"""Vectorized AES batch kernel: parity against the scalar T-table trace."""

import numpy as np
import pytest

from repro.aes.batch import encrypt_batch, table_id_grid
from repro.aes.key_schedule import NUM_ROUNDS
from repro.aes.ttable import LOOKUPS_PER_ROUND, TTableAES
from repro.errors import BlockSizeError
from repro.rng import RngStream


def _random_lines(num_lines, seed=0):
    rng = RngStream(seed, "batch-test")
    return np.frombuffer(rng.random_bytes(num_lines * 16),
                         dtype=np.uint8).reshape(num_lines, 16).copy()


class TestEncryptBatch:
    @pytest.mark.parametrize("num_lines", [1, 3, 32])
    def test_ciphertexts_match_scalar(self, num_lines):
        key = bytes(RngStream(7, "key").random_bytes(16))
        lines = _random_lines(num_lines, seed=num_lines)
        ciphertexts, _ = encrypt_batch(key, lines)
        scalar = TTableAES(key)
        for n in range(num_lines):
            trace = scalar.encrypt(lines[n].tobytes())
            assert ciphertexts[n].tobytes() == trace.ciphertext

    def test_indices_match_the_scalar_lookup_trace(self):
        key = bytes(RngStream(8, "key").random_bytes(16))
        lines = _random_lines(5, seed=5)
        _, indices = encrypt_batch(key, lines)
        assert indices.shape == (5, NUM_ROUNDS, LOOKUPS_PER_ROUND)
        scalar = TTableAES(key)
        for n in range(5):
            trace = scalar.encrypt(lines[n].tobytes())
            for r, round_trace in enumerate(trace.rounds):
                assert tuple(indices[n, r]) == round_trace.indices

    def test_table_id_grid_matches_the_scalar_lookup_tables(self):
        key = b"\x00" * 16
        trace = TTableAES(key).encrypt(b"\x01" * 16)
        grid = table_id_grid()
        for r, round_trace in enumerate(trace.rounds):
            scalar_tables = tuple(table for table, _ in round_trace.lookups)
            assert tuple(grid[r]) == scalar_tables

    def test_different_keys_diverge(self):
        lines = _random_lines(4)
        a, _ = encrypt_batch(b"\x00" * 16, lines)
        b, _ = encrypt_batch(b"\x01" * 16, lines)
        assert a.tobytes() != b.tobytes()

    def test_rejects_bad_shapes(self):
        with pytest.raises(BlockSizeError):
            encrypt_batch(b"\x00" * 16, np.zeros((4, 15), dtype=np.uint8))
        with pytest.raises(BlockSizeError):
            encrypt_batch(b"\x00" * 16, np.zeros(16, dtype=np.uint8))

    def test_input_lines_are_not_mutated(self):
        lines = _random_lines(4)
        before = lines.copy()
        encrypt_batch(b"\x2b" * 16, lines)
        assert np.array_equal(lines, before)
