"""Tests for the GF(2^8) arithmetic and S-box construction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aes.sbox import GF_MODULUS, INV_SBOX, SBOX, gf_inverse, gf_mul, xtime
from repro.aes.vectors import SBOX_SPOT_CHECKS

bytes_ = st.integers(min_value=0, max_value=255)


class TestGFArithmetic:
    def test_xtime_small_values(self):
        assert xtime(0x01) == 0x02
        assert xtime(0x40) == 0x80
        # 0x80 * 2 overflows and reduces by the modulus.
        assert xtime(0x80) == (0x100 ^ GF_MODULUS) & 0xFF == 0x1B

    def test_mul_identity_and_zero(self):
        for a in range(256):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    def test_mul_known_value(self):
        # FIPS-197 example: {57} x {83} = {c1}.
        assert gf_mul(0x57, 0x83) == 0xC1

    @given(bytes_, bytes_)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(bytes_, bytes_, bytes_)
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(bytes_, bytes_, bytes_)
    def test_mul_distributes_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @given(bytes_)
    def test_inverse_property(self, a):
        inv = gf_inverse(a)
        if a == 0:
            assert inv == 0
        else:
            assert gf_mul(a, inv) == 1

    def test_inverse_is_involution_on_nonzero(self):
        for a in range(1, 256):
            assert gf_inverse(gf_inverse(a)) == a


class TestSbox:
    def test_spot_values(self):
        for index, expected in SBOX_SPOT_CHECKS:
            assert SBOX[index] == expected

    def test_is_a_bijection(self):
        assert sorted(SBOX) == list(range(256))
        assert sorted(INV_SBOX) == list(range(256))

    def test_inverse_round_trips(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x
            assert SBOX[INV_SBOX[x]] == x

    def test_has_no_fixed_points(self):
        # A classic Rijndael property: S[x] != x and S[x] != ~x for all x.
        for x in range(256):
            assert SBOX[x] != x
            assert SBOX[x] != x ^ 0xFF
