"""Tests for the T-table construction and memory layout."""

import pytest

from repro.aes.sbox import SBOX, gf_mul
from repro.aes.tables import (
    BLOCK_BYTES,
    ENTRIES_PER_BLOCK,
    ENTRY_BYTES,
    LAST_ROUND_TABLE_ID,
    NUM_TABLE_BLOCKS,
    ROUND_TABLES,
    T0,
    T1,
    T2,
    T3,
    T4,
    TABLE_BYTES,
    TABLE_ENTRIES,
    block_of_index,
    table_entry_bytes,
)


class TestLayoutConstants:
    def test_paper_configuration(self):
        # Section II-C: 16 consecutive table elements share one block,
        # giving R = 16 blocks per 1 KB table.
        assert ENTRY_BYTES == 4
        assert BLOCK_BYTES == 64
        assert ENTRIES_PER_BLOCK == 16
        assert NUM_TABLE_BLOCKS == 16
        assert TABLE_BYTES == 1024

    def test_block_of_index_is_shift_four(self):
        for index in range(TABLE_ENTRIES):
            assert block_of_index(index) == index >> 4

    def test_block_of_index_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            block_of_index(256)
        with pytest.raises(ValueError):
            block_of_index(-1)


class TestTableContents:
    def test_t0_packs_mixcolumns_of_sbox(self):
        for x in range(TABLE_ENTRIES):
            s = SBOX[x]
            assert T0[x] == (gf_mul(s, 2), s, s, gf_mul(s, 3))

    def test_t1_to_t3_are_rotations_of_t0(self):
        for x in range(TABLE_ENTRIES):
            e = T0[x]
            assert T1[x] == (e[3], e[0], e[1], e[2])
            assert T2[x] == (e[2], e[3], e[0], e[1])
            assert T3[x] == (e[1], e[2], e[3], e[0])

    def test_t4_packs_bare_sbox(self):
        for x in range(TABLE_ENTRIES):
            assert T4[x] == (SBOX[x],) * 4

    def test_round_tables_ordering(self):
        assert ROUND_TABLES == (T0, T1, T2, T3)

    def test_table_entry_bytes(self):
        assert table_entry_bytes(0, 0) == bytes(T0[0])
        assert table_entry_bytes(LAST_ROUND_TABLE_ID, 255) == bytes(T4[255])
