"""Tests for multi-line (ECB) encryption."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aes.cipher import encrypt_block
from repro.aes.modes import decrypt_lines, encrypt_lines, join_lines, \
    split_lines
from repro.errors import BlockSizeError

keys = st.binary(min_size=16, max_size=16)
plaintexts = st.binary(min_size=16, max_size=16 * 8).filter(
    lambda b: len(b) % 16 == 0
)


class TestSplitJoin:
    def test_split_produces_16_byte_lines(self):
        lines = split_lines(bytes(64))
        assert len(lines) == 4
        assert all(len(line) == 16 for line in lines)

    def test_split_rejects_partial_lines(self):
        with pytest.raises(BlockSizeError):
            split_lines(bytes(20))

    @given(plaintexts)
    def test_join_inverts_split(self, data):
        assert join_lines(split_lines(data)) == data


class TestEcb:
    @given(keys, plaintexts)
    def test_roundtrip(self, key, plaintext):
        assert decrypt_lines(encrypt_lines(plaintext, key), key) == plaintext

    @given(keys, plaintexts)
    def test_lines_encrypt_independently(self, key, plaintext):
        ciphertext = encrypt_lines(plaintext, key)
        for line_in, line_out in zip(split_lines(plaintext),
                                     split_lines(ciphertext)):
            assert line_out == encrypt_block(line_in, key)

    def test_identical_lines_give_identical_ciphertext(self):
        # The ECB property the GPU kernel relies on (and the attack's
        # per-line independence).
        key = bytes(range(16))
        ciphertext = encrypt_lines(bytes(32), key)
        lines = split_lines(ciphertext)
        assert lines[0] == lines[1]
