"""Tests for the command-line runner."""

import json

from repro.cli import EXIT_CONFIG, main
from repro.experiments.registry import EXPERIMENTS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENTS)

    def test_runs_a_small_experiment(self, capsys):
        assert main(["fig09", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "subwarp size" in out

    def test_samples_override(self, capsys):
        assert main(["fig05", "--samples", "8"]) == 0
        out = capsys.readouterr().out
        assert "samples" in out
        assert "8" in out

    def test_unknown_experiment_exits_with_config_code(self, capsys):
        assert main(["fig99"]) == EXIT_CONFIG
        err = capsys.readouterr().err
        assert "unknown experiment" in err


class TestEngineSelection:
    def test_batched_flag_never_changes_stdout(self, capsys):
        # Observer-effect contract: the counts-engine choice is a pure
        # performance knob. ablation_selective exercises both counts-only
        # collection (where the engines differ) and timed collection
        # (where the flag is ignored), so its full report must be
        # byte-identical under either engine.
        argv = ["ablation_selective", "--samples", "3"]
        assert main(argv + ["--batched"]) == 0
        batched_out = capsys.readouterr().out
        assert main(argv + ["--no-batched"]) == 0
        event_out = capsys.readouterr().out
        assert "ablation_selective" in batched_out
        assert batched_out == event_out


class TestTelemetryCommands:
    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "fig05", "--samples", "4",
                     "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "trace written to" in stdout
        trace = json.loads(out.read_text(encoding="utf-8"))
        events = trace["traceEvents"]
        assert events, "trace must contain events"
        categories = {e["cat"] for e in events if "cat" in e}
        assert {"dram", "interconnect", "coalescer"} <= categories
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)

    def test_trace_jsonl_sidecar(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        assert main(["trace", "fig05", "--samples", "2",
                     "--out", str(out), "--jsonl", str(jsonl)]) == 0
        lines = jsonl.read_text(encoding="utf-8").splitlines()
        assert lines
        assert all(json.loads(line)["name"] for line in lines)

    def test_metrics_prints_snapshot_table(self, tmp_path, capsys):
        json_out = tmp_path / "metrics.json"
        assert main(["metrics", "fig05", "--samples", "2",
                     "--json", str(json_out)]) == 0
        stdout = capsys.readouterr().out
        assert "telemetry metrics snapshot" in stdout
        assert "dram.row_hits" in stdout
        assert "coalescer.accesses" in stdout
        snapshot = json.loads(json_out.read_text(encoding="utf-8"))
        assert snapshot["sim.kernels"]["value"] == 2

    def test_trace_capacity_bounds_the_buffer(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "fig05", "--samples", "2",
                     "--out", str(out), "--capacity", "100"]) == 0
        trace = json.loads(out.read_text(encoding="utf-8"))
        payload = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert len(payload) == 100
        assert trace["otherData"]["dropped"] > 0

    def test_verbose_flag_accepted(self, capsys):
        from repro.telemetry import configure_logging
        try:
            assert main(["fig09", "--seed", "3", "-v"]) == 0
            assert "fig09" in capsys.readouterr().out
        finally:
            configure_logging(0)  # quiet the package root again


class TestStatusCommand:
    @staticmethod
    def _campaign(tmp_path, capsys):
        """A real campaign directory made by running with --resume."""
        run = tmp_path / "camp"
        assert main(["fig05", "--samples", "6",
                     "--resume", str(run)]) == 0
        capsys.readouterr()  # swallow the experiment output
        return run

    def test_table_reports_completed_campaign(self, tmp_path, capsys):
        run = self._campaign(tmp_path, capsys)
        assert main(["status", str(run)]) == 0
        out = capsys.readouterr().out
        assert "complete" in out
        assert "fig05" in out
        assert "6/6 samples done" in out

    def test_json_manifest_matches_checkpoint_truth(self, tmp_path,
                                                    capsys):
        run = self._campaign(tmp_path, capsys)
        assert main(["status", str(run), "--json"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["status"] == "complete"
        assert manifest["totals"]["completed"] == 6
        assert manifest["totals"]["remaining"] == 0
        phase, = manifest["experiments"][0]["phases"]
        assert phase["samples"] == 6

    def test_missing_campaign_exits_with_config_code(self, tmp_path,
                                                     capsys):
        assert main(["status", str(tmp_path / "nope")]) == EXIT_CONFIG
        assert "no campaign found" in capsys.readouterr().err

    def test_gc_keeps_status_and_resume_intact(self, tmp_path, capsys):
        run = self._campaign(tmp_path, capsys)
        assert main(["status", str(run), "--gc"]) == 0
        captured = capsys.readouterr()
        assert "ledger compacted" in captured.err
        # The campaign still reads complete, and a rerun still resumes
        # to the same stdout as an unresumed run.
        assert main(["fig05", "--samples", "6",
                     "--resume", str(run)]) == 0
        resumed = capsys.readouterr().out
        assert main(["fig05", "--samples", "6"]) == 0
        plain = capsys.readouterr().out
        assert resumed == plain

    def test_resumed_run_stdout_is_byte_identical_with_ledger(
            self, tmp_path, capsys):
        # The observer-effect contract for the ledger itself.
        assert main(["fig05", "--samples", "6"]) == 0
        plain = capsys.readouterr().out
        assert main(["fig05", "--samples", "6",
                     "--resume", str(tmp_path / "fresh")]) == 0
        ledgered = capsys.readouterr().out
        assert ledgered == plain
        assert (tmp_path / "fresh" / "events.jsonl").stat().st_size > 0
