"""Tests for the command-line runner."""

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.registry import EXPERIMENTS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENTS)

    def test_runs_a_small_experiment(self, capsys):
        assert main(["fig09", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "subwarp size" in out

    def test_samples_override(self, capsys):
        assert main(["fig05", "--samples", "8"]) == 0
        out = capsys.readouterr().out
        assert "samples" in out
        assert "8" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ConfigurationError):
            main(["fig99"])
