"""Tests for the SubwarpPartition invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.subwarp import SubwarpPartition
from repro.errors import ConfigurationError


class TestConstruction:
    def test_valid_partition(self):
        partition = SubwarpPartition(sizes=(2, 2),
                                     assignment=(0, 0, 1, 1))
        assert partition.num_subwarps == 2
        assert partition.warp_size == 4

    def test_rejects_empty_subwarp(self):
        with pytest.raises(ConfigurationError):
            SubwarpPartition(sizes=(4, 0), assignment=(0, 0, 0, 0))

    def test_rejects_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            SubwarpPartition(sizes=(2, 2), assignment=(0, 0, 1))

    def test_rejects_inconsistent_counts(self):
        with pytest.raises(ConfigurationError):
            SubwarpPartition(sizes=(3, 1), assignment=(0, 0, 1, 1))

    def test_rejects_invalid_sid(self):
        with pytest.raises(ConfigurationError):
            SubwarpPartition(sizes=(2, 2), assignment=(0, 0, 1, 5))

    def test_rejects_no_subwarps(self):
        with pytest.raises(ConfigurationError):
            SubwarpPartition(sizes=(), assignment=())


class TestAccessors:
    def test_threads_of(self):
        partition = SubwarpPartition(sizes=(1, 3),
                                     assignment=(1, 0, 1, 1))
        assert partition.threads_of(0) == (1,)
        assert partition.threads_of(1) == (0, 2, 3)

    def test_groups_cover_all_threads(self):
        partition = SubwarpPartition(sizes=(2, 2),
                                     assignment=(0, 1, 0, 1))
        groups = partition.groups()
        flattened = sorted(t for g in groups for t in g)
        assert flattened == [0, 1, 2, 3]


class TestFactories:
    def test_single(self):
        partition = SubwarpPartition.single(32)
        assert partition.num_subwarps == 1
        assert partition.sizes == (32,)

    def test_per_thread(self):
        partition = SubwarpPartition.per_thread(32)
        assert partition.num_subwarps == 32
        assert all(size == 1 for size in partition.sizes)
        assert partition.assignment == tuple(range(32))


@given(st.lists(st.integers(min_value=1, max_value=8), min_size=1,
                max_size=8))
def test_in_order_layout_always_valid(sizes):
    from repro.core.assignment import in_order_assignment

    partition = in_order_assignment(sizes)
    assert partition.sizes == tuple(sizes)
    assert partition.warp_size == sum(sizes)
    # Assignment is non-decreasing for the in-order layout.
    assert list(partition.assignment) == sorted(partition.assignment)
