"""Tests for thread-to-subwarp assignment (in-order vs RTS)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import in_order_assignment, random_assignment
from repro.rng import RngStream

size_lists = st.lists(st.integers(min_value=1, max_value=8),
                      min_size=1, max_size=8)


class TestInOrder:
    def test_consecutive_blocks(self):
        partition = in_order_assignment((2, 3, 1))
        assert partition.assignment == (0, 0, 1, 1, 1, 2)

    def test_matches_paper_description(self):
        # "first group of threads will belong to the first subwarp with
        # sid set to 0 and so on" (Section IV-D).
        partition = in_order_assignment((16, 16))
        assert partition.threads_of(0) == tuple(range(16))
        assert partition.threads_of(1) == tuple(range(16, 32))


class TestRandomAssignment:
    @given(size_lists)
    @settings(max_examples=40)
    def test_preserves_sizes(self, sizes):
        rng = RngStream(11, "rts")
        partition = random_assignment(sizes, rng)
        assert partition.sizes == tuple(sizes)
        counts = Counter(partition.assignment)
        for sid, size in enumerate(sizes):
            assert counts[sid] == size

    def test_draws_differ_between_launches(self):
        rng = RngStream(11, "rts-diff")
        draws = {random_assignment((8, 8, 8, 8), rng).assignment
                 for _ in range(20)}
        assert len(draws) > 15  # collisions astronomically unlikely

    def test_reproducible_for_same_stream_state(self):
        a = random_assignment((16, 16), RngStream(3, "same"))
        b = random_assignment((16, 16), RngStream(3, "same"))
        assert a.assignment == b.assignment

    def test_every_thread_can_land_anywhere(self):
        """Thread 0 should visit both subwarps across draws (RTS breaks
        the in-order mapping)."""
        rng = RngStream(5, "spread")
        sids_of_thread0 = {random_assignment((16, 16), rng).assignment[0]
                           for _ in range(64)}
        assert sids_of_thread0 == {0, 1}

    def test_uniformity_of_single_slot(self):
        """With sizes (1, 31), thread 0 lands in the singleton subwarp
        with probability 1/32."""
        rng = RngStream(5, "uniform-slot")
        hits = sum(
            1 for _ in range(3200)
            if random_assignment((1,) + (31,), rng).assignment[0] == 0
        )
        assert abs(hits - 100) < 50  # ~5 sigma of binomial(3200, 1/32)
