"""Tests for the coalescing policies."""

import pytest

from repro.core.policies import (
    POLICY_NAMES,
    BaselinePolicy,
    FSSPolicy,
    NoCoalescingPolicy,
    RSSPolicy,
    make_policy,
)
from repro.errors import ConfigurationError
from repro.rng import RngStream


class TestFactory:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_all_names_construct(self, name):
        policy = make_policy(name, num_subwarps=4)
        assert policy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("quantum")

    def test_rss_distribution_kwarg(self):
        policy = make_policy("rss", 4, distribution="normal")
        assert policy.distribution == "normal"


class TestBaselineAndNocoal:
    def test_baseline_is_one_subwarp(self):
        policy = BaselinePolicy()
        partition = policy.draw()
        assert partition.sizes == (32,)
        assert not policy.is_randomized

    def test_baseline_rejects_other_m(self):
        with pytest.raises(ConfigurationError):
            BaselinePolicy(num_subwarps=2)

    def test_nocoal_is_per_thread(self):
        policy = NoCoalescingPolicy()
        assert policy.draw().sizes == (1,) * 32
        assert not policy.is_randomized

    def test_nocoal_rejects_other_m(self):
        with pytest.raises(ConfigurationError):
            NoCoalescingPolicy(num_subwarps=4)


class TestFSS:
    def test_deterministic_without_rts(self):
        policy = FSSPolicy(4)
        assert policy.draw() == policy.draw()
        assert not policy.is_randomized
        assert policy.draw().sizes == (8, 8, 8, 8)
        assert policy.name == "fss"

    def test_rts_requires_rng(self):
        policy = FSSPolicy(4, rts=True)
        assert policy.is_randomized
        with pytest.raises(ConfigurationError):
            policy.draw(None)

    def test_rts_randomizes_assignment_not_sizes(self):
        rng = RngStream(1, "fss-rts")
        policy = FSSPolicy(4, rts=True)
        a = policy.draw(rng)
        b = policy.draw(rng)
        assert a.sizes == b.sizes == (8, 8, 8, 8)
        assert a.assignment != b.assignment
        assert policy.name == "fss_rts"


class TestRSS:
    def test_requires_rng(self):
        with pytest.raises(ConfigurationError):
            RSSPolicy(4).draw(None)

    def test_sizes_vary_between_draws(self):
        rng = RngStream(1, "rss")
        policy = RSSPolicy(4)
        sizes = {policy.draw(rng).sizes for _ in range(10)}
        assert len(sizes) > 1

    def test_without_rts_assignment_is_in_order(self):
        rng = RngStream(1, "rss-order")
        partition = RSSPolicy(4).draw(rng)
        assert list(partition.assignment) == sorted(partition.assignment)

    def test_with_rts_assignment_is_shuffled(self):
        rng = RngStream(1, "rss-rts")
        policy = RSSPolicy(4, rts=True)
        shuffled = any(
            list(p.assignment) != sorted(p.assignment)
            for p in (policy.draw(rng) for _ in range(10))
        )
        assert shuffled
        assert policy.name == "rss_rts"

    def test_rejects_unknown_distribution(self):
        with pytest.raises(ConfigurationError):
            RSSPolicy(4, distribution="cauchy")


class TestValidation:
    def test_rejects_out_of_range_m(self):
        with pytest.raises(ConfigurationError):
            FSSPolicy(0)
        with pytest.raises(ConfigurationError):
            FSSPolicy(33)

    def test_sid_map_matches_draw_length(self):
        rng = RngStream(1, "map")
        sid_map = RSSPolicy(8).sid_map(rng)
        assert len(sid_map) == 32

    def test_describe_mentions_m(self):
        assert "M=8" in FSSPolicy(8).describe()
        assert "skewed" in RSSPolicy(8).describe()
