"""Tests for the RCoal_Score metric (Equation 7)."""

import math

import pytest

from repro.core.score import rcoal_score, security_strength
from repro.errors import ConfigurationError


class TestSecurityStrength:
    def test_inverse_square(self):
        assert security_strength(0.5) == pytest.approx(4.0)
        assert security_strength(0.1) == pytest.approx(100.0)

    def test_sign_independent(self):
        assert security_strength(-0.5) == security_strength(0.5)

    def test_zero_correlation_is_infinite_security(self):
        assert math.isinf(security_strength(0.0))

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            security_strength(1.5)


class TestRcoalScore:
    def test_security_oriented_weights(self):
        # S = 16, time = 2: score = 16 / 2 = 8.
        assert rcoal_score(0.25, 2.0, a=1, b=1) == pytest.approx(8.0)

    def test_performance_oriented_weights_penalize_time(self):
        fast = rcoal_score(0.25, 1.5, a=1, b=20)
        slow = rcoal_score(0.25, 2.0, a=1, b=20)
        assert fast > slow
        # b=20 punishes the 33% slowdown by (2/1.5)^20 ~ 316x.
        assert fast / slow == pytest.approx((2.0 / 1.5) ** 20)

    def test_security_exponent(self):
        assert rcoal_score(0.1, 1.0, a=2, b=0) == pytest.approx(100.0 ** 2)

    def test_zero_correlation_scores_infinite(self):
        assert math.isinf(rcoal_score(0.0, 2.0))

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ConfigurationError):
            rcoal_score(0.5, 0.0)


class TestPaperTradeoff:
    """The qualitative conclusion of Fig 17 follows from the metric."""

    def test_better_security_wins_at_b1(self):
        # FSS+RTS at M=16: lower corr, higher time than RSS+RTS.
        fss_rts = rcoal_score(0.03, 2.06, a=1, b=1)
        rss_rts = rcoal_score(0.05, 2.02, a=1, b=1)
        assert fss_rts > rss_rts

    def test_better_performance_wins_at_b20(self):
        fss_rts = rcoal_score(0.09, 1.95, a=1, b=20)
        rss_rts = rcoal_score(0.11, 1.82, a=1, b=20)
        assert rss_rts > fss_rts
