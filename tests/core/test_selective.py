"""Tests for selective RCoal (Section VII future work)."""

import pytest

from repro.aes.key_schedule import NUM_ROUNDS
from repro.core.policies import FSSPolicy, RSSPolicy, make_policy
from repro.core.selective import SelectivePartition, SelectiveRCoalPolicy
from repro.errors import ConfigurationError
from repro.gpu.engine import RoundAwareSidMap
from repro.rng import RngStream


class TestPolicy:
    def test_wraps_base_parameters(self):
        policy = SelectiveRCoalPolicy(FSSPolicy(8))
        assert policy.num_subwarps == 8
        assert policy.name == "selective_fss"
        assert not policy.is_randomized

    def test_randomization_follows_base(self):
        assert SelectiveRCoalPolicy(RSSPolicy(4)).is_randomized

    def test_default_protects_last_round_only(self):
        policy = SelectiveRCoalPolicy(FSSPolicy(4))
        assert policy.protected_rounds == frozenset({NUM_ROUNDS})

    def test_rejects_empty_or_invalid_rounds(self):
        with pytest.raises(ConfigurationError):
            SelectiveRCoalPolicy(FSSPolicy(4), protected_rounds=())
        with pytest.raises(ConfigurationError):
            SelectiveRCoalPolicy(FSSPolicy(4), protected_rounds=(0,))
        with pytest.raises(ConfigurationError):
            SelectiveRCoalPolicy(FSSPolicy(4), protected_rounds=(11,))

    def test_describe_lists_rounds(self):
        policy = SelectiveRCoalPolicy(FSSPolicy(4),
                                      protected_rounds=(9, 10))
        assert "rounds=9,10" in policy.describe()


class TestPartition:
    def test_round_resolution(self):
        policy = SelectiveRCoalPolicy(FSSPolicy(4))
        partition = policy.draw()
        assert isinstance(partition, SelectivePartition)
        # Last round: the protected (4-subwarp) mapping.
        last = partition.assignment_for_round(NUM_ROUNDS)
        assert len(set(last)) == 4
        # Any other round, and outside rounds: the baseline mapping.
        assert set(partition.assignment_for_round(3)) == {0}
        assert set(partition.assignment_for_round(None)) == {0}

    def test_engine_map_is_round_aware(self):
        policy = SelectiveRCoalPolicy(FSSPolicy(4))
        sid_map = policy.draw().assignment
        assert isinstance(sid_map, RoundAwareSidMap)
        assert len(sid_map) == 32
        assert sid_map.for_round(NUM_ROUNDS) \
            != sid_map.for_round(NUM_ROUNDS - 1)

    def test_randomized_base_draws_differ(self):
        policy = SelectiveRCoalPolicy(RSSPolicy(4, rts=True))
        rng = RngStream(3, "sel")
        a = policy.draw(rng)
        b = policy.draw(rng)
        assert a.protected.assignment != b.protected.assignment


class TestEndToEnd:
    def test_selective_is_cheaper_with_same_last_round_counts(self,
                                                              test_key):
        """The design goal: same last-round behaviour, less total cost."""
        from repro.workloads.plaintext import random_plaintexts
        from repro.workloads.server import EncryptionServer

        plaintext = random_plaintexts(1, 32, RngStream(4, "pt"))[0]

        full = EncryptionServer(test_key, FSSPolicy(8))
        selective = EncryptionServer(
            test_key, SelectiveRCoalPolicy(FSSPolicy(8))
        )
        full_record = full.encrypt(plaintext)
        selective_record = selective.encrypt(plaintext)

        # Identical (deterministic FSS) last-round coalescing...
        assert selective_record.last_round_accesses \
            == full_record.last_round_accesses
        assert selective_record.last_round_byte_accesses \
            == full_record.last_round_byte_accesses
        # ...at a fraction of the cost elsewhere.
        assert selective_record.total_accesses \
            < full_record.total_accesses
        assert selective_record.total_time < full_record.total_time

    def test_counts_only_matches_full_sim_for_selective(self, test_key):
        from repro.workloads.plaintext import random_plaintexts
        from repro.workloads.server import EncryptionServer

        plaintext = random_plaintexts(1, 32, RngStream(4, "pt"))[0]
        kwargs = dict(rng=RngStream(6, "v"))
        full = EncryptionServer(
            test_key, SelectiveRCoalPolicy(RSSPolicy(4, rts=True)),
            **kwargs)
        fast = EncryptionServer(
            test_key, SelectiveRCoalPolicy(RSSPolicy(4, rts=True)),
            counts_only=True, rng=RngStream(6, "v"))
        a = full.encrypt(plaintext)
        b = fast.encrypt(plaintext)
        assert a.total_accesses == b.total_accesses
        assert a.last_round_byte_accesses == b.last_round_byte_accesses
