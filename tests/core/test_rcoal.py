"""Tests for the RCoalGPU integration layer."""

import pytest

from repro.aes.ttable import TTableAES
from repro.core.policies import FSSPolicy, RSSPolicy, make_policy
from repro.core.rcoal import RCoalGPU
from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.gpu.warp import build_warp_programs
from repro.rng import RngStream


def programs_for(gpu, num_lines=32):
    aes = TTableAES(bytes(16))
    traces = [aes.encrypt(bytes([i]) * 16) for i in range(num_lines)]
    return build_warp_programs(traces, gpu.address_map)


class TestLaunch:
    def test_baseline_launch(self):
        gpu = RCoalGPU(make_policy("baseline"))
        outcome = gpu.launch(programs_for(gpu))
        assert outcome.result.total_cycles > 0
        assert outcome.partitions[0].sizes == (32,)

    def test_partitions_drawn_per_warp(self):
        gpu = RCoalGPU(RSSPolicy(4))
        rng = RngStream(4, "victim")
        outcome = gpu.launch(programs_for(gpu, num_lines=96), rng)
        assert set(outcome.partitions) == {0, 1, 2}
        sizes = {outcome.partitions[w].sizes for w in range(3)}
        assert len(sizes) >= 2  # independent draws (w.h.p.)

    def test_fss_partitions_are_identical_across_warps(self):
        gpu = RCoalGPU(FSSPolicy(8))
        outcome = gpu.launch(programs_for(gpu, num_lines=64))
        assert outcome.partitions[0] == outcome.partitions[1]

    def test_policy_changes_access_count(self):
        baseline = RCoalGPU(make_policy("baseline"))
        nocoal = RCoalGPU(make_policy("nocoal"))
        base_result = baseline.launch(programs_for(baseline)).result
        nocoal_result = nocoal.launch(programs_for(nocoal)).result
        assert nocoal_result.total_accesses > base_result.total_accesses

    def test_warp_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            RCoalGPU(FSSPolicy(2, warp_size=16))

    def test_config_passthrough(self):
        config = GPUConfig(num_sms=4)
        gpu = RCoalGPU(make_policy("baseline"), config)
        assert gpu.config.num_sms == 4
