"""Tests for FSS/RSS subwarp sizing distributions."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sizing import fixed_sizes, normal_sizes, skewed_sizes
from repro.errors import ConfigurationError
from repro.rng import RngStream


class TestFixedSizes:
    @pytest.mark.parametrize("m", [1, 2, 4, 8, 16, 32])
    def test_paper_configurations_are_equal_splits(self, m):
        sizes = fixed_sizes(32, m)
        assert len(sizes) == m
        assert sum(sizes) == 32
        assert all(size == 32 // m for size in sizes)

    def test_non_dividing_split_distributes_remainder(self):
        sizes = fixed_sizes(32, 5)
        assert sum(sizes) == 32
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            fixed_sizes(0, 1)
        with pytest.raises(ConfigurationError):
            fixed_sizes(32, 0)
        with pytest.raises(ConfigurationError):
            fixed_sizes(32, 33)


class TestSkewedSizes:
    @given(st.integers(min_value=1, max_value=32))
    @settings(max_examples=30)
    def test_always_a_valid_composition(self, m, ):
        rng = RngStream(99, f"sk-{m}")
        for _ in range(10):
            sizes = skewed_sizes(32, m, rng)
            assert len(sizes) == m
            assert sum(sizes) == 32
            assert all(size >= 1 for size in sizes)

    def test_single_subwarp_is_whole_warp(self, rng):
        assert skewed_sizes(32, 1, rng) == (32,)

    def test_all_threads_split_is_all_ones(self, rng):
        assert skewed_sizes(32, 32, rng) == (1,) * 32

    def test_uniform_over_compositions_small_case(self):
        """N=5, M=2 has 4 compositions; all must be ~equally likely."""
        rng = RngStream(7, "uniformity")
        counts = Counter(skewed_sizes(5, 2, rng) for _ in range(8000))
        assert set(counts) == {(1, 4), (2, 3), (3, 2), (4, 1)}
        for count in counts.values():
            assert abs(count - 2000) < 200  # ~4.5 sigma

    def test_marginal_is_right_skewed(self):
        """For M=4 the size-1 bucket outweighs the mean-size bucket tail."""
        rng = RngStream(7, "skew")
        sizes = Counter()
        for _ in range(2000):
            sizes.update(skewed_sizes(32, 4, rng))
        assert sizes[1] > sizes[12]
        assert max(sizes) > 16  # occasionally one very large subwarp


class TestNormalSizes:
    def test_valid_partition(self, rng):
        for _ in range(50):
            sizes = normal_sizes(32, 4, rng)
            assert len(sizes) == 4
            assert sum(sizes) == 32
            assert all(size >= 1 for size in sizes)

    def test_concentrates_near_mean(self):
        rng = RngStream(7, "normal")
        sizes = Counter()
        for _ in range(1000):
            sizes.update(normal_sizes(32, 4, rng))
        # Fig 9: the normal variant clusters tightly around 32/4 = 8.
        near_mean = sum(sizes[s] for s in (7, 8, 9))
        assert near_mean / sum(sizes.values()) > 0.5

    def test_single_subwarp(self, rng):
        assert normal_sizes(32, 1, rng) == (32,)
