"""Tests for the victim encryption server."""

import pytest

from repro.aes.key_schedule import NUM_ROUNDS, last_round_key
from repro.aes.modes import encrypt_lines
from repro.core.policies import RSSPolicy, make_policy
from repro.errors import ConfigurationError
from repro.rng import RngStream
from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionServer


@pytest.fixture
def plaintexts():
    return random_plaintexts(3, 32, RngStream(5, "pt"))


class TestEncryption:
    def test_ciphertext_is_real_aes(self, test_key, plaintexts):
        server = EncryptionServer(test_key, make_policy("baseline"))
        record = server.encrypt(plaintexts[0])
        assert record.ciphertext == encrypt_lines(plaintexts[0], test_key)
        assert len(record.ciphertext_lines) == 32

    def test_exposes_last_round_key(self, test_key):
        server = EncryptionServer(test_key, make_policy("baseline"))
        assert server.last_round_key == last_round_key(test_key)

    def test_record_fields_populated(self, test_key, plaintexts):
        server = EncryptionServer(test_key, make_policy("baseline"))
        record = server.encrypt(plaintexts[0])
        assert record.total_time > 0
        assert record.last_round_time > 0
        assert record.total_accesses > 0
        assert record.last_round_accesses > 0
        assert len(record.round_accesses) == NUM_ROUNDS
        assert len(record.last_round_byte_accesses) == 16
        assert sum(record.last_round_byte_accesses) \
            == record.last_round_accesses

    def test_randomized_policy_requires_rng(self, test_key):
        with pytest.raises(ConfigurationError):
            EncryptionServer(test_key, RSSPolicy(4))

    def test_batch_preserves_order(self, test_key, plaintexts):
        server = EncryptionServer(test_key, make_policy("baseline"))
        records = server.encrypt_batch(plaintexts)
        for record, plaintext in zip(records, plaintexts):
            assert record.ciphertext == encrypt_lines(plaintext, test_key)


class TestCountsOnlyMode:
    def test_counts_match_full_simulation(self, test_key, plaintexts):
        """Counts-only must be bit-identical to the timing simulation for
        every count, given the same victim stream state."""
        for policy_name in ("baseline", "fss", "rss_rts"):
            full = EncryptionServer(
                test_key, make_policy(policy_name, 4),
                rng=RngStream(9, f"v-{policy_name}"),
            )
            fast = EncryptionServer(
                test_key, make_policy(policy_name, 4),
                rng=RngStream(9, f"v-{policy_name}"),
                counts_only=True,
            )
            for plaintext in plaintexts:
                a = full.encrypt(plaintext)
                b = fast.encrypt(plaintext)
                assert a.total_accesses == b.total_accesses
                assert a.last_round_accesses == b.last_round_accesses
                assert a.round_accesses == b.round_accesses
                assert a.last_round_byte_accesses \
                    == b.last_round_byte_accesses

    def test_counts_only_skips_timing(self, test_key, plaintexts):
        server = EncryptionServer(test_key, make_policy("baseline"),
                                  counts_only=True)
        record = server.encrypt(plaintexts[0])
        assert record.total_time == 0
        assert record.last_round_time == 0
        assert record.total_accesses > 0


class TestPolicyVisibility:
    def test_partitions_recorded_per_warp(self, test_key):
        plaintext = random_plaintexts(1, 96, RngStream(5, "pt96"))[0]
        server = EncryptionServer(test_key, RSSPolicy(4),
                                  rng=RngStream(10, "victim"))
        record = server.encrypt(plaintext)
        assert set(record.partitions) == {0, 1, 2}

    def test_rss_draws_change_between_launches(self, test_key, plaintexts):
        server = EncryptionServer(test_key, RSSPolicy(4),
                                  rng=RngStream(10, "victim"))
        first = server.encrypt(plaintexts[0])
        second = server.encrypt(plaintexts[0])
        assert first.partitions[0].sizes != second.partitions[0].sizes \
            or first.partitions[0].assignment \
            != second.partitions[0].assignment
