"""Tests for plaintext generation."""

import pytest

from repro.errors import ConfigurationError
from repro.rng import RngStream
from repro.workloads.plaintext import random_plaintexts


class TestRandomPlaintexts:
    def test_shape(self, rng):
        samples = random_plaintexts(5, 32, rng)
        assert len(samples) == 5
        assert all(len(s) == 32 * 16 for s in samples)

    def test_deterministic_per_stream(self):
        a = random_plaintexts(3, 4, RngStream(2, "pt"))
        b = random_plaintexts(3, 4, RngStream(2, "pt"))
        assert a == b

    def test_samples_differ(self, rng):
        samples = random_plaintexts(4, 32, rng)
        assert len(set(samples)) == 4

    def test_rejects_bad_counts(self, rng):
        with pytest.raises(ConfigurationError):
            random_plaintexts(0, 32, rng)
        with pytest.raises(ConfigurationError):
            random_plaintexts(1, 0, rng)

    def test_bytes_look_uniform(self):
        """Crude uniformity check: all byte values appear."""
        sample = random_plaintexts(1, 1024, RngStream(3, "u"))[0]
        assert len(set(sample)) == 256
