"""Tests for the synthetic workload generators."""

import pytest

from repro.core.policies import make_policy
from repro.core.rcoal import RCoalGPU
from repro.errors import ConfigurationError
from repro.gpu.warp import MemoryInstruction
from repro.rng import RngStream
from repro.workloads.synthetic import (
    HotspotPattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    SyntheticKernel,
)


def accesses_under(pattern, policy_name, m, seed=3):
    policy = make_policy(policy_name, m)
    gpu = RCoalGPU(policy)
    programs = SyntheticKernel(pattern, num_rounds=2).build(
        RngStream(seed, "build"))
    rng = (RngStream(seed, "victim") if policy.is_randomized else None)
    return gpu.launch(programs, rng).result


class TestPatterns:
    def test_sequential_coalesces_to_minimum(self):
        result = accesses_under(SequentialPattern(stride=4), "baseline", 1)
        # 32 threads x 4 bytes = 2 blocks per load; 32 loads.
        assert result.table_accesses == 2 * 32

    def test_strided_is_already_worst_case(self):
        base = accesses_under(StridedPattern(), "baseline", 1)
        split = accesses_under(StridedPattern(), "nocoal", 32)
        assert base.table_accesses == split.table_accesses == 32 * 32

    def test_random_pattern_in_aes_regime(self):
        result = accesses_under(RandomPattern(16), "baseline", 1)
        per_load = result.table_accesses / 32
        assert 12 < per_load < 16  # occupancy mean ~13.9

    def test_hotspot_between_sequential_and_random(self):
        hot = accesses_under(HotspotPattern(), "baseline", 1)
        rand = accesses_under(RandomPattern(16), "baseline", 1)
        seq = accesses_under(SequentialPattern(), "baseline", 1)
        assert seq.table_accesses < hot.table_accesses
        assert hot.table_accesses < rand.table_accesses

    def test_subwarping_cost_ordering(self):
        """Sequential suffers multiplicatively; strided not at all."""
        # Sequential: 2 blocks/load merged across the warp; FSS-8 puts
        # each 4-thread subwarp inside one block -> 8 accesses/load.
        seq_base = accesses_under(SequentialPattern(), "baseline", 1)
        seq_split = accesses_under(SequentialPattern(), "fss", 8)
        assert seq_base.table_accesses == 2 * 32
        assert seq_split.table_accesses == 8 * 32

        strided_base = accesses_under(StridedPattern(), "baseline", 1)
        strided_split = accesses_under(StridedPattern(), "fss", 8)
        assert strided_split.table_accesses == strided_base.table_accesses

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SequentialPattern(stride=0)
        with pytest.raises(ConfigurationError):
            StridedPattern(stride=4)
        with pytest.raises(ConfigurationError):
            RandomPattern(0)
        with pytest.raises(ConfigurationError):
            HotspotPattern(hot_fraction=1.5)

    def test_random_pattern_requires_rng(self):
        with pytest.raises(ConfigurationError):
            RandomPattern(16).addresses(32, 0, None)


class TestSyntheticKernel:
    def test_program_shape(self):
        kernel = SyntheticKernel(SequentialPattern(), num_warps=3,
                                 loads_per_round=4, num_rounds=5)
        programs = kernel.build()
        assert len(programs) == 3
        loads = [i for i in programs[0].instructions
                 if isinstance(i, MemoryInstruction)]
        assert len(loads) == 4 * 5
        assert {i.round_index for i in loads} == {1, 2, 3, 4, 5}

    def test_deterministic_given_stream(self):
        kernel = SyntheticKernel(RandomPattern(16))
        a = kernel.build(RngStream(4, "s"))
        b = kernel.build(RngStream(4, "s"))
        first_a = next(i for i in a[0].instructions
                       if isinstance(i, MemoryInstruction))
        first_b = next(i for i in b[0].instructions
                       if isinstance(i, MemoryInstruction))
        assert first_a.addresses == first_b.addresses

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            SyntheticKernel(SequentialPattern(), num_warps=0)
