"""Tests for the observability subsystem."""
