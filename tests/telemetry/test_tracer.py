"""Ring-buffer eviction and Chrome trace_event export schema."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import PID_DRAM, Tracer


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)

    def test_eviction_keeps_newest(self):
        tracer = Tracer(capacity=4)
        for i in range(6):
            tracer.instant(f"e{i}", "test", ts=i)
        assert len(tracer) == 4
        assert tracer.recorded == 6
        assert tracer.dropped == 2
        names = [event.name for event in tracer.events]
        assert names == ["e2", "e3", "e4", "e5"]

    def test_categories(self):
        tracer = Tracer()
        tracer.instant("a", "dram", ts=0)
        tracer.complete("b", "warp", ts=0, dur=5)
        assert tracer.categories() == {"dram", "warp"}

    def test_time_base_advances(self):
        tracer = Tracer()
        assert tracer.time_base == 0
        tracer.advance_time_base(500, gap=100)
        assert tracer.time_base == 600


class TestChromeExport:
    def _sample_tracer(self) -> Tracer:
        tracer = Tracer()
        tracer.complete("column_hit", "dram", ts=10, dur=4,
                        pid=PID_DRAM, tid=3, args={"bank": 1})
        tracer.instant("warp_finish", "warp", ts=42, tid=7)
        return tracer

    def test_chrome_trace_schema(self):
        trace = self._sample_tracer().chrome_trace()
        assert set(trace) >= {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        # Metadata names the three simulated processes.
        metadata = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metadata} \
            == {"sm", "interconnect", "dram"}
        payload = [e for e in events if e["ph"] != "M"]
        for event in payload:
            assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
        complete = next(e for e in payload if e["ph"] == "X")
        assert complete["dur"] == 4
        assert complete["args"] == {"bank": 1}
        instant = next(e for e in payload if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_chrome_trace_is_json_serializable(self, tmp_path):
        tracer = self._sample_tracer()
        path = tracer.write_chrome_trace(str(tmp_path / "trace.json"))
        loaded = json.loads(open(path, encoding="utf-8").read())
        assert loaded["otherData"]["recorded"] == 2
        assert len(loaded["traceEvents"]) == 5  # 3 metadata + 2 events

    def test_jsonl_one_object_per_line(self, tmp_path):
        tracer = self._sample_tracer()
        path = tracer.write_jsonl(str(tmp_path / "trace.jsonl"))
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "column_hit"
        assert parsed[1]["cat"] == "warp"
