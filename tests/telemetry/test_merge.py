"""Telemetry merge semantics: folded worker registries equal serial.

The parallel experiment runner gives each worker process a private
``Telemetry`` and folds the chunks back in sample order; these tests pin
the algebra that makes the fold equal one serial instrumented run —
counters add, gauges keep the last value and the max peak, histograms add
bucket-wise, traces concatenate on a stitched time base.
"""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import MetricsRegistry, Telemetry, Tracer


def _split_merge(values, split):
    """Record ``values`` serially and as two merged chunks; return both."""
    serial = MetricsRegistry()
    first, second = MetricsRegistry(), MetricsRegistry()
    for registry, chunk in ((first, values[:split]),
                            (second, values[split:])):
        for value in chunk:
            for target in (serial, registry):
                target.counter("events").inc(value)
                target.gauge("queue").set(value)
                target.histogram("latency", buckets=(2, 4, 8)).observe(value)
    return serial, first.merge(second)


class TestMetricsMerge:
    VALUES = [3, 9, 1, 5, 2, 7]

    @pytest.mark.parametrize("split", [0, 2, 3, 6])
    def test_merge_equals_serial_at_any_split(self, split):
        serial, merged = _split_merge(self.VALUES, split)
        assert merged.snapshot() == serial.snapshot()

    def test_counter_sums(self):
        serial, merged = _split_merge(self.VALUES, 3)
        assert merged.counter("events").value == sum(self.VALUES)

    def test_gauge_keeps_chunk_order_value_and_global_peak(self):
        serial, merged = _split_merge(self.VALUES, 3)
        gauge = merged.gauge("queue")
        assert gauge.value == self.VALUES[-1]
        assert gauge.peak == max(self.VALUES)

    def test_histogram_adds_bucketwise_and_combines_extremes(self):
        serial, merged = _split_merge(self.VALUES, 3)
        hist = merged.histogram("latency", buckets=(2, 4, 8))
        assert hist.count == len(self.VALUES)
        assert hist.min == min(self.VALUES)
        assert hist.max == max(self.VALUES)
        assert hist.sum == sum(self.VALUES)

    def test_missing_instruments_are_adopted(self):
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        theirs.counter("only.theirs").inc(4)
        theirs.histogram("h", buckets=(1, 2)).observe(1)
        mine.merge(theirs)
        assert mine.counter("only.theirs").value == 4
        assert mine.histogram("h", buckets=(1, 2)).count == 1
        # Adopted, not aliased: further increments stay independent.
        theirs.counter("only.theirs").inc()
        assert mine.counter("only.theirs").value == 4

    def test_type_mismatch_raises(self):
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        mine.counter("x")
        theirs.gauge("x")
        with pytest.raises(ConfigurationError):
            mine.merge(theirs)

    def test_histogram_bucket_mismatch_raises(self):
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        mine.histogram("h", buckets=(1, 2))
        theirs.histogram("h", buckets=(1, 4))
        with pytest.raises(ConfigurationError):
            mine.merge(theirs)


class TestTracerMerge:
    def test_merge_rebases_onto_local_time_base(self):
        mine, theirs = Tracer(), Tracer()
        mine.complete("k0", "sim", 0, 10, pid=1, tid=0)
        mine.advance_time_base(10, gap=0)
        theirs.complete("k1", "sim", 0, 5, pid=1, tid=0)
        theirs.advance_time_base(5, gap=0)
        mine.merge(theirs)
        events = list(mine.events)
        assert [e.name for e in events] == ["k0", "k1"]
        # k1 started at local ts 0 in the worker; merged it sits after k0.
        assert events[1].ts == 10
        assert mine.time_base == 15

    def test_merge_accumulates_drop_counts(self):
        mine = Tracer(capacity=4)
        theirs = Tracer(capacity=2)
        for i in range(4):
            theirs.instant(f"e{i}", "sim", i, pid=1, tid=0)
        assert theirs.dropped == 2
        mine.merge(theirs)
        assert mine.dropped == 2

    def test_chain_of_merges_matches_serial_recording(self):
        serial = Tracer()
        chunks = []
        for chunk_index in range(3):
            worker = Tracer()
            for i in range(2):
                ts = chunk_index * 2 + i
                serial.instant(f"s{ts}", "sim", serial.time_base + i,
                               pid=1, tid=0)
                worker.instant(f"s{ts}", "sim", i, pid=1, tid=0)
            serial.advance_time_base(2)
            worker.advance_time_base(2)
            chunks.append(worker)
        merged = Tracer()
        for worker in chunks:
            merged.merge(worker)
        assert [(e.name, e.ts) for e in merged.events] \
            == [(e.name, e.ts) for e in serial.events]
        assert merged.time_base == serial.time_base


class TestTelemetryMerge:
    def test_merge_combines_metrics_and_trace(self):
        mine, theirs = Telemetry(), Telemetry()
        mine.metrics.counter("sim.kernels").inc()
        theirs.metrics.counter("sim.kernels").inc(2)
        theirs.tracer.instant("x", "sim", 1, pid=1, tid=0)
        mine.merge(theirs)
        assert mine.metrics.counter("sim.kernels").value == 3
        assert len(mine.tracer) == 1

    def test_merging_none_or_disabled_is_a_noop(self):
        mine = Telemetry()
        mine.metrics.counter("c").inc()
        mine.merge(None)
        mine.merge(Telemetry.disabled())
        assert mine.metrics.counter("c").value == 1

    def test_disabled_sink_rejects_merge(self):
        with pytest.raises(ConfigurationError):
            Telemetry.disabled().merge(Telemetry())
