"""Counter / gauge / histogram semantics and registry behaviour."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_cannot_decrease(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)

    def test_to_dict(self):
        counter = Counter("c")
        counter.inc(3)
        assert counter.to_dict() == {"type": "counter", "value": 3}


class TestGauge:
    def test_tracks_value_and_peak(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(9)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.peak == 9

    def test_add_is_relative(self):
        gauge = Gauge("g")
        gauge.add(4)
        gauge.add(-3)
        assert gauge.value == 1
        assert gauge.peak == 4


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper_bounds(self):
        hist = Histogram("h", buckets=(1, 2, 4))
        for value in (1, 2, 2, 3, 4, 5):
            hist.observe(value)
        # value<=1 -> bin0, <=2 -> bin1, <=4 -> bin2, else overflow.
        assert hist.counts == [1, 2, 2, 1]
        assert hist.count == 6
        assert hist.min == 1 and hist.max == 5
        assert hist.mean == pytest.approx(17 / 6)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(4, 2))

    def test_percentile_from_buckets(self):
        hist = Histogram("h", buckets=(10, 20, 40))
        for value in (5, 5, 15, 35):
            hist.observe(value)
        assert hist.percentile(0.5) == 10
        assert hist.percentile(1.0) == 40
        with pytest.raises(ConfigurationError):
            hist.percentile(1.5)

    def test_empty_histogram_is_safe(self):
        hist = Histogram("h", buckets=(1,))
        assert hist.mean == 0.0
        assert hist.percentile(0.5) == 0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1
        assert "a" in registry

    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_snapshot_is_sorted_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.level").set(7)
        registry.histogram("c.dist", buckets=(1, 2)).observe(1)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a.level", "b.count", "c.dist"]
        assert snapshot["b.count"] == {"type": "counter", "value": 2}
        # JSON round-trips (no exotic objects inside).
        assert json.loads(registry.to_json()) == snapshot

    def test_render_table_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("dram.reads").inc(5)
        registry.gauge("queue").set(3)
        registry.histogram("lat", buckets=(8, 16)).observe(9)
        table = registry.render_table()
        for name in ("dram.reads", "queue", "lat"):
            assert name in table
        assert "peak" in table and "mean" in table

    def test_render_empty(self):
        assert "no metrics" in MetricsRegistry().render_table()
