"""Metrics-baseline regression gating (rcoal metrics --check)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import MetricsRegistry
from repro.telemetry.baseline import (
    check_against_baseline,
    compare_snapshots,
    load_baseline,
    update_baseline,
)

CONTEXT = {"experiment": "figX", "seed": 2018, "samples": 4,
           "repro_fast": None, "repro_samples": None}


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("sim.cycles").inc(7805)
    registry.gauge("dram.queue_depth").set(12)
    hist = registry.histogram("warp.round_cycles", buckets=(100, 1000))
    hist.observe(818)
    hist.observe(3.14159265358979)
    return registry.snapshot()


class TestCompareSnapshots:
    def test_identical_snapshots_have_no_drift(self):
        assert compare_snapshots(_snapshot(), _snapshot()) == []

    def test_value_drift_is_reported_with_path(self):
        expected, actual = _snapshot(), _snapshot()
        actual["sim.cycles"]["value"] += 1
        drifts = compare_snapshots(expected, actual)
        assert len(drifts) == 1
        assert drifts[0].startswith("sim.cycles.value:")

    def test_missing_and_new_metrics_are_both_drift(self):
        expected, actual = _snapshot(), _snapshot()
        del actual["dram.queue_depth"]
        actual["new.counter"] = {"type": "counter", "value": 1}
        drifts = compare_snapshots(expected, actual)
        assert any("missing" in d for d in drifts)
        assert any("unexpected new entry" in d for d in drifts)

    def test_relative_tolerance_absorbs_small_numeric_drift(self):
        expected, actual = _snapshot(), _snapshot()
        actual["sim.cycles"]["value"] = 7806  # ~0.01% off
        assert compare_snapshots(expected, actual) != []
        assert compare_snapshots(expected, actual, tolerance=0.01) == []

    def test_list_shape_mismatch_is_drift(self):
        expected, actual = _snapshot(), _snapshot()
        actual["warp.round_cycles"]["counts"] = [1, 1]
        drifts = compare_snapshots(expected, actual)
        assert any("length" in d for d in drifts)


class TestBaselineFile:
    def test_round_trip_passes_check(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        update_baseline(path, "figX", CONTEXT, _snapshot())
        assert check_against_baseline(path, "figX", CONTEXT,
                                      _snapshot()) == []

    def test_written_file_is_stable_json(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        update_baseline(path, "figX", CONTEXT, _snapshot())
        first = open(path).read()
        update_baseline(path, "figX", CONTEXT, _snapshot())
        assert open(path).read() == first
        data = json.loads(first)
        assert data["format"] == 1
        # Full-precision floats are normalized before writing, so checks
        # compare at the stored precision (no spurious drift).
        mean = data["experiments"]["figX"]["metrics"][
            "warp.round_cycles"]["mean"]
        assert mean == float(f"{mean:.10g}")

    def test_drift_is_detected(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        update_baseline(path, "figX", CONTEXT, _snapshot())
        drifted = _snapshot()
        drifted["sim.cycles"]["value"] = 1
        drifts = check_against_baseline(path, "figX", CONTEXT, drifted)
        assert any("sim.cycles.value" in d for d in drifts)

    def test_context_mismatch_is_drift(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        update_baseline(path, "figX", CONTEXT, _snapshot())
        other = dict(CONTEXT, seed=999)
        drifts = check_against_baseline(path, "figX", other, _snapshot())
        assert any(d.startswith("context.seed") for d in drifts)

    def test_unknown_experiment_is_rejected(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        update_baseline(path, "figX", CONTEXT, _snapshot())
        with pytest.raises(ConfigurationError):
            check_against_baseline(path, "figY", CONTEXT, _snapshot())

    def test_multiple_experiments_coexist(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        update_baseline(path, "figX", CONTEXT, _snapshot())
        update_baseline(path, "figY", dict(CONTEXT, experiment="figY"),
                        _snapshot())
        data = load_baseline(path)
        assert set(data["experiments"]) == {"figX", "figY"}

    def test_malformed_file_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99}')
        with pytest.raises(ConfigurationError):
            load_baseline(str(path))
