"""Logger namespacing / idempotent configuration, and progress reporting."""

import io
import logging

from repro.telemetry import ProgressReporter, configure_logging, get_logger
from repro.telemetry.log import LOGGER_ROOT


class TestLogging:
    def test_loggers_live_under_the_package_namespace(self):
        assert get_logger("gpu.engine").name == f"{LOGGER_ROOT}.gpu.engine"
        assert get_logger("repro.gpu.dram").name == "repro.gpu.dram"
        assert get_logger(LOGGER_ROOT).name == LOGGER_ROOT

    def test_configure_is_idempotent(self):
        root = logging.getLogger(LOGGER_ROOT)
        configure_logging(1)
        configure_logging(2)
        marked = [h for h in root.handlers
                  if getattr(h, "_repro_cli_handler", False)]
        assert len(marked) == 1  # no handler stacking on reconfigure
        assert root.level == logging.DEBUG
        root.removeHandler(marked[0])
        configure_logging(0)  # quiet again; re-attaches one at WARNING
        marked = [h for h in root.handlers
                  if getattr(h, "_repro_cli_handler", False)]
        assert len(marked) == 1
        assert root.level == logging.WARNING

    def test_verbosity_levels(self):
        stream = io.StringIO()
        root = configure_logging(1, stream=stream)
        try:
            get_logger("test.module").info("hello %d", 7)
            get_logger("test.module").debug("invisible")
        finally:
            handler = next(h for h in root.handlers
                           if getattr(h, "_repro_cli_handler", False))
            handler.set_stream(None)  # back to dynamic sys.stderr
            configure_logging(0)
        output = stream.getvalue()
        assert "hello 7" in output
        assert "repro.test.module" in output
        assert "invisible" not in output


class TestProgressReporter:
    def test_reports_counts_percent_and_eta(self):
        stream = io.StringIO()
        reporter = ProgressReporter(4, label="fss", stream=stream,
                                    min_interval=0.0)
        reporter.update()
        reporter.update()
        output = stream.getvalue()
        assert "fss" in output
        assert "2/4" in output and "(50%)" in output
        assert "eta" in output
        reporter.update(2)
        reporter.finish()
        assert "4/4" in stream.getvalue()
        assert stream.getvalue().endswith("\n")

    def test_disabled_reporter_writes_nothing(self):
        stream = io.StringIO()
        reporter = ProgressReporter(10, stream=stream, enabled=False)
        reporter.update()
        reporter.finish()
        assert stream.getvalue() == ""

    def test_zero_total_is_a_noop(self):
        stream = io.StringIO()
        reporter = ProgressReporter(0, stream=stream)
        reporter.update()
        reporter.finish()
        assert stream.getvalue() == ""
