"""The telemetry plumbing through the simulator stack."""

from repro.core.policies import make_policy
from repro.rng import RngStream
from repro.telemetry import Telemetry
from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionServer

SEED = 777


def _instrumented_server(telemetry, policy_name="baseline", subwarps=1):
    key = bytes(RngStream(SEED, "key").random_bytes(16))
    policy = make_policy(policy_name, subwarps)
    rng = (RngStream(SEED, "victim") if policy.is_randomized else None)
    return EncryptionServer(key, policy, rng=rng, telemetry=telemetry)


class TestInstrumentedRun:
    def test_all_pipeline_categories_present(self):
        telemetry = Telemetry()
        server = _instrumented_server(telemetry)
        plaintext = random_plaintexts(1, 32, RngStream(SEED, "pt"))[0]
        server.encrypt(plaintext)
        assert {"warp", "coalescer", "interconnect", "dram"} \
            <= telemetry.tracer.categories()

    def test_metrics_cover_the_issue_catalogue(self):
        telemetry = Telemetry()
        server = _instrumented_server(telemetry)
        plaintext = random_plaintexts(1, 32, RngStream(SEED, "pt"))[0]
        record = server.encrypt(plaintext)
        metrics = telemetry.metrics
        # Coalescer: every generated access is counted.
        assert metrics.counter("coalescer.accesses").value \
            == record.total_accesses
        # DRAM: hit/miss split matches the controller's own stats.
        dram = metrics.counter("dram.row_hits").value \
            + metrics.counter("dram.row_misses").value
        assert dram == metrics.counter("dram.reads").value \
            + metrics.counter("dram.writes").value
        assert "dram.queue_depth" in metrics
        assert "warp.round_cycles" in metrics
        assert metrics.counter("sim.kernels").value == 1

    def test_kernel_result_carries_metrics_snapshot(self):
        telemetry = Telemetry()
        server = _instrumented_server(telemetry)
        server.retain_kernel_results = True
        plaintext = random_plaintexts(1, 32, RngStream(SEED, "pt"))[0]
        record = server.encrypt(plaintext)
        assert record.kernel_result.metrics is not None
        assert record.kernel_result.metrics["sim.kernels"]["value"] == 1

    def test_uninstrumented_result_has_no_metrics(self):
        server = _instrumented_server(None)
        server.retain_kernel_results = True
        plaintext = random_plaintexts(1, 32, RngStream(SEED, "pt"))[0]
        record = server.encrypt(plaintext)
        assert record.kernel_result.metrics is None

    def test_kernels_lay_end_to_end_on_the_timeline(self):
        telemetry = Telemetry()
        server = _instrumented_server(telemetry)
        plaintexts = random_plaintexts(2, 32, RngStream(SEED, "pt"))
        server.encrypt(plaintexts[0])
        first_max_ts = max(e.ts for e in telemetry.tracer.events)
        base_after_first = telemetry.tracer.time_base
        assert base_after_first > first_max_ts
        server.encrypt(plaintexts[1])
        second_events = [e for e in telemetry.tracer.events
                         if e.ts >= base_after_first]
        assert second_events  # second kernel starts past the first

    def test_randomized_policy_is_instrumented_too(self):
        telemetry = Telemetry()
        server = _instrumented_server(telemetry, "rss_rts", 8)
        plaintext = random_plaintexts(1, 32, RngStream(SEED, "pt"))[0]
        server.encrypt(plaintext)
        # Subwarping shows up in the coalescer histogram.
        hist = telemetry.metrics.histogram(
            "coalescer.subwarps_per_instruction")
        assert hist.max > 1

    def test_disabled_null_object_records_nothing(self):
        disabled = Telemetry.disabled()
        assert disabled is Telemetry.disabled()  # shared singleton
        assert not disabled.enabled
        server = _instrumented_server(disabled)
        plaintext = random_plaintexts(1, 32, RngStream(SEED, "pt"))[0]
        server.encrypt(plaintext)
        assert len(disabled.metrics) == 0
        assert len(disabled.tracer) == 0
