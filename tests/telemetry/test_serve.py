"""The live telemetry HTTP sink: endpoints, streaming, and the dashboard.

End-to-end tests run a real (short) instrumented experiment on a worker
thread while polling a real :class:`TelemetryServer` over HTTP on an
ephemeral port — the same topology ``rcoal fig07 --serve 8000`` sets up —
and assert the JSON payloads grow monotonically as the run progresses.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentContext, collect_records
from repro.telemetry import ProgressBoard, Telemetry, TelemetryServer
from repro.telemetry.serve import MetricsHistory, parse_serve_spec
from repro.telemetry.tracer import Tracer


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        body = response.read().decode("utf-8")
        return response.status, response.headers.get("Content-Type"), body


class TestEventsSince:
    def test_incremental_drain(self):
        tracer = Tracer(capacity=100)
        for i in range(5):
            tracer.complete(f"e{i}", "cat", ts=i, dur=1)
        events, cursor, dropped = tracer.events_since(0)
        assert [e.name for e in events] == ["e0", "e1", "e2", "e3", "e4"]
        assert cursor == 5 and dropped == 0
        # Nothing new: cursor unchanged.
        events, cursor, dropped = tracer.events_since(cursor)
        assert events == [] and cursor == 5 and dropped == 0
        tracer.instant("e5", "cat", ts=9)
        events, cursor, dropped = tracer.events_since(cursor)
        assert [e.name for e in events] == ["e5"]
        assert cursor == 6 and dropped == 0

    def test_eviction_is_reported_as_dropped(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.complete(f"e{i}", "cat", ts=i, dur=1)
        events, cursor, dropped = tracer.events_since(0)
        assert [e.name for e in events] == ["e7", "e8", "e9"]
        assert cursor == 10
        assert dropped == 7

    def test_merge_resequences_monotonically(self):
        parent, worker = Tracer(100), Tracer(100)
        parent.complete("p0", "cat", ts=0, dur=1)
        worker.complete("w0", "cat", ts=0, dur=1)
        worker.complete("w1", "cat", ts=1, dur=1)
        parent.merge(worker)
        seqs = [e.seq for e in parent.events]
        assert seqs == sorted(seqs) == [1, 2, 3]
        events, cursor, _ = parent.events_since(1)
        assert [e.name for e in events] == ["w0", "w1"]
        assert cursor == 3


class TestParseServeSpec:
    def test_bare_port(self):
        assert parse_serve_spec("8000") == ("127.0.0.1", 8000)

    def test_host_and_port(self):
        assert parse_serve_spec("0.0.0.0:9100") == ("0.0.0.0", 9100)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_serve_spec("not-a-port")
        with pytest.raises(ConfigurationError):
            parse_serve_spec("70000")


class TestTelemetryServer:
    @pytest.fixture()
    def server(self):
        telemetry = Telemetry(board=ProgressBoard())
        with TelemetryServer(telemetry, port=0) as server:
            yield server

    def test_rejects_disabled_telemetry(self):
        with pytest.raises(ConfigurationError):
            TelemetryServer(Telemetry.disabled())

    def test_health_endpoint(self, server):
        status, ctype, body = _get(f"{server.url}/health")
        assert status == 200 and ctype.startswith("application/json")
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/nope")
        assert excinfo.value.code == 404

    def test_dashboard_is_served(self, server):
        status, ctype, body = _get(f"{server.url}/")
        assert status == 200 and ctype.startswith("text/html")
        for marker in ("/metrics", "/trace?since=", "/progress",
                       "rcoal live telemetry"):
            assert marker in body

    def test_metrics_json_is_stable(self, server):
        server.telemetry.metrics.counter("a.z").inc(3)
        server.telemetry.metrics.counter("a.a").inc(1)
        _, _, body = _get(f"{server.url}/metrics")
        payload = json.loads(body)
        assert payload["metrics"]["a.z"]["value"] == 3
        # Keys are sorted in the serialized body (deterministic output).
        assert body.index('"a.a"') < body.index('"a.z"')
        _, _, again = _get(f"{server.url}/metrics")
        assert again == body

    def test_trace_endpoint_drains_incrementally(self, server):
        tracer = server.telemetry.tracer
        for i in range(5):
            tracer.complete(f"e{i}", "cat", ts=i, dur=2, args={"i": i})
        _, _, body = _get(f"{server.url}/trace?since=0")
        payload = json.loads(body)
        assert [e["name"] for e in payload["events"]] \
            == ["e0", "e1", "e2", "e3", "e4"]
        assert payload["next_since"] == 5
        _, _, body = _get(f"{server.url}/trace?since={payload['next_since']}")
        assert json.loads(body)["events"] == []

    def test_trace_endpoint_honors_limit(self, server):
        tracer = server.telemetry.tracer
        for i in range(10):
            tracer.instant(f"e{i}", "cat", ts=i)
        _, _, body = _get(f"{server.url}/trace?since=0&limit=3")
        payload = json.loads(body)
        assert [e["name"] for e in payload["events"]] == ["e7", "e8", "e9"]
        assert payload["dropped"] == 7
        assert payload["next_since"] == 10

    def test_progress_reflects_board(self, server):
        server.telemetry.board.publish("phase-a", 3, 10, elapsed=1.5,
                                       eta=3.5)
        _, _, body = _get(f"{server.url}/progress")
        payload = json.loads(body)
        assert payload["phases"]["phase-a"]["done"] == 3
        assert payload["phases"]["phase-a"]["percent"] == 30.0
        assert payload["done"] == 3 and payload["total"] == 10


class TestServeDuringRun:
    """Poll a live server while a real experiment batch executes."""

    def test_endpoints_grow_monotonically_during_run(self):
        telemetry = Telemetry(board=ProgressBoard())
        ctx = ExperimentContext(root_seed=123, samples=6,
                                telemetry=telemetry)
        done = threading.Event()
        failures = []

        def run():
            try:
                collect_records(ctx, make_policy("baseline"), 6)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)
            finally:
                done.set()

        with TelemetryServer(telemetry, port=0) as server:
            worker = threading.Thread(target=run)
            worker.start()
            recorded, cursor = [], 0
            while not done.is_set():
                _, _, body = _get(f"{server.url}/metrics")
                recorded.append(json.loads(body)["trace_recorded"])
                _, _, body = _get(f"{server.url}/trace?since={cursor}")
                payload = json.loads(body)
                assert payload["next_since"] >= cursor
                cursor = payload["next_since"]
                done.wait(0.02)
            worker.join()
            assert not failures, failures

            # Monotone growth while recording, and a final state that
            # reflects the whole run.
            assert recorded == sorted(recorded)
            _, _, body = _get(f"{server.url}/metrics")
            final = json.loads(body)
            assert final["trace_recorded"] > 0
            assert final["metrics"]["sim.kernels"]["value"] == 6
            _, _, body = _get(f"{server.url}/progress")
            progress = json.loads(body)
            phase = progress["phases"]["baseline(M=1)"]
            assert phase["done"] == 6 and phase["state"] == "done"

    def test_parallel_run_fans_progress_into_board(self):
        telemetry = Telemetry(board=ProgressBoard())
        ctx = ExperimentContext(root_seed=123, samples=4,
                                telemetry=telemetry, jobs=2)
        collect_records(ctx, make_policy("baseline"), 4)
        snapshot = telemetry.board.snapshot()
        phase = snapshot["phases"]["baseline(M=1)"]
        assert phase["done"] == 4 and phase["total"] == 4
        assert phase["state"] == "done"


class TestMetricsHistory:
    """The time-series ring behind ``/metrics/history``."""

    def test_incremental_cursor(self):
        history = MetricsHistory(capacity=10)
        for i in range(3):
            history.append({"uptime_seconds": float(i)})
        out = history.since(0)
        assert [s["seq"] for s in out["samples"]] == [1, 2, 3]
        assert out["next_since"] == 3 and out["dropped"] == 0
        # Nothing new: cursor unchanged, no samples.
        again = history.since(out["next_since"])
        assert again["samples"] == [] and again["next_since"] == 3
        history.append({"uptime_seconds": 3.0})
        fresh = history.since(again["next_since"])
        assert [s["seq"] for s in fresh["samples"]] == [4]
        assert fresh["next_since"] == 4

    def test_eviction_is_reported_as_dropped(self):
        history = MetricsHistory(capacity=3)
        for i in range(10):
            history.append({"uptime_seconds": float(i)})
        out = history.since(0)
        assert [s["seq"] for s in out["samples"]] == [8, 9, 10]
        assert out["dropped"] == 7 and out["recorded"] == 10

    def test_limit_drops_oldest(self):
        history = MetricsHistory(capacity=10)
        for i in range(5):
            history.append({"uptime_seconds": float(i)})
        out = history.since(0, limit=2)
        assert [s["seq"] for s in out["samples"]] == [4, 5]
        assert out["dropped"] == 3 and out["next_since"] == 5

    def test_empty_ring_drops_nothing(self):
        out = MetricsHistory().since(0)
        assert out == {"samples": [], "next_since": 0, "dropped": 0,
                       "recorded": 0}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            MetricsHistory(capacity=0)


class TestHistoryEndpoint:
    def test_sample_history_drives_the_series(self):
        telemetry = Telemetry(board=ProgressBoard())
        with TelemetryServer(telemetry, port=0,
                             sample_interval=60.0) as server:
            ctx = ExperimentContext(root_seed=123, samples=1,
                                    telemetry=telemetry)
            collect_records(ctx, make_policy("baseline"), 1)
            seq = server.sample_history()
            _, _, body = _get(f"{server.url}/metrics/history?since=0")
            payload = json.loads(body)
            latest = payload["samples"][-1]
            assert latest["seq"] == seq == payload["next_since"]
            assert latest["sim_cycles"] > 0
            assert latest["accesses"] > 0
            assert latest["trace_events"] > 0
            # Incremental read from the cursor is empty until resampled.
            _, _, body = _get(
                f"{server.url}/metrics/history?since={seq}")
            assert json.loads(body)["samples"] == []
            server.sample_history()
            _, _, body = _get(
                f"{server.url}/metrics/history?since={seq}")
            assert len(json.loads(body)["samples"]) == 1

    def test_sampler_thread_records_on_start(self):
        telemetry = Telemetry(board=ProgressBoard())
        with TelemetryServer(telemetry, port=0) as server:
            # start() samples once before the first interval elapses.
            assert server.history.recorded >= 1


class TestProfileEndpoint:
    def test_unprofiled_run_reports_disabled_axis(self):
        telemetry = Telemetry(board=ProgressBoard())
        with TelemetryServer(telemetry, port=0) as server:
            _, _, body = _get(f"{server.url}/profile")
            payload = json.loads(body)
            assert payload["profiler_enabled"] is False
            assert payload["wall_spans"] == {}

    def test_profiled_run_exposes_both_axes(self):
        telemetry = Telemetry(board=ProgressBoard(), profile=True)
        with TelemetryServer(telemetry, port=0) as server:
            ctx = ExperimentContext(root_seed=123, samples=1,
                                    telemetry=telemetry)
            collect_records(ctx, make_policy("baseline"), 1)
            _, _, body = _get(f"{server.url}/profile")
            payload = json.loads(body)
            assert payload["profiler_enabled"] is True
            assert payload["wall_spans"]["serial.simulate"]["count"] == 1
            assert payload["sim_counters"]["coalescer.serialize"] > 0
            assert payload["sim_counters"]["dram.service"] > 0


class TestDashboardSparklines:
    def test_dashboard_polls_history(self):
        with TelemetryServer(Telemetry(board=ProgressBoard()),
                             port=0) as server:
            _, _, body = _get(f"{server.url}/")
            for marker in ("/metrics/history?since=", "spark-cycles",
                           "spark-accesses", "renderSparks"):
                assert marker in body


class TestBindFailures:
    def test_port_zero_binds_an_ephemeral_port(self):
        with TelemetryServer(Telemetry(board=ProgressBoard()),
                             port=0) as server:
            assert server.port != 0
            status, _, _ = _get(f"{server.url}/health")
            assert status == 200

    def test_port_in_use_is_one_actionable_error(self):
        with TelemetryServer(Telemetry(board=ProgressBoard()),
                             port=0) as server:
            with pytest.raises(ConfigurationError) as excinfo:
                TelemetryServer(Telemetry(board=ProgressBoard()),
                                port=server.port)
            message = str(excinfo.value)
            assert f"127.0.0.1:{server.port}" in message
            assert "port 0" in message  # the actionable part


class TestIncidentSurfacing:
    def test_incidents_flip_health_to_degraded(self):
        telemetry = Telemetry(board=ProgressBoard())
        with TelemetryServer(telemetry, port=0) as server:
            _, _, body = _get(f"{server.url}/health")
            assert json.loads(body)["status"] == "ok"
            telemetry.board.incident("quarantined")
            telemetry.board.incident("pool_restart", 2)
            _, _, body = _get(f"{server.url}/health")
            payload = json.loads(body)
            assert payload["status"] == "degraded"
            assert payload["incidents"] == {"quarantined": 1,
                                            "pool_restart": 2}
            _, _, body = _get(f"{server.url}/progress")
            assert json.loads(body)["incidents"]["quarantined"] == 1


class TestCampaignEndpoint:
    @staticmethod
    def _campaign(tmp_path):
        """A completed single-phase campaign directory."""
        from repro.experiments.checkpoint import (
            CheckpointStore,
            campaign_fingerprint,
        )
        ctx = ExperimentContext(root_seed=7, samples=4, lines=4)
        store = CheckpointStore.open(
            tmp_path / "camp", campaign_fingerprint("fig05", ctx, True))
        collect_records(ctx.with_(checkpoint=store),
                        make_policy("fss", 4, 32), 4, counts_only=True)
        return tmp_path / "camp"

    def test_without_campaign_dir_probe_is_unavailable(self):
        with TelemetryServer(Telemetry(board=ProgressBoard()),
                             port=0) as server:
            _, _, body = _get(f"{server.url}/campaign")
            payload = json.loads(body)
            assert payload["available"] is False
            assert "reason" in payload

    def test_manifest_and_ledger_cursor(self, tmp_path):
        run = self._campaign(tmp_path)
        with TelemetryServer(Telemetry(board=ProgressBoard()), port=0,
                             campaign_dir=str(run),
                             stall_after=1e9) as server:
            _, _, body = _get(f"{server.url}/campaign")
            payload = json.loads(body)
            assert payload["available"] is True
            manifest = payload["manifest"]
            assert manifest["status"] == "complete"
            assert manifest["totals"]["completed"] == 4
            assert manifest["totals"]["remaining"] == 0
            assert payload["events"]  # the ledger drain rides along
            cursor = payload["next_since"]
            _, _, body = _get(
                f"{server.url}/campaign?since={cursor}")
            assert json.loads(body)["events"] == []

    def test_health_folds_ledger_staleness(self, tmp_path):
        from repro.experiments.checkpoint import (
            CheckpointStore,
            campaign_fingerprint,
        )
        # An interrupted campaign: phase_start with no phase_finish.
        from repro.faults import install_plan, parse_fault_plan
        ctx = ExperimentContext(root_seed=7, samples=6, lines=4)
        store = CheckpointStore.open(
            tmp_path / "camp", campaign_fingerprint("fig05", ctx, True))
        with pytest.raises(Exception):
            collect_records(
                ctx.with_(checkpoint=store,
                          faults=parse_fault_plan("raise@4x*")),
                make_policy("fss", 4, 32), 6, counts_only=True)
        install_plan(None)
        with TelemetryServer(Telemetry(board=ProgressBoard()), port=0,
                             campaign_dir=str(tmp_path / "camp"),
                             stall_after=0.0) as server:
            _, _, body = _get(f"{server.url}/health")
            payload = json.loads(body)
            assert payload["status"] == "degraded"
            assert payload["campaign"]["stalled"] is True
            assert payload["stalled_phase"] \
                in payload["campaign"]["open_phases"]
        # A generous stall budget: same campaign reads healthy.
        with TelemetryServer(Telemetry(board=ProgressBoard()), port=0,
                             campaign_dir=str(tmp_path / "camp"),
                             stall_after=1e9) as server:
            _, _, body = _get(f"{server.url}/health")
            payload = json.loads(body)
            assert payload["status"] == "ok"
            assert payload["campaign"]["stalled"] is False

    def test_history_samples_carry_span_lanes(self):
        telemetry = Telemetry(board=ProgressBoard(), profile=True)
        with TelemetryServer(telemetry, port=0,
                             sample_interval=60.0) as server:
            ctx = ExperimentContext(root_seed=123, samples=1,
                                    telemetry=telemetry)
            collect_records(ctx, make_policy("baseline"), 1)
            server.sample_history()
            _, _, body = _get(f"{server.url}/metrics/history?since=0")
            latest = json.loads(body)["samples"][-1]
            assert "serial.simulate" in latest["spans"]
            assert latest["spans"]["serial.simulate"] > 0

    def test_dashboard_has_campaign_panel_and_lane_sparks(self):
        with TelemetryServer(Telemetry(board=ProgressBoard()),
                             port=0) as server:
            _, _, body = _get(f"{server.url}/")
            for marker in ("/campaign?limit=1", "renderCampaign",
                           "spark-sim", "spark-overhead",
                           "campaign-table"):
                assert marker in body
