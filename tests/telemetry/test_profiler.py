"""Wall-clock span profiler: recording, null object, merge determinism.

The profiler follows the telemetry null-object discipline — the disabled
singleton must be allocation-free and record nothing — and its merge must
produce a deterministic aggregate *shape* (names, counts) regardless of
wall-clock jitter, which is what lets ``rcoal profile`` print comparable
tables across runs.
"""

import pickle

from repro.telemetry import PID_WALL, SpanProfiler, Telemetry


class TestRecording:
    def test_span_records_count_total_and_peak(self):
        profiler = SpanProfiler()
        profiler.record("stage", 5_000_000)
        profiler.record("stage", 3_000_000)
        snap = profiler.snapshot()
        assert snap["stage"]["count"] == 2
        assert snap["stage"]["total_ms"] == 8.0
        assert snap["stage"]["mean_ms"] == 4.0
        assert snap["stage"]["max_ms"] == 5.0

    def test_span_context_manager_measures_wall_time(self):
        profiler = SpanProfiler()
        with profiler.span("work"):
            pass
        snap = profiler.snapshot()
        assert snap["work"]["count"] == 1
        assert snap["work"]["total_ms"] >= 0.0

    def test_span_records_even_when_the_body_raises(self):
        profiler = SpanProfiler()
        try:
            with profiler.span("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert profiler.snapshot()["failing"]["count"] == 1

    def test_snapshot_is_sorted_by_name(self):
        profiler = SpanProfiler()
        profiler.record("zeta", 1)
        profiler.record("alpha", 1)
        assert list(profiler.snapshot()) == ["alpha", "zeta"]


class TestNullObject:
    def test_disabled_is_a_shared_singleton(self):
        assert SpanProfiler.disabled() is SpanProfiler.disabled()
        assert not SpanProfiler.disabled().enabled

    def test_disabled_span_is_shared_and_records_nothing(self):
        disabled = SpanProfiler.disabled()
        first = disabled.span("a")
        second = disabled.span("b")
        assert first is second  # one no-op object, zero allocation
        with first:
            pass
        assert len(disabled) == 0
        assert disabled.snapshot() == {}

    def test_disabled_record_is_a_noop(self):
        disabled = SpanProfiler.disabled()
        disabled.record("x", 123)
        assert disabled.snapshot() == {}

    def test_telemetry_defaults_to_disabled_profiler(self):
        assert Telemetry().profiler.enabled is False
        assert Telemetry(profile=True).profiler.enabled is True
        # Disabled telemetry never profiles, whatever the flag says.
        assert Telemetry.disabled().profiler.enabled is False


class TestMerge:
    def _worker(self, names):
        worker = SpanProfiler()
        for name in names:
            worker.record(name, 1_000_000)
        return worker

    def test_merge_sums_counts_and_totals(self):
        parent = self._worker(["merge"])
        parent.merge(self._worker(["merge", "simulate"]))
        snap = parent.snapshot()
        assert snap["merge"]["count"] == 2
        assert snap["merge"]["total_ms"] == 2.0
        assert snap["simulate"]["count"] == 1

    def test_merge_takes_the_peak(self):
        parent = SpanProfiler()
        parent.record("s", 1_000_000)
        worker = SpanProfiler()
        worker.record("s", 9_000_000)
        parent.merge(worker)
        assert parent.snapshot()["s"]["max_ms"] == 9.0

    def test_merge_none_and_disabled_are_noops(self):
        parent = self._worker(["a"])
        parent.merge(None)
        parent.merge(SpanProfiler.disabled())
        parent.merge(parent)
        assert parent.snapshot()["a"]["count"] == 1

    def test_merge_shape_is_deterministic(self):
        """Same chunk structure -> same names/counts, run after run."""

        def simulate_run():
            parent = SpanProfiler()
            for chunk in range(3):
                parent.record("runner.submit", 10 + chunk)
                worker = SpanProfiler()
                worker.record("chunk.workload", 100 + chunk)
                worker.record("chunk.simulate", 200 + chunk)
                parent.merge(worker)
                parent.record("runner.merge", 5)
            return {name: data["count"]
                    for name, data in parent.snapshot().items()}

        first, second = simulate_run(), simulate_run()
        assert first == second == {
            "chunk.simulate": 3, "chunk.workload": 3,
            "runner.merge": 3, "runner.submit": 3,
        }

    def test_merged_profiler_survives_pickling(self):
        """Chunk profilers ride home inside pickled worker telemetry."""
        worker = Telemetry(profile=True)
        with worker.profiler.span("chunk.simulate"):
            pass
        parent = Telemetry(profile=True)
        parent.merge(pickle.loads(pickle.dumps(worker)))
        assert parent.profiler.snapshot()["chunk.simulate"]["count"] == 1


class TestChromeExport:
    def test_spans_export_on_the_wall_process(self):
        profiler = SpanProfiler()
        profiler.record("stage", 2_000_000, start_ns=profiler._origin_ns)
        worker = SpanProfiler()
        worker.record("chunk", 1_000_000, start_ns=worker._origin_ns)
        profiler.merge(worker)
        events = profiler.to_chrome_events()
        assert events[0]["ph"] == "M"  # process_name metadata first
        assert events[0]["args"] == {"name": "wall-clock"}
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {PID_WALL}
        # Parent lane 0, first merged worker lane 1.
        assert sorted(e["tid"] for e in spans) == [0, 1]
        assert all(e["dur"] >= 1 for e in spans)
