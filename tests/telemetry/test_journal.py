"""The persistent run ledger: append-only, crash-safe, cursor-readable.

The contract under test: an append is all-or-nothing for readers (a torn
tail is skipped, never propagated), seq numbers are the 1-based index of
*readable* lines (the ``/campaign`` cursor currency), and a journal
survives pickling minus its lock so contexts holding one stay shippable.
"""

import json
import pickle

import pytest

from repro.faults import TornWriteError, install_plan, parse_fault_plan
from repro.telemetry.journal import (
    JOURNAL_NAME,
    RunJournal,
    events_since,
    last_event,
    read_journal,
)


@pytest.fixture(autouse=True)
def clean_plan():
    install_plan(None)
    yield
    install_plan(None)


@pytest.fixture
def path(tmp_path):
    return tmp_path / JOURNAL_NAME


class TestAppendAndRead:
    def test_round_trip_preserves_fields_and_order(self, path):
        journal = RunJournal(path)
        journal.append("phase_start", phase="p", samples=10)
        journal.append("chunk_done", start=0, end=4, seconds=0.25)
        events = read_journal(path)
        assert [e["kind"] for e in events] == ["phase_start", "chunk_done"]
        assert events[0]["samples"] == 10
        assert events[1]["seconds"] == 0.25
        # Every event is stamped with writer identity and wall clock.
        assert all("pid" in e and "ts" in e for e in events)

    def test_seq_is_the_one_based_line_index(self, path):
        journal = RunJournal(path)
        for i in range(5):
            journal.append("tick", index=i)
        assert [e["seq"] for e in read_journal(path)] == [1, 2, 3, 4, 5]

    def test_missing_file_reads_as_empty(self, tmp_path):
        assert read_journal(tmp_path / "never-written.jsonl") == []
        assert last_event(tmp_path / "never-written.jsonl") is None

    def test_disabled_journal_writes_nothing(self, path):
        journal = RunJournal(path, enabled=False)
        journal.append("tick")
        assert not path.exists()
        assert RunJournal.disabled().enabled is False

    def test_two_journal_instances_interleave_safely(self, path):
        # Two writers (the model for parent + CheckpointStore holding
        # separate instances over one file) both land complete lines.
        a, b = RunJournal(path), RunJournal(path)
        a.append("from_a")
        b.append("from_b")
        a.append("from_a_again")
        assert [e["kind"] for e in read_journal(path)] == [
            "from_a", "from_b", "from_a_again"]

    def test_pickles_without_its_lock(self, path):
        journal = RunJournal(path)
        journal.append("before")
        clone = pickle.loads(pickle.dumps(journal))
        clone.append("after")
        assert [e["kind"] for e in read_journal(path)] == [
            "before", "after"]


class TestCrashSafety:
    def test_torn_tail_is_skipped_on_read(self, path):
        journal = RunJournal(path)
        journal.append("complete")
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "torn-no-newli')
        events = read_journal(path)
        assert [e["kind"] for e in events] == ["complete"]
        assert events[-1]["seq"] == 1  # the torn line consumed no seq

    def test_next_append_repairs_the_torn_tail(self, path):
        journal = RunJournal(path)
        journal.append("complete")
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "torn-no-newli')
        RunJournal(path).append("after_crash")
        assert [e["kind"] for e in read_journal(path)] == [
            "complete", "after_crash"]

    def test_garbage_lines_are_skipped_without_a_seq(self, path):
        journal = RunJournal(path)
        journal.append("first")
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'"a json string, not an object"\n')
        journal.append("second")
        events = read_journal(path)
        assert [(e["kind"], e["seq"]) for e in events] == [
            ("first", 1), ("second", 2)]

    def test_injected_torn_write_matches_the_crash_model(self, path):
        install_plan(parse_fault_plan(f"torn@{JOURNAL_NAME}"))
        journal = RunJournal(path)
        with pytest.raises(TornWriteError):
            journal.append("doomed", payload="x" * 64)
        # The fault left a half line with no newline; readers skip it.
        assert read_journal(path) == []
        assert path.read_bytes() != b""
        assert not path.read_bytes().endswith(b"\n")
        # The budget is spent: the next append repairs and succeeds.
        journal.append("recovered")
        assert [e["kind"] for e in read_journal(path)] == ["recovered"]


class TestCursors:
    def test_events_since_follows_the_trace_contract(self, path):
        journal = RunJournal(path)
        for i in range(4):
            journal.append("tick", index=i)
        first = events_since(path, since=0)
        assert [e["index"] for e in first["events"]] == [0, 1, 2, 3]
        assert first["next_since"] == 4 and first["recorded"] == 4
        # Nothing new: cursor unchanged.
        again = events_since(path, since=first["next_since"])
        assert again["events"] == []
        assert again["next_since"] == 4
        journal.append("tick", index=4)
        fresh = events_since(path, since=again["next_since"])
        assert [e["index"] for e in fresh["events"]] == [4]

    def test_limit_keeps_newest_and_reports_dropped(self, path):
        journal = RunJournal(path)
        for i in range(6):
            journal.append("tick", index=i)
        drained = events_since(path, since=0, limit=2)
        assert [e["index"] for e in drained["events"]] == [4, 5]
        assert drained["dropped"] == 4
        assert drained["next_since"] == 6

    def test_compaction_shrink_clamps_a_stale_cursor(self, path):
        journal = RunJournal(path)
        for i in range(5):
            journal.append("tick", index=i)
        # Simulate a compaction rewriting the file shorter: a client
        # holding since=5 must not wedge on an impossible cursor.
        path.write_text(json.dumps({"kind": "compacted"}) + "\n")
        stale = events_since(path, since=5)
        assert stale["events"] == []
        assert stale["next_since"] == 1  # clamped to what exists

    def test_last_event_reads_only_the_tail(self, path):
        journal = RunJournal(path)
        for i in range(10):
            journal.append("tick", index=i)
        journal.append("phase_finish", phase="p")
        assert last_event(path)["kind"] == "phase_finish"
        assert last_event(path, kinds={"tick"})["index"] == 9
        assert last_event(path, kinds={"never"}) is None
