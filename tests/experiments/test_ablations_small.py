"""Small-scale structural runs of the ablation experiments.

Full-scale runs with shape assertions live in ``benchmarks/``; these
confirm the harnesses produce well-formed results quickly.
"""

import pytest

from repro.experiments import (
    ablation_blocksize,
    ablation_inference,
    ablation_leakage,
    ablation_noise,
    ablation_rss_dist,
    ablation_selective,
)
from repro.experiments.base import ExperimentContext

SMALL = ExperimentContext(root_seed=77, samples=10)


@pytest.fixture(autouse=True)
def _small_mc(monkeypatch):
    """Scale the Monte-Carlo-driven ablations down for unit testing."""
    monkeypatch.setenv("REPRO_SAMPLES", "400")
    yield


class TestBlocksize:
    def test_monotone_in_r(self):
        result = ablation_blocksize.run(SMALL)
        metrics = result.metrics
        rs = sorted(metrics)
        series = [metrics[r]["rss_rts"] for r in rs]
        assert series == sorted(series)
        assert len(result.rows) == 3


class TestLeakage:
    def test_fss_leaks_most(self):
        result = ablation_leakage.run(SMALL, subwarp_sweep=(4,))
        metrics = result.metrics
        assert metrics["fss"][4] > metrics["fss_rts"][4]
        assert metrics["fss"][4] > metrics["rss_rts"][4]


class TestNoise:
    def test_monotone_attenuation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "30")
        result = ablation_noise.run(ExperimentContext(root_seed=77),
                                    noise_ratios=(0.0, 4.0))
        metrics = result.metrics
        assert abs(metrics[4.0]["corr"]) < abs(metrics[0.0]["corr"]) + 0.1


class TestInference:
    def test_small_candidate_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "3")
        result = ablation_inference.run(ExperimentContext(root_seed=77),
                                        subwarp_sweep=(1, 32))
        assert result.metrics["accuracy"] == 1.0


class TestSelective:
    def test_structure(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "8")
        result = ablation_selective.run(ExperimentContext(root_seed=77),
                                        subwarp_sweep=(8,))
        full = result.metrics["full"][8]
        selective = result.metrics["selective"][8]
        assert selective["time"] < full["time"]


class TestRssDist:
    def test_normal_like_fss_on_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "8")
        result = ablation_rss_dist.run(ExperimentContext(root_seed=77),
                                       subwarp_sweep=(8,))
        metrics = result.metrics
        assert metrics["normal"][8]["time"] == pytest.approx(
            metrics["fss"][8]["time"], rel=0.08
        )
