"""Small-scale runs of every experiment harness.

These are structural smoke tests at reduced sample counts: the full,
paper-scale runs with shape assertions live in ``benchmarks/``.
"""

import math

import pytest

from repro.experiments import fig05, fig06, fig07, fig08, fig09, fig15, \
    fig16, fig17, table2
from repro.experiments.base import ExperimentContext

SMALL = ExperimentContext(root_seed=99, samples=12)


class TestFig05:
    def test_time_tracks_accesses(self):
        result = fig05.run(SMALL)
        assert result.metrics["corr_last_accesses"] > 0.9
        series = result.metrics["series"]
        assert len(series["total_time"]) == 12


class TestFig06:
    def test_enabled_leaks_more_than_disabled(self):
        result = fig06.run(SMALL)
        enabled = result.metrics["enabled"]
        disabled = result.metrics["disabled"]
        # Even at tiny sample counts the ordering holds: the protected
        # machine's correct-guess rank is far worse.
        assert enabled["avg_rank"] < disabled["avg_rank"]


class TestFig07:
    def test_monotone_performance_cost(self):
        result = fig07.run(SMALL)
        times = result.metrics["normalized_times"]
        sweep = sorted(times)
        values = [times[m] for m in sweep]
        assert values == sorted(values)
        assert times[1] == pytest.approx(1.0)
        assert times[32] > 1.8


class TestFig08:
    def test_fss_attack_reconstructs_counts(self):
        result = fig08.run(ExperimentContext(root_seed=99, samples=12),
                           subwarp_sweep=(2, 4))
        # Timing-based: correlation persists across M (FSS gives the
        # attacker exact counts), unlike the randomized defenses.
        for m, corr in result.metrics["avg_corr"].items():
            assert corr > 0.1


class TestFig09:
    def test_histograms(self):
        result = fig09.run(ExperimentContext(root_seed=99))
        normal = result.metrics["normal_histogram"]
        skewed = result.metrics["skewed_histogram"]
        assert sum(normal.values()) == sum(skewed.values()) == 4000
        assert max(skewed) > max(normal)  # long right tail
        assert skewed[1] > normal.get(1, 0)  # mass at size 1


class TestFig16AndFig17:
    def test_scores_follow_from_inputs(self):
        perf = fig16.run(SMALL, subwarp_sweep=(2, 4))
        times = perf.metrics["normalized_time"]
        for mech in times:
            assert times[mech][2] < times[mech][4]

        sec = fig15.run(SMALL, subwarp_sweep=(2, 4))
        score = fig17.run(SMALL, subwarp_sweep=(2, 4),
                          security_result=sec, performance_result=perf)
        scores = score.metrics["scores"]
        assert set(scores) == {"security", "performance"}
        for mech_scores in scores["security"].values():
            for value in mech_scores.values():
                assert value > 0 or math.isinf(value)


class TestTable2:
    def test_theory_columns_match_paper(self):
        result = table2.run(ExperimentContext(root_seed=99),
                            subwarp_sweep=(1, 2, 16, 32))
        theory = result.metrics["theory"]
        assert theory[1] == (1.0, 1.0, 1.0)
        assert theory[2][1] == pytest.approx(0.41, abs=0.005)
        assert theory[16][1] == pytest.approx(0.0323, abs=0.001)
        assert theory[32] == (0.0, 0.0, 0.0)
