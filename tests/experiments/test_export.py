"""Tests for CSV/JSON export of experiment results."""

import csv
import io
import json
import math

from repro.experiments.base import ExperimentResult
from repro.experiments.export import to_csv, to_json, write_csv, write_json


def sample_result():
    return ExperimentResult(
        experiment_id="figXX",
        title="demo",
        headers=["m", "rho", "s"],
        rows=[(1, 1.0, 1.0), (32, 0.0, math.inf)],
        notes=["a note"],
    )


class TestCsv:
    def test_round_trips_through_csv_reader(self):
        text = to_csv(sample_result())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["m", "rho", "s"]
        assert rows[1] == ["1", "1.0", "1.0"]
        assert rows[2] == ["32", "0.0", "inf"]

    def test_write_csv(self, tmp_path):
        path = write_csv(sample_result(), tmp_path / "out.csv")
        assert path.exists()
        assert "rho" in path.read_text()


class TestJson:
    def test_valid_json_with_inf_encoded(self):
        document = json.loads(to_json(sample_result()))
        assert document["experiment_id"] == "figXX"
        assert document["rows"][1][2] == "inf"
        assert document["notes"] == ["a note"]

    def test_write_json(self, tmp_path):
        path = write_json(sample_result(), tmp_path / "out.json")
        assert json.loads(path.read_text())["title"] == "demo"


class TestCliIntegration:
    def test_cli_csv_flag(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "fig09.csv"
        assert main(["fig09", "--csv", str(target)]) == 0
        rows = list(csv.reader(io.StringIO(target.read_text())))
        assert rows[0][0] == "subwarp size"
        assert len(rows) > 10
