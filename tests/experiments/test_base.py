"""Tests for the shared experiment machinery."""

import pytest

from repro.attack.estimator import AccessEstimator
from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.experiments.base import (
    MECHANISMS,
    ExperimentContext,
    collect_records,
    corresponding_attack,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment


class TestContext:
    def test_sample_count_priority(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLES", raising=False)
        monkeypatch.delenv("REPRO_FAST", raising=False)
        assert ExperimentContext().sample_count(100, 40) == 100
        assert ExperimentContext(samples=7).sample_count(100, 40) == 7
        monkeypatch.setenv("REPRO_FAST", "1")
        assert ExperimentContext().sample_count(100, 40) == 40

    def test_streams_are_seeded_by_context(self):
        a = ExperimentContext(root_seed=1).stream("x").integers(0, 99, 8)
        b = ExperimentContext(root_seed=1).stream("x").integers(0, 99, 8)
        c = ExperimentContext(root_seed=2).stream("x").integers(0, 99, 8)
        assert a.tolist() == b.tolist()
        assert a.tolist() != c.tolist()

    def test_secret_key_is_reproducible(self):
        assert ExperimentContext(root_seed=5).secret_key() \
            == ExperimentContext(root_seed=5).secret_key()

    def test_with_override(self):
        ctx = ExperimentContext().with_(lines=1024)
        assert ctx.lines == 1024


class TestCollectRecords:
    def test_same_plaintexts_across_policies(self):
        ctx = ExperimentContext(samples=2)
        server_a, records_a = collect_records(ctx, make_policy("baseline"),
                                              2, counts_only=True)
        server_b, records_b = collect_records(ctx, make_policy("nocoal"),
                                              2, counts_only=True)
        # Identical ciphertexts: same key, same plaintext batch.
        assert [r.ciphertext for r in records_a] \
            == [r.ciphertext for r in records_b]
        # But different access counts: different machine.
        assert records_a[0].total_accesses != records_b[0].total_accesses


class TestCorrespondingAttack:
    def test_mechanisms_get_matching_models(self):
        ctx = ExperimentContext()
        for mechanism in MECHANISMS:
            estimator = corresponding_attack(ctx, mechanism, 4)
            assert isinstance(estimator, AccessEstimator)
            assert estimator.model_policy.name == mechanism
            assert estimator.model_policy.num_subwarps == 4

    def test_baseline_and_nocoal_get_baseline_model(self):
        ctx = ExperimentContext()
        for name in ("baseline", "nocoal"):
            estimator = corresponding_attack(ctx, name, 1)
            assert estimator.model_policy.name == "baseline"


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"table2", "fig05", "fig06", "fig07", "fig08", "fig09",
                    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
                    "fig18",
                    "ablation_selective", "ablation_rss_dist",
                    "ablation_inference", "ablation_samples",
                    "ablation_noise", "ablation_energy",
                    "ablation_blocksize", "ablation_leakage",
                    "ablation_scheduling", "ablation_addrmap",
                    "attribute"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")
