"""The campaign manifest aggregator (`rcoal status` / `/campaign`).

The load-bearing claim: the manifest's restored/remaining numbers are
*exactly* the checkpoint store's ground truth (the samples a ``--resume``
would skip), on healthy, interrupted, and garbage-collected campaigns —
and GC/compaction change neither those numbers nor the resumed output.
"""

import json

import pytest

from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentContext, collect_records
from repro.experiments.checkpoint import (
    CheckpointStore,
    campaign_fingerprint,
    phase_label,
)
from repro.experiments.manifest import (
    campaign_health,
    campaign_manifest,
    discover_run_dirs,
    gc_campaign,
    render_manifest,
)
from repro.faults import install_plan, parse_fault_plan
from repro.telemetry.journal import JOURNAL_NAME, RunJournal

SAMPLES = 12
POLICY = make_policy("fss", 4, 32)


@pytest.fixture(autouse=True)
def clean_plan():
    install_plan(None)
    yield
    install_plan(None)


def _ctx(**overrides):
    return ExperimentContext(root_seed=4242, samples=SAMPLES,
                             lines=4, **overrides)


def _store(run_dir, ctx):
    return CheckpointStore.open(
        run_dir, campaign_fingerprint("fig05", ctx, False))


def _interrupt(run_dir):
    """Run a campaign that dies at sample 8, leaving a partial phase."""
    ctx = _ctx()
    store = _store(run_dir, ctx)
    with pytest.raises(Exception):
        collect_records(ctx.with_(checkpoint=store,
                                  faults=parse_fault_plan("raise@8x*")),
                        POLICY, SAMPLES, counts_only=True)
    install_plan(None)
    return ctx


class TestDiscovery:
    def test_single_run_dir_is_its_own_campaign(self, tmp_path):
        run = tmp_path / "camp"
        _interrupt(run)
        assert discover_run_dirs(run) == [run]

    def test_all_style_root_lists_children(self, tmp_path):
        for name in ("fig05", "fig07"):
            _interrupt(tmp_path / name)
        assert discover_run_dirs(tmp_path) == [tmp_path / "fig05",
                                               tmp_path / "fig07"]

    def test_no_campaign_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            campaign_manifest(tmp_path / "empty")
        with pytest.raises(ConfigurationError):
            gc_campaign(tmp_path / "empty")


class TestInterruptedCampaign:
    def test_counts_match_checkpoint_ground_truth_exactly(self, tmp_path):
        run = tmp_path / "camp"
        ctx = _interrupt(run)
        label = phase_label(ctx, POLICY, SAMPLES, True, False)
        truth = _store(run, ctx).completed_indices(label)
        assert 0 < len(truth) < SAMPLES  # genuinely interrupted

        manifest = campaign_manifest(run, stall_after=1e9)
        phase, = manifest["experiments"][0]["phases"]
        assert phase["completed"] == len(truth)
        assert phase["remaining"] == SAMPLES - len(truth)
        assert phase["samples"] == SAMPLES
        assert manifest["status"] == "in-progress"
        assert manifest["totals"]["completed"] == len(truth)
        assert manifest["totals"]["remaining"] == SAMPLES - len(truth)

    def test_resume_to_complete_zeroes_remaining(self, tmp_path):
        run = tmp_path / "camp"
        ctx = _interrupt(run)
        collect_records(ctx.with_(checkpoint=_store(run, ctx)),
                        POLICY, SAMPLES, counts_only=True)
        manifest = campaign_manifest(run, stall_after=1e9)
        phase, = manifest["experiments"][0]["phases"]
        assert phase["remaining"] == 0
        assert phase["state"] == "done"
        assert manifest["status"] == "complete"
        assert manifest["experiments"][0]["totals"]["quarantined"] == 0

    def test_latency_percentiles_come_from_chunk_done_events(
            self, tmp_path):
        run = tmp_path / "camp"
        ctx = _interrupt(run)
        collect_records(ctx.with_(checkpoint=_store(run, ctx)),
                        POLICY, SAMPLES, counts_only=True)
        phase, = campaign_manifest(run)["experiments"][0]["phases"]
        latency = phase["latency"]
        assert latency is not None and latency["count"] > 0
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]

    def test_stall_detection_names_the_open_phase(self, tmp_path):
        run = tmp_path / "camp"
        _interrupt(run)
        # With a zero stall budget, the interrupted (open) phase counts
        # as stalled the moment the ledger goes quiet.
        probe = campaign_health(run, stall_after=0.0)
        assert probe["stalled"] is True
        assert probe["stalled_phase"] in probe["open_phases"]
        assert campaign_manifest(run, stall_after=0.0)["status"] \
            == "stalled"
        # A completed campaign never stalls, however old its ledger.
        ctx = _ctx()
        collect_records(ctx.with_(checkpoint=_store(run, ctx)),
                        POLICY, SAMPLES, counts_only=True)
        assert campaign_health(run, stall_after=0.0)["stalled"] is False


class TestAggregation:
    def test_multi_run_root_sums_experiments(self, tmp_path):
        for name in ("fig05", "fig07"):
            _interrupt(tmp_path / name)
        manifest = campaign_manifest(tmp_path, stall_after=1e9)
        assert len(manifest["experiments"]) == 2
        assert manifest["totals"]["samples"] == 2 * SAMPLES
        assert manifest["totals"]["completed"] == sum(
            view["totals"]["completed"]
            for view in manifest["experiments"])

    def test_root_ledger_events_are_counted(self, tmp_path):
        _interrupt(tmp_path / "fig05")
        RunJournal(tmp_path / JOURNAL_NAME).append(
            "experiment_finish", experiment="fig05", seconds=1.0)
        manifest = campaign_manifest(tmp_path, stall_after=1e9)
        assert manifest["root_events"] == 1

    def test_lanes_group_events_by_pid(self, tmp_path):
        run = tmp_path / "camp"
        _interrupt(run)
        view = campaign_manifest(run)["experiments"][0]
        assert len(view["lanes"]) >= 1
        for lane in view["lanes"].values():
            assert lane["events"] > 0
            assert lane["first_ts"] <= lane["last_ts"]

    def test_render_mentions_totals_and_status(self, tmp_path):
        run = tmp_path / "camp"
        _interrupt(run)
        text = render_manifest(campaign_manifest(run, stall_after=1e9))
        assert "in-progress" in text
        assert "remaining" in text
        assert "fig05" in text


class TestGarbageCollection:
    def test_gc_preserves_manifest_numbers_and_resumed_output(
            self, tmp_path):
        run = tmp_path / "camp"
        ctx = _interrupt(run)
        _, records = collect_records(
            ctx.with_(checkpoint=_store(run, ctx)),
            POLICY, SAMPLES, counts_only=True)
        before = campaign_manifest(run, stall_after=1e9)

        stats = gc_campaign(run)
        assert stats["events_after"] <= stats["events_before"]

        after = campaign_manifest(run, stall_after=1e9)
        assert after["totals"] == before["totals"]
        phase_b, = before["experiments"][0]["phases"]
        phase_a, = after["experiments"][0]["phases"]
        assert phase_a["completed"] == phase_b["completed"]
        assert phase_a["latency"]["count"] == phase_b["latency"]["count"]
        assert phase_a["latency"]["p95_ms"] == phase_b["latency"]["p95_ms"]

        # The deciding check: a post-GC resume returns identical records.
        _, records_again = collect_records(
            ctx.with_(checkpoint=_store(run, ctx)),
            POLICY, SAMPLES, counts_only=True)
        assert records_again == records

    def test_gc_removes_chunks_fully_covered_by_others(self, tmp_path):
        run = tmp_path / "camp"
        ctx = _interrupt(run)
        store = _store(run, ctx)
        collect_records(ctx.with_(checkpoint=store), POLICY, SAMPLES,
                        counts_only=True)
        label = phase_label(ctx, POLICY, SAMPLES, True, False)
        # Manufacture a superseded chunk: one whole-span file plus the
        # existing partials covering the same indices.
        chunks = store.load_chunks(label)
        indices = tuple(i for chunk in chunks for i in chunk.indices)
        whole = type(chunks[0])(
            indices=tuple(sorted(indices)),
            records=[r for chunk in chunks for r in chunk.records])
        store.save_chunk(label, whole)
        spans_before = store.completed_spans(label)
        assert len(spans_before) == len(chunks) + 1

        stats = gc_campaign(run)
        assert stats["removed_chunks"] == len(chunks)
        # Only the whole-span chunk survives; coverage is unchanged.
        spans_after = _store(run, ctx).completed_spans(label)
        assert spans_after == [(0, SAMPLES - 1)]
        truth = _store(run, ctx).completed_indices(label)
        assert truth == set(range(SAMPLES))

    def test_compacted_ledger_still_reports_retries(self, tmp_path):
        run = tmp_path / "camp"
        ctx = _ctx()
        store = _store(run, ctx)
        # One transient failure: retried to success under supervision.
        from repro.experiments.runner import SupervisionPolicy
        install_plan(parse_fault_plan("raise@3"))
        collect_records(
            ctx.with_(checkpoint=store,
                      supervision=SupervisionPolicy(max_attempts=3),
                      faults=parse_fault_plan("raise@3")),
            POLICY, SAMPLES, counts_only=True)
        install_plan(None)
        before = campaign_manifest(run, stall_after=1e9)
        retries = before["totals"]["retries"]
        assert retries >= 1
        gc_campaign(run)
        after = campaign_manifest(run, stall_after=1e9)
        assert after["totals"]["retries"] == retries


class TestShardStatus:
    """The status plane of sharded campaigns: per-worker lanes from the
    ledger, the lease-file census, and stale leases folding into stall
    detection."""

    def _sharded_run(self, run_dir):
        from repro.experiments.shard import ShardPolicy
        ctx = _ctx(shard=ShardPolicy("w1", chunk_samples=4))
        collect_records(ctx.with_(checkpoint=_store(run_dir, ctx)),
                        POLICY, SAMPLES, counts_only=True)
        return ctx

    def _plant_lease(self, run_dir, ctx, body):
        """Drop a lease file into the campaign's phase directory."""
        label = phase_label(ctx, POLICY, SAMPLES, True, False)
        path = _store(run_dir, ctx).phase_dir(label) \
            / "lease-00000-00003.json"
        path.write_bytes(body)
        return path

    def test_worker_lanes_fold_from_ledger_events(self, tmp_path):
        run = tmp_path / "camp"
        self._sharded_run(run)
        manifest = campaign_manifest(run, stall_after=1e9)
        assert manifest["status"] == "complete"
        lane = manifest["workers"]["w1"]
        assert lane["claims"] == 3        # 12 samples / 4 per chunk
        assert lane["chunks_done"] == 3
        assert lane["releases"] == 3
        phase, = manifest["experiments"][0]["phases"]
        assert phase["lease_claims"] == 3
        text = render_manifest(manifest)
        assert "workers:" in text and "w1" in text

    def test_stale_lease_marks_campaign_stalled(self, tmp_path):
        run = tmp_path / "camp"
        ctx = _interrupt(run)
        self._plant_lease(run, ctx, json.dumps({
            "owner": "ghost", "host": "h", "pid": 1,
            "created": 1.0, "renewed": 1.0, "renewals": 0,
            "deadline": 2.0}).encode())
        # Even with an infinite ledger-silence budget: a persistent
        # stale lease means a worker died and nobody is left to steal.
        manifest = campaign_manifest(run, stall_after=1e9)
        assert manifest["status"] == "stalled"
        stale, = manifest["stale_leases"]
        assert stale["owner"] == "ghost" and stale["state"] == "stale"
        probe = campaign_health(run, stall_after=1e9)
        assert probe["stalled"] is True
        assert probe["stalled_worker"] == "ghost"
        text = render_manifest(manifest)
        assert "stale lease" in text and "reclaimable" in text

    def test_torn_lease_reports_torn_never_crashes(self, tmp_path):
        run = tmp_path / "camp"
        ctx = _interrupt(run)
        self._plant_lease(run, ctx, b'{"owner": "w9", "dead')
        manifest = campaign_manifest(run, stall_after=1e9)
        stale, = manifest["stale_leases"]
        assert stale["state"] == "torn"
        assert manifest["status"] == "stalled"
        assert campaign_health(run, stall_after=1e9)["stalled_worker"] \
            == "torn-lease"

    def test_live_lease_does_not_stall(self, tmp_path):
        import time as _time
        run = tmp_path / "camp"
        ctx = _interrupt(run)
        now = _time.time()
        self._plant_lease(run, ctx, json.dumps({
            "owner": "w1", "host": "h", "pid": 1,
            "created": now, "renewed": now, "renewals": 1,
            "deadline": now + 3600.0}).encode())
        manifest = campaign_manifest(run, stall_after=1e9)
        assert manifest["stale_leases"] == []
        assert manifest["status"] == "in-progress"
        assert campaign_health(run, stall_after=1e9)["stalled"] is False

    def test_lease_litter_on_complete_campaign_does_not_stall(
            self, tmp_path):
        # A stale lease with no open work is litter from a dead worker
        # whose span a peer already covered — complete beats stalled,
        # and --gc sweeps the file.
        run = tmp_path / "camp"
        ctx = self._sharded_run(run)
        path = self._plant_lease(run, ctx, json.dumps({
            "owner": "ghost", "host": "h", "pid": 1,
            "created": 1.0, "renewed": 1.0, "renewals": 0,
            "deadline": 2.0}).encode())
        assert campaign_manifest(run, stall_after=1e9)["status"] \
            == "complete"
        assert campaign_health(run, stall_after=1e9)["stalled"] is False
        stats = gc_campaign(run)
        assert stats["removed_leases"] == 1
        assert not path.exists()

    def test_gc_never_touches_a_live_lease(self, tmp_path):
        import time as _time
        run = tmp_path / "camp"
        ctx = self._sharded_run(run)
        now = _time.time()
        path = self._plant_lease(run, ctx, json.dumps({
            "owner": "w1", "host": "h", "pid": 1,
            "created": now, "renewed": now, "renewals": 1,
            "deadline": now + 3600.0}).encode())
        stats = gc_campaign(run)
        assert stats["removed_leases"] == 0
        assert path.exists()

    def test_compaction_preserves_lease_counters(self, tmp_path):
        run = tmp_path / "camp"
        self._sharded_run(run)
        before, = campaign_manifest(run,
                                    stall_after=1e9)["experiments"]
        gc_campaign(run)
        after, = campaign_manifest(run, stall_after=1e9)["experiments"]
        phase_b, = before["phases"]
        phase_a, = after["phases"]
        assert phase_a["lease_claims"] == phase_b["lease_claims"]
        assert phase_a["lease_steals"] == phase_b["lease_steals"]


class TestTornLedger:
    def test_torn_tail_never_breaks_status_or_resume(self, tmp_path):
        run = tmp_path / "camp"
        ctx = _interrupt(run)
        # The crash model by hand: a writer died mid-line.
        with open(run / JOURNAL_NAME, "ab") as handle:
            handle.write(b'{"kind":"phase_fin')
        label = phase_label(ctx, POLICY, SAMPLES, True, False)
        truth = _store(run, ctx).completed_indices(label)
        manifest = campaign_manifest(run, stall_after=1e9)
        phase, = manifest["experiments"][0]["phases"]
        assert phase["completed"] == len(truth)
        assert phase["remaining"] == SAMPLES - len(truth)
        # The resume both finishes the phase and repairs the tail.
        collect_records(ctx.with_(checkpoint=_store(run, ctx)),
                        POLICY, SAMPLES, counts_only=True)
        after = campaign_manifest(run, stall_after=1e9)
        assert after["totals"]["remaining"] == 0
        assert after["status"] == "complete"

    def test_injected_torn_fault_mid_campaign_stays_exact(self, tmp_path):
        from repro.faults import TornWriteError
        run = tmp_path / "camp"
        ctx = _ctx()
        # torn@* fires on the very first ledger append (campaign_open):
        # the campaign dies before simulating anything, with a torn line
        # on disk.
        install_plan(parse_fault_plan(f"torn@{JOURNAL_NAME}"))
        with pytest.raises(TornWriteError):
            collect_records(
                ctx.with_(checkpoint=_store(run, ctx),
                          faults=parse_fault_plan(f"torn@{JOURNAL_NAME}")),
                POLICY, SAMPLES, counts_only=True)
        install_plan(None)
        # The torn ledger reads as empty but the directory is a valid
        # campaign; status reports the (zero-progress) truth.
        manifest = campaign_manifest(run, stall_after=1e9)
        assert manifest["totals"]["completed"] == 0
        # A clean rerun resumes to completion with exact numbers.
        collect_records(ctx.with_(checkpoint=_store(run, ctx)),
                        POLICY, SAMPLES, counts_only=True)
        label = phase_label(ctx, POLICY, SAMPLES, True, False)
        truth = _store(run, ctx).completed_indices(label)
        assert truth == set(range(SAMPLES))
        after = campaign_manifest(run, stall_after=1e9)
        assert after["totals"]["completed"] == SAMPLES
        assert after["status"] == "complete"
