"""Throughput floors gate for ``rcoal bench --check``."""

import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

from repro.experiments.bench import check_bench_floors


@pytest.fixture
def report():
    return {
        "schema": 1,
        "workloads": {
            "timing_kernel": {"sim_cycles_per_second": 300000},
            "counts_sweep": {"ms_per_sample": 2.4,
                             "counts_identical": True},
        },
    }


def _floors_file(tmp_path, floors):
    path = tmp_path / "floors.json"
    path.write_text(json.dumps({"schema": 1, "floors": floors}))
    return str(path)


class TestCheckBenchFloors:
    def test_healthy_report_clears_generous_floors(self, tmp_path, report):
        path = _floors_file(tmp_path, {
            "timing_kernel.sim_cycles_per_second": {"min": 100000},
            "counts_sweep.ms_per_sample": {"max": 15.0},
            "counts_sweep.counts_identical": {"expect": True},
        })
        assert check_bench_floors(report, path) == []

    def test_throughput_below_min_is_flagged(self, tmp_path, report):
        path = _floors_file(tmp_path, {
            "timing_kernel.sim_cycles_per_second": {"min": 10 ** 12},
        })
        violations = check_bench_floors(report, path)
        assert len(violations) == 1
        assert "fell below the floor" in violations[0]

    def test_cost_above_max_is_flagged(self, tmp_path, report):
        path = _floors_file(tmp_path, {
            "counts_sweep.ms_per_sample": {"max": 0.001},
        })
        violations = check_bench_floors(report, path)
        assert len(violations) == 1
        assert "exceeded the ceiling" in violations[0]

    def test_engine_disagreement_is_flagged(self, tmp_path, report):
        report["workloads"]["counts_sweep"]["counts_identical"] = False
        path = _floors_file(tmp_path, {
            "counts_sweep.counts_identical": {"expect": True},
        })
        violations = check_bench_floors(report, path)
        assert len(violations) == 1
        assert "expected True" in violations[0]

    def test_missing_key_is_a_violation_not_a_skip(self, tmp_path, report):
        path = _floors_file(tmp_path, {
            "counts_sweep.renamed_key": {"min": 1},
            "never_ran.seconds": {"max": 1},
        })
        violations = check_bench_floors(report, path)
        assert len(violations) == 2
        assert all("not present" in v for v in violations)

    def test_committed_floors_match_the_committed_bench(self):
        # The repo-level invariant CI relies on: the committed BENCH_7
        # report clears the committed floors. (BENCH_6 predates the
        # shard_overhead keys the floors now gate, so only the newest
        # report carries the full contract.)
        with open(REPO_ROOT / "BENCH_7.json", encoding="utf-8") as handle:
            committed = json.load(handle)
        assert check_bench_floors(
            committed, str(REPO_ROOT / "BENCH_FLOORS.json")) == []
