"""Tests for the ASCII chart renderer."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult
from repro.experiments.charts import bar_chart, result_chart


class TestBarChart:
    def test_scales_to_width(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_negative_values_use_distinct_fill(self):
        chart = bar_chart(["x"], [-3.0], width=10)
        assert "▒" in chart
        assert "█" not in chart

    def test_infinite_values_annotated(self):
        chart = bar_chart(["m32"], [math.inf])
        assert "inf" in chart

    def test_zero_only_input(self):
        chart = bar_chart(["z"], [0.0])
        assert "0" in chart

    def test_title(self):
        chart = bar_chart(["a"], [1.0], title="demo")
        assert chart.splitlines()[0] == "demo"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bar_chart([], [])


class TestResultChart:
    def sample(self):
        return ExperimentResult(
            experiment_id="figX", title="t",
            headers=["M", "corr", "label"],
            rows=[(1, 1.0, "x"), (2, 0.4, "y")],
        )

    def test_charts_numeric_column(self):
        chart = result_chart(self.sample(), column=1)
        assert "figX: corr" in chart
        assert chart.count("|") == 2

    def test_rejects_non_numeric_column(self):
        with pytest.raises(ConfigurationError):
            result_chart(self.sample(), column=2)

    def test_rejects_bad_column_index(self):
        with pytest.raises(ConfigurationError):
            result_chart(self.sample(), column=0)

    def test_cli_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["fig09", "--chart", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig09: skewed draws" in out
        assert "█" in out
