"""The process-parallel runner is bit-identical to the serial path.

These are the regression guards for the parallel fan-out contract: any
``-j N`` run — records, experiment rows, recovered keys, merged
telemetry — must equal the serial run byte for byte. Pool startup makes
these the slowest unit tests in the suite, so sample counts are small;
the determinism argument (per-sample RNG derivation + in-order merge)
does not depend on batch size.
"""

import pytest

from repro.core.policies import make_policy
from repro.experiments.base import (
    ExperimentContext,
    collect_records,
    run_corresponding_attack,
)
from repro.experiments.registry import run_experiment
from repro.experiments.runner import chunk_indices
from repro.telemetry import Telemetry

SEED = 4242


class TestChunkIndices:
    def test_contiguous_and_balanced(self):
        assert chunk_indices(10, 3) \
            == [range(0, 4), range(4, 7), range(7, 10)]

    def test_never_returns_empty_ranges(self):
        assert chunk_indices(2, 8) == [range(0, 1), range(1, 2)]

    def test_single_chunk_is_identity(self):
        assert chunk_indices(5, 1) == [range(0, 5)]

    @pytest.mark.parametrize("count,chunks", [(1, 1), (7, 2), (8, 4),
                                              (9, 4), (100, 16)])
    def test_partitions_exactly(self, count, chunks):
        ranges = chunk_indices(count, chunks)
        flat = [i for r in ranges for i in r]
        assert flat == list(range(count))


def _record_key(record):
    return (record.ciphertext, record.total_time, record.last_round_time,
            record.total_accesses, record.last_round_accesses,
            sorted(record.round_accesses.items()),
            record.last_round_byte_accesses,
            sorted((w, p.sizes) for w, p in record.partitions.items()))


class TestParallelCollection:
    SAMPLES = 6

    def _collect(self, jobs, counts_only=False, telemetry=None):
        ctx = ExperimentContext(root_seed=SEED, samples=self.SAMPLES,
                                jobs=jobs, telemetry=telemetry)
        return collect_records(ctx, make_policy("rss_rts", 8),
                               self.SAMPLES, counts_only=counts_only)

    def test_records_match_serial_bit_for_bit(self):
        _, serial = self._collect(jobs=1)
        _, parallel = self._collect(jobs=3)
        assert [_record_key(r) for r in parallel] \
            == [_record_key(r) for r in serial]

    def test_counts_only_path_matches_too(self):
        _, serial = self._collect(jobs=1, counts_only=True)
        _, parallel = self._collect(jobs=4, counts_only=True)
        assert [_record_key(r) for r in parallel] \
            == [_record_key(r) for r in serial]

    def test_merged_telemetry_equals_serial(self):
        serial_telemetry = Telemetry()
        parallel_telemetry = Telemetry()
        self._collect(jobs=1, telemetry=serial_telemetry)
        self._collect(jobs=3, telemetry=parallel_telemetry)
        assert parallel_telemetry.metrics.snapshot() \
            == serial_telemetry.metrics.snapshot()
        assert [(e.name, e.cat, e.ph, e.ts, e.dur, e.pid, e.tid)
                for e in parallel_telemetry.tracer.events] \
            == [(e.name, e.cat, e.ph, e.ts, e.dur, e.pid, e.tid)
                for e in serial_telemetry.tracer.events]
        assert parallel_telemetry.tracer.time_base \
            == serial_telemetry.tracer.time_base

    def test_recovered_key_matches_serial(self):
        # The end-to-end property the paper's tables depend on: the attack
        # sees identical observables, so it recovers identical key bytes.
        serial_server, serial_records = self._collect(jobs=1)
        parallel_server, parallel_records = self._collect(jobs=2)
        ctx = ExperimentContext(root_seed=SEED, samples=self.SAMPLES)
        serial_recovery = run_corresponding_attack(
            ctx, serial_server, serial_records, "rss_rts", 8)
        parallel_recovery = run_corresponding_attack(
            ctx, parallel_server, parallel_records, "rss_rts", 8)
        assert parallel_recovery.recovered_key \
            == serial_recovery.recovered_key
        assert parallel_recovery.num_correct \
            == serial_recovery.num_correct


class TestParallelExperiment:
    def test_fig07_rows_match_serial(self):
        serial = run_experiment(
            "fig07", ExperimentContext(root_seed=SEED, samples=4))
        parallel = run_experiment(
            "fig07", ExperimentContext(root_seed=SEED, samples=4, jobs=4))
        assert parallel.rows == serial.rows
        assert parallel.render() == serial.render()
