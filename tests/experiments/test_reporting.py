"""Tests for ASCII rendering."""

import math

from repro.experiments.base import ExperimentResult
from repro.experiments.reporting import format_table, format_value


class TestFormatValue:
    def test_floats(self):
        assert format_value(0.1234) == "0.123"
        assert format_value(12.34) == "12.3"
        assert format_value(1234.5) == "1,234"
        assert format_value(0.0) == "0"

    def test_special_values(self):
        assert format_value(math.inf) == "inf"
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(7) == "7"


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["a", "long-header"],
                             [(1, 2.5), (100, 0.25)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "long-header" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        # All rows share the same width.
        assert len({len(line) for line in lines}) == 1


class TestExperimentResult:
    def test_render_contains_notes(self):
        result = ExperimentResult(
            experiment_id="figXX",
            title="demo",
            headers=["x"],
            rows=[(1,)],
            notes=["hello"],
        )
        rendered = result.render()
        assert "figXX" in rendered
        assert "note: hello" in rendered
