"""Tests for the Table II generator."""

import math

import pytest

from repro.analysis.security import (
    PAPER_TABLE2,
    SecurityRow,
    normalized_samples,
    security_table,
)
from repro.errors import AnalysisError


class TestNormalizedSamples:
    def test_baseline_is_one(self):
        assert normalized_samples(1.0) == 1.0

    def test_inverse_square(self):
        assert normalized_samples(0.5) == pytest.approx(4.0)

    def test_zero_is_infinite(self):
        assert math.isinf(normalized_samples(0.0))

    def test_rejects_out_of_range(self):
        with pytest.raises(AnalysisError):
            normalized_samples(2.0)


class TestTable2:
    @pytest.fixture(scope="class")
    def table(self):
        return {row.num_subwarps: row for row in security_table()}

    def test_rho_matches_paper_printed_values(self, table):
        for m, expected in PAPER_TABLE2.items():
            rho_fss, rho_fss_rts, rho_rss_rts = expected["rho"]
            assert table[m].rho_fss == pytest.approx(rho_fss, abs=0.005)
            assert table[m].rho_fss_rts == pytest.approx(rho_fss_rts,
                                                         abs=0.005)
            assert table[m].rho_rss_rts == pytest.approx(rho_rss_rts,
                                                         abs=0.005)

    def test_s_matches_paper_printed_values(self, table):
        for m, expected in PAPER_TABLE2.items():
            s_fss, s_fss_rts, s_rss_rts = expected["s"]
            for ours, paper in [(table[m].s_fss, s_fss),
                                (table[m].s_fss_rts, s_fss_rts),
                                (table[m].s_rss_rts, s_rss_rts)]:
                if math.isinf(paper):
                    assert math.isinf(ours)
                else:
                    # The paper prints S rounded from unrounded rho.
                    assert ours == pytest.approx(paper, rel=0.03)

    def test_headline_improvement_range(self, table):
        """Abstract: 24x to 961x security improvement."""
        finite = [
            s for m in (2, 4, 8, 16)
            for s in (table[m].s_fss_rts, table[m].s_rss_rts)
        ]
        assert min(finite) == pytest.approx(6.0, abs=0.1)  # FSS+RTS M=2
        assert max(finite) == pytest.approx(961, abs=1)

    def test_custom_machine_parameters(self):
        rows = security_table(num_threads=8, num_blocks=4,
                              subwarp_counts=(1, 2, 8))
        assert [r.num_subwarps for r in rows] == [1, 2, 8]
        assert rows[0].rho_fss_rts == 1.0
        assert rows[-1].rho_fss_rts == 0.0
