"""Leakage attribution must reconcile exactly with the timing engine.

The attribution join is only trustworthy if its per-window contribution
sums equal the engine's own round-window cycles — including the golden
values pinned by ``tests/test_golden.py``. These tests check that
reconciliation on the golden seed, on multi-warp launches, and under the
randomized defense, plus the failure modes (partial traces).
"""

import pytest

from repro.analysis.attribution import attribute_rounds, summarize_by_warp
from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.rng import RngStream
from repro.telemetry import Telemetry
from repro.workloads.plaintext import random_plaintexts
from repro.workloads.server import EncryptionServer

GOLDEN_SEED = 777


def _instrumented_run(policy_name="baseline", subwarps=1, lines=32,
                      capacity=500_000):
    key = bytes(RngStream(GOLDEN_SEED, "key").random_bytes(16))
    plaintext = random_plaintexts(1, lines,
                                  RngStream(GOLDEN_SEED, "pt"))[0]
    policy = make_policy(policy_name, subwarps)
    rng = (RngStream(GOLDEN_SEED, "victim")
           if policy.is_randomized else None)
    telemetry = Telemetry(trace_capacity=capacity)
    server = EncryptionServer(key, policy, rng=rng,
                              retain_kernel_results=True,
                              telemetry=telemetry)
    record = server.encrypt(plaintext)
    return telemetry, record


class TestGoldenReconciliation:
    def test_last_round_attribution_matches_golden_window(self):
        telemetry, record = _instrumented_run()
        attributions = attribute_rounds(telemetry.tracer, round_index=10)
        assert len(attributions) == 1
        window = attributions[0]
        # The exact values tests/test_golden.py pins for seed 777.
        assert (window.start, window.end) == (6987, 7805)
        assert window.duration == 818 == record.last_round_time
        assert window.attributed == 818

    def test_every_round_window_reconciles(self):
        telemetry, record = _instrumented_run()
        attributions = attribute_rounds(telemetry.tracer)
        windows = record.kernel_result.round_windows
        assert len(attributions) == len(windows) == 11
        for attribution in attributions:
            window = windows[(attribution.warp_id,
                              attribution.round_index)]
            assert attribution.start == window.start
            assert attribution.end == window.end
            assert attribution.attributed == attribution.duration \
                == window.duration

    def test_contributions_partition_into_access_and_compute(self):
        telemetry, _ = _instrumented_run()
        for window in attribute_rounds(telemetry.tracer):
            assert window.access_cycles + window.compute_cycles \
                == pytest.approx(window.duration)
            for contribution in window.contributions:
                assert contribution.cycles >= 0
                if contribution.source == "access":
                    assert contribution.uid is not None
                else:
                    assert contribution.uid is None

    def test_dram_join_classifies_accesses(self):
        telemetry, _ = _instrumented_run()
        accesses = [
            c for w in attribute_rounds(telemetry.tracer)
            for c in w.contributions if c.source == "access"
        ]
        assert accesses
        # Every read reply joins a column_hit/column_miss DRAM record.
        assert all(c.row_hit is not None for c in accesses)
        assert all(c.bank is not None and c.queue_wait is not None
                   for c in accesses)
        assert any(c.row_hit for c in accesses)


class TestMultiWarpAndPolicies:
    def test_multi_warp_windows_reconcile(self):
        telemetry, record = _instrumented_run(lines=128)
        attributions = attribute_rounds(telemetry.tracer)
        windows = record.kernel_result.round_windows
        assert {a.warp_id for a in attributions} == {0, 1, 2, 3}
        assert len(attributions) == len(windows)
        for attribution in attributions:
            expected = windows[(attribution.warp_id,
                                attribution.round_index)]
            assert attribution.attributed == expected.duration

    def test_randomized_policy_reconciles(self):
        telemetry, record = _instrumented_run("rss_rts", 8)
        attributions = attribute_rounds(telemetry.tracer, round_index=10)
        assert len(attributions) == 1
        assert attributions[0].attributed \
            == attributions[0].duration == record.last_round_time

    def test_summary_aggregates_per_warp(self):
        telemetry, _ = _instrumented_run(lines=128)
        attributions = attribute_rounds(telemetry.tracer, round_index=10)
        summary = summarize_by_warp(attributions)
        assert set(summary) == {0, 1, 2, 3}
        for warp_id, agg in summary.items():
            assert agg["windows"] == 1
            assert agg["mean_cycles"] == pytest.approx(
                agg["mean_access_cycles"] + agg["mean_compute_cycles"])
            assert agg["accesses"] > 0


class TestFailureModes:
    def test_partial_trace_is_rejected(self):
        telemetry, _ = _instrumented_run(capacity=64)
        assert telemetry.tracer.dropped > 0
        with pytest.raises(ConfigurationError):
            attribute_rounds(telemetry.tracer)

    def test_empty_trace_attributes_nothing(self):
        assert attribute_rounds(Telemetry().tracer) == []


class TestBatchedParity:
    """The vectorized join must equal the python join, element for element.

    ``attribute_rounds`` auto-switches to the numpy path on big traces
    (the 1024-line Fig 18 launches); the golden contract is that both
    implementations produce the *same dataclasses* — same windows, same
    contribution order, same charged cycles — so the choice is invisible.
    """

    @pytest.mark.parametrize("policy_name,subwarps,lines", [
        ("baseline", 1, 32),
        ("baseline", 1, 128),
        ("fss", 4, 64),
        ("rss_rts", 8, 32),
        ("rss_rts", 8, 128),
    ])
    def test_batched_equals_python(self, policy_name, subwarps, lines):
        telemetry, _ = _instrumented_run(policy_name, subwarps,
                                         lines=lines)
        python = attribute_rounds(telemetry.tracer, batched=False)
        batched = attribute_rounds(telemetry.tracer, batched=True)
        assert batched == python

    def test_batched_round_filter_matches(self):
        telemetry, _ = _instrumented_run("rss_rts", 8, lines=64)
        python = attribute_rounds(telemetry.tracer, round_index=10,
                                  batched=False)
        batched = attribute_rounds(telemetry.tracer, round_index=10,
                                   batched=True)
        assert batched == python

    def test_batched_empty_trace(self):
        assert attribute_rounds(Telemetry().tracer, batched=True) == []

    def test_auto_dispatch_threshold(self):
        from repro.analysis import attribution as module
        telemetry, _ = _instrumented_run()
        events = len(telemetry.tracer)
        assert events < module._BATCH_THRESHOLD  # default stays python
        # Force the auto path both ways and check it still reconciles.
        original = module._BATCH_THRESHOLD
        try:
            module._BATCH_THRESHOLD = 1
            auto_batched = attribute_rounds(telemetry.tracer)
        finally:
            module._BATCH_THRESHOLD = original
        assert auto_batched == attribute_rounds(telemetry.tracer,
                                                batched=False)
