"""Timing surrogate: affine counts -> cycles calibration."""

import dataclasses

import pytest

from repro.analysis.surrogate import TimingSurrogate, fit_surrogate
from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentContext, collect_records
from repro.workloads.server import EncryptionRecord


def _record(total_accesses, last_round_accesses,
            total_time=0, last_round_time=0):
    return EncryptionRecord(
        ciphertext=b"\x00" * 16,
        total_time=total_time,
        last_round_time=last_round_time,
        total_accesses=total_accesses,
        last_round_accesses=last_round_accesses,
        round_accesses={},
        last_round_byte_accesses=[0] * 16,
        partitions={},
    )


def _affine_records():
    # total = 100 + 3*accesses, last = 20 + 2*accesses — exactly affine.
    return [
        _record(a, la, total_time=100 + 3 * a, last_round_time=20 + 2 * la)
        for a, la in [(50, 5), (60, 8), (80, 11), (120, 17)]
    ]


class TestFit:
    def test_recovers_exact_affine_coefficients(self):
        surrogate = fit_surrogate(_affine_records())
        assert surrogate.total_base == pytest.approx(100.0)
        assert surrogate.total_per_access == pytest.approx(3.0)
        assert surrogate.last_round_base == pytest.approx(20.0)
        assert surrogate.last_round_per_access == pytest.approx(2.0)
        assert surrogate.total_r2 == pytest.approx(1.0)
        assert surrogate.last_round_r2 == pytest.approx(1.0)
        assert surrogate.calibration_samples == 4

    def test_rejects_too_few_records(self):
        with pytest.raises(ConfigurationError):
            fit_surrogate(_affine_records()[:1])

    def test_rejects_counts_only_records(self):
        counts_only = [_record(50, 5), _record(60, 8)]
        with pytest.raises(ConfigurationError) as excinfo:
            fit_surrogate(counts_only)
        assert "counts-only" in str(excinfo.value)


class TestPredictAndApply:
    def test_predict_rounds_to_whole_cycles(self):
        surrogate = fit_surrogate(_affine_records())
        total, last = surrogate.predict(_record(70, 10))
        assert (total, last) == (100 + 3 * 70, 20 + 2 * 10)
        assert isinstance(total, int) and isinstance(last, int)

    def test_apply_fills_copies_and_leaves_originals_untouched(self):
        surrogate = fit_surrogate(_affine_records())
        originals = [_record(70, 10), _record(90, 12)]
        filled = surrogate.apply(originals)
        assert all(r.total_time == 0 and r.last_round_time == 0
                   for r in originals)
        assert [r.total_time for r in filled] == [310, 370]
        # Only the two time fields change.
        for before, after in zip(originals, filled):
            assert dataclasses.replace(
                after, total_time=0, last_round_time=0) == before

    def test_dict_round_trip(self):
        surrogate = fit_surrogate(_affine_records())
        assert TimingSurrogate.from_dict(surrogate.to_dict()) == surrogate


class TestOnEngineRecords:
    def test_near_exact_on_single_warp_launches(self):
        # Calibrate on a handful of timed event-engine launches, then
        # check the advertised contract: counts untouched, cycle fit
        # near-exact for the paper's single-warp timing-attack shape.
        ctx = ExperimentContext(root_seed=2018, samples=6)
        policy = make_policy("rss_rts", 8)
        _, timed = collect_records(ctx, policy, 6)
        surrogate = fit_surrogate(timed)
        assert surrogate.total_r2 > 0.99
        assert surrogate.last_round_r2 > 0.99
        _, counts = collect_records(ctx.with_(batched=True), policy, 6,
                                    counts_only=True)
        filled = surrogate.apply(counts)
        for approx, exact in zip(filled, timed):
            assert approx.total_accesses == exact.total_accesses
            assert approx.total_time == pytest.approx(exact.total_time,
                                                      rel=0.02)
            assert approx.last_round_time == pytest.approx(
                exact.last_round_time, rel=0.02)
