"""Tests for the mutual-information leakage estimator."""

import math

import pytest

from repro.analysis.leakage import (
    empirical_leakage_bits,
    entropy_bits,
    mutual_information_bits,
    occupancy_entropy_bits,
)
from repro.core.policies import FSSPolicy, RSSPolicy, make_policy
from repro.errors import AnalysisError
from repro.rng import RngStream


class TestEntropy:
    def test_uniform(self):
        assert entropy_bits({0: 0.25, 1: 0.25, 2: 0.25, 3: 0.25}) \
            == pytest.approx(2.0)

    def test_deterministic(self):
        assert entropy_bits({7: 1.0}) == 0.0

    def test_unnormalized_input_accepted(self):
        assert entropy_bits({0: 2, 1: 2}) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            entropy_bits({})


class TestMutualInformation:
    def test_independent_variables(self):
        joint = {(x, y): 0.25 for x in (0, 1) for y in (0, 1)}
        assert mutual_information_bits(joint) == pytest.approx(0.0,
                                                               abs=1e-12)

    def test_identical_variables(self):
        joint = {(0, 0): 0.5, (1, 1): 0.5}
        assert mutual_information_bits(joint) == pytest.approx(1.0)

    def test_bounded_by_marginal_entropy(self):
        joint = {(0, 0): 0.4, (0, 1): 0.1, (1, 0): 0.1, (1, 1): 0.4}
        mi = mutual_information_bits(joint)
        assert 0.0 < mi < 1.0


class TestLeakage:
    def test_baseline_leaks_full_entropy(self):
        """Deterministic machine: U_hat = U, so I = H(U)."""
        rng = RngStream(55, "mi-base")
        mi = empirical_leakage_bits(make_policy("baseline"), 16, 20000, rng)
        theory = occupancy_entropy_bits(32, 16)
        assert mi == pytest.approx(theory, abs=0.1)

    def test_nocoal_leaks_nothing(self):
        rng = RngStream(55, "mi-nocoal")
        assert empirical_leakage_bits(make_policy("nocoal"), 16, 2000,
                                      rng) == pytest.approx(0.0, abs=1e-9)

    def test_randomization_reduces_leakage(self):
        rng = RngStream(55, "mi-ordering")
        fss = empirical_leakage_bits(FSSPolicy(8), 16, 6000,
                                     rng.child("fss"))
        fss_rts = empirical_leakage_bits(FSSPolicy(8, rts=True), 16, 6000,
                                         rng.child("fssrts"))
        # FSS is deterministic (full leakage of its count); RTS destroys
        # most of it. MI plug-in estimates carry positive bias at this
        # sample count, so compare with slack.
        assert fss > 1.0
        assert fss_rts < 0.6 * fss

    def test_rejects_tiny_sample_counts(self):
        with pytest.raises(AnalysisError):
            empirical_leakage_bits(FSSPolicy(2), 16, 5,
                                   RngStream(55, "mi-x"))
