"""Tests for the exact combinatorics layer."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.combinatorics import (
    binomial,
    composition_pair_pmf,
    composition_part_pmf,
    iter_compositions,
    multinomial_pair_pmf,
    multinomial_single_pmf,
    num_compositions,
    stirling2,
)
from repro.errors import AnalysisError


class TestStirling:
    def test_base_cases(self):
        assert stirling2(0, 0) == 1
        assert stirling2(5, 0) == 0
        assert stirling2(0, 3) == 0
        assert stirling2(7, 8) == 0

    def test_known_values(self):
        assert stirling2(4, 2) == 7
        assert stirling2(5, 3) == 25
        assert stirling2(6, 3) == 90

    @given(st.integers(min_value=1, max_value=12))
    def test_boundary_identities(self, n):
        assert stirling2(n, 1) == 1
        assert stirling2(n, n) == 1
        if n >= 2:
            assert stirling2(n, n - 1) == n * (n - 1) // 2

    @given(st.integers(min_value=1, max_value=10))
    def test_bell_number_sum(self, n):
        """Sum over k of S(n,k) equals the Bell number; check recurrence
        against direct set-partition counting for small n."""
        bell = sum(stirling2(n, k) for k in range(n + 1))
        # Bell numbers: 1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975
        known = [1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975]
        assert bell == known[n]

    def test_rejects_negative(self):
        with pytest.raises(AnalysisError):
            stirling2(-1, 0)


class TestBinomial:
    def test_out_of_range_is_zero(self):
        assert binomial(5, 6) == 0
        assert binomial(-1, 0) == 0
        assert binomial(5, -1) == 0

    def test_known(self):
        assert binomial(32, 16) == 601080390


class TestCompositions:
    def test_counts(self):
        assert num_compositions(5, 2) == 4
        assert num_compositions(32, 4) == binomial(31, 3)
        assert num_compositions(3, 5) == 0

    @given(st.integers(min_value=1, max_value=12), st.data())
    @settings(max_examples=30)
    def test_part_pmf_sums_to_one(self, total, data):
        parts = data.draw(st.integers(min_value=1, max_value=total))
        pmf = composition_part_pmf(total, parts)
        assert sum(pmf.values()) == Fraction(1)
        assert all(1 <= k <= total - parts + 1 for k in pmf)

    def test_part_pmf_matches_enumeration(self):
        total, parts = 7, 3
        compositions = list(iter_compositions(total, parts))
        pmf = composition_part_pmf(total, parts)
        for k in range(1, total - parts + 2):
            frequency = Fraction(
                sum(1 for c in compositions if c[0] == k),
                len(compositions),
            )
            assert pmf.get(k, Fraction(0)) == frequency

    def test_pair_pmf_matches_enumeration(self):
        total, parts = 8, 3
        compositions = list(iter_compositions(total, parts))
        pmf = composition_pair_pmf(total, parts)
        seen = {}
        for c in compositions:
            seen[(c[0], c[1])] = seen.get((c[0], c[1]), 0) + 1
        for pair, count in seen.items():
            assert pmf[pair] == Fraction(count, len(compositions))
        assert sum(pmf.values()) == Fraction(1)

    def test_pair_pmf_two_parts(self):
        pmf = composition_pair_pmf(5, 2)
        assert sum(pmf.values()) == Fraction(1)
        assert pmf[(2, 3)] == Fraction(1, 4)

    def test_rejects_impossible(self):
        with pytest.raises(AnalysisError):
            composition_part_pmf(3, 5)


class TestMultinomial:
    @given(st.integers(min_value=0, max_value=24),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=30)
    def test_single_pmf_sums_to_one(self, n, r):
        assert sum(multinomial_single_pmf(n, r).values()) == Fraction(1)

    @given(st.integers(min_value=0, max_value=16),
           st.integers(min_value=2, max_value=16))
    @settings(max_examples=20)
    def test_pair_pmf_sums_to_one(self, n, r):
        assert sum(multinomial_pair_pmf(n, r).values()) == Fraction(1)

    def test_pair_marginalizes_to_single(self):
        n, r = 10, 4
        pair = multinomial_pair_pmf(n, r)
        single = multinomial_single_pmf(n, r)
        for a in range(n + 1):
            marginal = sum(p for (x, _), p in pair.items() if x == a)
            assert marginal == single[a]

    def test_single_mean_is_n_over_r(self):
        n, r = 12, 4
        pmf = multinomial_single_pmf(n, r)
        mean = sum(Fraction(a) * p for a, p in pmf.items())
        assert mean == Fraction(n, r)
